//! Constrained min-period retiming for the `triphase` toolkit.
//!
//! The paper's flow (§IV-C) emulates latch retiming with FF retiming: the
//! 3-phase design is mapped to a proxy with `clk` FFs (the `p1`/`p3`
//! latches) and `clkbar` FFs (the inserted `p2` latches), and the proxy is
//! retimed **moving only the `clkbar` FFs**, splitting each stage's logic
//! into two halves that can each run at twice the frequency.
//!
//! This crate implements that machinery generically: Leiserson–Saxe style
//! retiming (the iterative `FEAS` algorithm under a binary search on the
//! period) over a graph whose nodes are combinational cells, *immovable*
//! registers (lag pinned to 0; their in-edges carry a mandatory register),
//! and a frozen host node for the I/O boundary. Movable registers are edge
//! weights.
//!
//! Clock-gate enable pins are modeled as frozen sinks, so legality forces
//! every node whose output reaches an enable cone combinationally to keep
//! lag 0 — registers can never be retimed into or out of an enable cone.
//! Callers must additionally exclude registers *inside* enable cones from
//! the movable set (the conversion flow does).
//!
//! # Examples
//!
//! ```
//! use std::collections::HashSet;
//! use triphase_netlist::{Netlist, Builder, ClockSpec};
//! use triphase_cells::Library;
//! use triphase_retime::{retime_movable, RetimeOptions};
//!
//! // PI -> 6 inverters -> movable FF -> PO: retiming pulls the FF
//! // toward the middle of the chain.
//! let mut nl = Netlist::new("chain");
//! let mut b = Builder::new(&mut nl, "u");
//! let (ckp, ck) = b.netlist().add_input("ck");
//! let (_, din) = b.netlist().add_input("d");
//! let mut x = din;
//! for _ in 0..6 { x = b.not(x); }
//! let q = b.dff(x, ck);
//! b.netlist().add_output("out", q);
//! nl.clock = Some(ClockSpec::single(ckp, 1000.0));
//! let movable: HashSet<_> = nl.cells()
//!     .filter(|(_, c)| c.kind.is_ff()).map(|(id, _)| id).collect();
//! let lib = Library::synthetic_28nm();
//! let out = retime_movable(&nl, &lib, &movable, &RetimeOptions::default())?;
//! assert!(out.achieved_period_ps <= out.original_period_ps);
//! # Ok::<(), triphase_retime::Error>(())
//! ```

use std::collections::{HashMap, HashSet};
use std::fmt;
use triphase_cells::{CellKind, Library, PinClass, PinDir};
use triphase_netlist::{CellId, ConnIndex, NetId, Netlist, PortDir, PortId};

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by retiming.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Underlying netlist problem.
    Netlist(triphase_netlist::Error),
    /// The movable set is inconsistent (mixed kinds or clock nets, gated
    /// clocks, or empty).
    BadMovableSet(String),
    /// No legal retiming exists (combinational cycle in the model).
    Infeasible,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Netlist(e) => write!(f, "netlist error: {e}"),
            Error::BadMovableSet(m) => write!(f, "bad movable set: {m}"),
            Error::Infeasible => write!(f, "no legal retiming exists"),
        }
    }
}

impl std::error::Error for Error {}

impl From<triphase_netlist::Error> for Error {
    fn from(e: triphase_netlist::Error) -> Self {
        Error::Netlist(e)
    }
}

/// Retiming options.
#[derive(Debug, Clone)]
pub struct RetimeOptions {
    /// Target period for the proxy design (ps); the flow passes `T_c / 2`.
    /// `None` minimizes the period outright.
    pub target_period_ps: Option<f64>,
    /// Binary-search resolution (ps).
    pub tol_ps: f64,
    /// Extra FEAS iterations beyond the node count per feasibility probe.
    pub max_feas_iters: usize,
    /// Cap on movable registers per collapsed edge. The 3-phase flow
    /// passes `Some(1)`: two same-phase latches in series would be
    /// co-transparent (a C2 violation), so a proxy edge may never carry
    /// more than one `clkbar` register.
    pub max_movable_per_edge: Option<i64>,
    /// Fixed registers whose incident edges may carry **no** movable
    /// registers at all. The 3-phase flow passes the pinned `p2` latches:
    /// a movable `p2` register retimed next to a pinned one would again
    /// be a same-phase adjacency.
    pub no_adjacent: HashSet<CellId>,
    /// Combinational cells after whose output no movable register may be
    /// placed (edges with such a tail get cap 0). The 3-phase flow passes
    /// the comb fan-out regions of pinned `p2` latches.
    pub cap0_after: HashSet<CellId>,
    /// Combinational cells before whose inputs no movable register may be
    /// placed (edges with such a head get cap 0) — the comb fan-in
    /// regions of pinned `p2` latches.
    pub cap0_before: HashSet<CellId>,
}

impl Default for RetimeOptions {
    fn default() -> Self {
        RetimeOptions {
            target_period_ps: None,
            tol_ps: 1.0,
            max_feas_iters: 64,
            max_movable_per_edge: None,
            no_adjacent: HashSet::new(),
            cap0_after: HashSet::new(),
            cap0_before: HashSet::new(),
        }
    }
}

/// Outcome of a retiming run.
#[derive(Debug)]
pub struct RetimeOutcome {
    /// The rewritten netlist (compacted; old cell/net ids are invalid,
    /// port order is preserved).
    pub netlist: Netlist,
    /// Worst stage delay achieved by the retimed proxy (ps).
    pub achieved_period_ps: f64,
    /// Worst stage delay before retiming (ps).
    pub original_period_ps: f64,
    /// Whether the requested target was met.
    pub met_target: bool,
    /// Number of movable registers after rebuilding (named `rt_ff*`).
    pub movable_after: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    Comb(CellId),
    Fixed(CellId),
    /// I/O boundary, split into a source (PI) and a sink (PO/enable)
    /// node so PI-to-PO paths do not form false cycles.
    HostSource,
    HostSink,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sink {
    Pin(CellId, usize),
    Port(PortId),
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    from: usize,
    to: usize,
    /// Registers on this path (movable, plus the mandatory one of a fixed
    /// sink).
    weight: i64,
    /// 1 when the sink is a fixed register (it must keep its register).
    req: i64,
    /// Per-edge cap on movable registers (`None` = caller's global cap).
    cap: Option<i64>,
    sink: Sink,
}

struct RetimeGraph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    delay: Vec<f64>,
    frozen: Vec<bool>,
}

/// Retime `nl`, moving only the registers in `movable`.
///
/// All movable registers must be plain [`CellKind::Dff`] sharing one clock
/// net driven directly by a port (no clock gating) — exactly the state the
/// conversion flow creates for the inserted `p2` proxies.
///
/// # Errors
///
/// [`Error::BadMovableSet`] on inconsistent movable registers;
/// [`Error::Netlist`]/[`Error::Infeasible`] on structural problems.
pub fn retime_movable(
    nl: &Netlist,
    lib: &Library,
    movable: &HashSet<CellId>,
    opts: &RetimeOptions,
) -> Result<RetimeOutcome> {
    let idx = nl.index();
    let (kind, clock_net) = check_movable(nl, &idx, movable)?;
    let graph = build_graph(nl, lib, &idx, movable, opts);

    // The un-retimed placement must itself satisfy the caps.
    for e in &graph.edges {
        if let Some(cap) = e.cap.or(opts.max_movable_per_edge) {
            if e.weight - e.req > cap {
                return Err(Error::BadMovableSet(
                    "initial placement violates the per-edge movable cap".into(),
                ));
            }
        }
    }
    let r0 = vec![0i64; graph.nodes.len()];
    let original_period = critical_period(&graph, &r0).ok_or(Error::Infeasible)?;
    let iters = graph.nodes.len() + opts.max_feas_iters;

    let cap = opts.max_movable_per_edge;
    let (r, achieved) = match opts.target_period_ps {
        Some(target) => match feasible(&graph, target, iters, cap) {
            Some(r) => {
                let p = critical_period(&graph, &r).ok_or(Error::Infeasible)?;
                (r, p)
            }
            None => search_min_period(&graph, original_period, iters, opts)?,
        },
        None => search_min_period(&graph, original_period, iters, opts)?,
    };
    let met_target = opts
        .target_period_ps
        .is_none_or(|t| achieved <= t + opts.tol_ps);

    let netlist = apply(nl, &idx, &graph, &r, movable, kind, clock_net);
    netlist.validate()?;
    let movable_after = netlist
        .cells()
        .filter(|(_, c)| c.name.starts_with("rt_ff"))
        .count();
    Ok(RetimeOutcome {
        netlist,
        achieved_period_ps: achieved,
        original_period_ps: original_period,
        met_target,
        movable_after,
    })
}

fn check_movable(
    nl: &Netlist,
    idx: &ConnIndex,
    movable: &HashSet<CellId>,
) -> Result<(CellKind, NetId)> {
    let mut sig: Option<(CellKind, NetId)> = None;
    for &c in movable {
        let cell = nl
            .try_cell(c)
            .ok_or_else(|| Error::BadMovableSet(format!("dead cell {c}")))?;
        if cell.kind != CellKind::Dff {
            return Err(Error::BadMovableSet(format!(
                "movable register {} is {}, expected plain DFF",
                cell.name, cell.kind
            )));
        }
        let ck = cell.pin(cell.kind.clock_pin().expect("ff"));
        if idx.driving_port(ck).is_none() {
            return Err(Error::BadMovableSet(format!(
                "movable register {} has a gated/buffered clock",
                cell.name
            )));
        }
        match sig {
            None => sig = Some((cell.kind, ck)),
            Some((k, n)) => {
                if k != cell.kind || n != ck {
                    return Err(Error::BadMovableSet(
                        "movable registers mix kinds or clock nets".into(),
                    ));
                }
            }
        }
    }
    sig.ok_or_else(|| Error::BadMovableSet("movable set is empty".into()))
}

fn build_graph(
    nl: &Netlist,
    lib: &Library,
    idx: &ConnIndex,
    movable: &HashSet<CellId>,
    opts: &RetimeOptions,
) -> RetimeGraph {
    let no_adjacent = &opts.no_adjacent;
    let mut nodes = vec![Node::HostSource, Node::HostSink];
    let mut delay = vec![0.0f64, 0.0];
    let mut frozen = vec![true, true];
    let mut node_of: HashMap<CellId, usize> = HashMap::new();

    for (id, cell) in nl.cells() {
        if movable.contains(&id) {
            continue; // edge weights, not nodes
        }
        let node = if cell.kind.is_storage() {
            Node::Fixed(id)
        } else if cell.kind.is_comb() && cell.kind != CellKind::ClkBuf {
            Node::Comb(id)
        } else {
            continue; // clock network cells are not data nodes
        };
        node_of.insert(id, nodes.len());
        frozen.push(matches!(node, Node::Fixed(_)));
        delay.push(match node {
            Node::Comb(_) => {
                let lc = lib.cell(cell.kind);
                let load: f64 = idx
                    .loads(cell.output())
                    .iter()
                    .map(|p| lib.cell(nl.cell(p.cell).kind).pin_cap(p.pin))
                    .sum();
                lc.intrinsic_ps + lc.res_ps_per_ff * load
            }
            Node::Fixed(_) => lib.cell(cell.kind).timing.clk_to_q_ps,
            Node::HostSource | Node::HostSink => 0.0,
        });
        nodes.push(node);
    }

    let clock_ports: HashSet<PortId> = nl
        .clock
        .iter()
        .flat_map(|c| c.phases.iter().map(|p| p.port))
        .collect();

    // Walk forward from every node output (and every data PI) through
    // movable register chains; one edge per reached sink pin/port.
    let mut edges = Vec::new();
    let walk = |from: usize, start: NetId, edges: &mut Vec<Edge>| {
        let mut stack: Vec<(NetId, i64)> = vec![(start, 0)];
        let mut seen: HashSet<(NetId, i64)> = HashSet::new();
        while let Some((net, w)) = stack.pop() {
            if !seen.insert((net, w)) {
                continue;
            }
            for pin in idx.loads(net) {
                let cell = nl.cell(pin.cell);
                let def = cell.kind.pin_def(pin.pin);
                if def.dir != PinDir::Input || def.class == PinClass::Clock {
                    continue;
                }
                if movable.contains(&pin.cell) {
                    stack.push((cell.output(), w + 1));
                } else if let Some(&to) = node_of.get(&pin.cell) {
                    let req = i64::from(matches!(nodes[to], Node::Fixed(_)));
                    let barrier = no_adjacent.contains(&pin.cell)
                        || opts.cap0_before.contains(&pin.cell)
                        || matches!(nodes[from], Node::Fixed(c) if no_adjacent.contains(&c))
                        || matches!(nodes[from], Node::Comb(c) if opts.cap0_after.contains(&c));
                    edges.push(Edge {
                        from,
                        to,
                        weight: w + req,
                        req,
                        cap: if barrier { Some(0) } else { None },
                        sink: Sink::Pin(pin.cell, pin.pin),
                    });
                } else if cell.kind.is_clock_gate() {
                    // Enable pins are frozen sinks: legality then pins the
                    // lag of everything feeding an enable cone to 0.
                    edges.push(Edge {
                        from,
                        to: 1,
                        weight: w,
                        req: 0,
                        cap: None,
                        sink: Sink::Pin(pin.cell, pin.pin),
                    });
                }
            }
            for &port in idx.observers(net) {
                let barrier = matches!(nodes[from], Node::Fixed(c) if no_adjacent.contains(&c))
                    || matches!(nodes[from], Node::Comb(c) if opts.cap0_after.contains(&c));
                edges.push(Edge {
                    from,
                    to: 1,
                    weight: w,
                    req: 0,
                    cap: if barrier { Some(0) } else { None },
                    sink: Sink::Port(port),
                });
            }
        }
    };

    for (i, node) in nodes.clone().iter().enumerate() {
        match node {
            Node::HostSource | Node::HostSink => {}
            Node::Comb(id) | Node::Fixed(id) => {
                walk(i, nl.cell(*id).output(), &mut edges);
            }
        }
    }
    for (pi, port) in nl.ports().iter().enumerate() {
        let pid = PortId::from_index(pi);
        if port.dir == PortDir::Input && !clock_ports.contains(&pid) {
            walk(0, port.net, &mut edges);
        }
    }

    RetimeGraph {
        nodes,
        edges,
        delay,
        frozen,
    }
}

/// Worst stage delay under retiming `r` (max zero-weight path delay), or
/// `None` if the zero-weight subgraph is cyclic.
fn critical_period(g: &RetimeGraph, r: &[i64]) -> Option<f64> {
    deltas(g, r).map(|d| d.iter().cloned().fold(0.0, f64::max))
}

/// Arrival times Δ(v) over the zero-weight subgraph (Kahn + relaxation).
fn deltas(g: &RetimeGraph, r: &[i64]) -> Option<Vec<f64>> {
    let n = g.nodes.len();
    let mut indeg = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &g.edges {
        let w = e.weight + r[e.to] - r[e.from];
        debug_assert!(w >= e.req, "illegal retiming state");
        if w == 0 {
            adj[e.from].push(e.to);
            indeg[e.to] += 1;
        }
    }
    let mut delta: Vec<f64> = g.delay.clone();
    let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut visited = 0;
    while let Some(v) = queue.pop() {
        visited += 1;
        for &u in &adj[v] {
            if delta[v] + g.delay[u] > delta[u] {
                delta[u] = delta[v] + g.delay[u];
            }
            indeg[u] -= 1;
            if indeg[u] == 0 {
                queue.push(u);
            }
        }
    }
    if visited != n {
        return None; // combinational cycle
    }
    Some(delta)
}

/// FEAS: find a legal retiming meeting period `c`, or `None`. The
/// legality pre-check (out-edges may not drop below their mandatory
/// register count unless the head is bumped too) makes this slightly
/// conservative when frozen nodes are involved, which only costs a larger
/// reported period — never an illegal rebuild.
/// Bidirectional FEAS: the classic rule (bump the lag of nodes whose
/// *arrival* Δ exceeds `c`, pulling registers backward across them) plus a
/// dual push rule (decrement the lag of nodes whose *departure-side* path
/// Θ exceeds `c`, pushing registers forward) — needed because fixed
/// registers pin lags at 0, so purely monotone FEAS could never move the
/// freshly inserted `p2` proxies forward into their stages. Each candidate
/// move is applied only if every incident edge stays legal (mandatory
/// registers kept, movable caps respected), so any returned lag vector is
/// a legal retiming.
fn feasible(g: &RetimeGraph, c: f64, max_iters: usize, cap: Option<i64>) -> Option<Vec<i64>> {
    let n = g.nodes.len();
    let mut r = vec![0i64; n];
    let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in g.edges.iter().enumerate() {
        in_edges[e.to].push(i);
        out_edges[e.from].push(i);
    }
    let edge_legal = |e: &Edge, r: &[i64]| -> bool {
        let w = e.weight + r[e.to] - r[e.from];
        if w < e.req {
            return false;
        }
        match e.cap.or(cap) {
            Some(cap) => w - e.req <= cap,
            None => true,
        }
    };
    for _ in 0..max_iters {
        let delta = deltas(g, &r)?;
        let theta = thetas(g, &r)?;
        let mut worklist: Vec<(usize, i64, f64)> = Vec::new();
        for v in 0..n {
            if g.frozen[v] {
                if delta[v] > c + 1e-9 {
                    return None; // a frozen node can never be helped
                }
                continue;
            }
            let pull = delta[v] > c + 1e-9;
            let push = theta[v] > c + 1e-9;
            match (pull, push) {
                (true, false) => worklist.push((v, 1, delta[v])),
                (false, true) => worklist.push((v, -1, theta[v])),
                _ => {}
            }
        }
        if worklist.is_empty() {
            // No single-direction candidates left; done if timing is met.
            let worst = delta.iter().cloned().fold(0.0, f64::max);
            return if worst <= c + 1e-9 { Some(r) } else { None };
        }
        // Greedy legal application, worst violation first.
        worklist.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
        let mut applied = 0usize;
        for (v, dir, _) in worklist {
            r[v] += dir;
            let ok = in_edges[v]
                .iter()
                .chain(&out_edges[v])
                .all(|&ei| edge_legal(&g.edges[ei], &r));
            if ok {
                applied += 1;
            } else {
                r[v] -= dir;
            }
        }
        if applied == 0 {
            return None; // stuck
        }
    }
    None
}

/// Departure-side criticality: the longest zero-weight path delay from
/// each node to the next register (reverse of [`deltas`]).
fn thetas(g: &RetimeGraph, r: &[i64]) -> Option<Vec<f64>> {
    let n = g.nodes.len();
    let mut outdeg = vec![0usize; n];
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &g.edges {
        let w = e.weight + r[e.to] - r[e.from];
        if w == 0 {
            radj[e.to].push(e.from);
            outdeg[e.from] += 1;
        }
    }
    let mut theta: Vec<f64> = g.delay.clone();
    let mut queue: Vec<usize> = (0..n).filter(|&v| outdeg[v] == 0).collect();
    let mut visited = 0;
    while let Some(v) = queue.pop() {
        visited += 1;
        for &u in &radj[v] {
            if theta[v] + g.delay[u] > theta[u] {
                theta[u] = theta[v] + g.delay[u];
            }
            outdeg[u] -= 1;
            if outdeg[u] == 0 {
                queue.push(u);
            }
        }
    }
    if visited != n {
        return None;
    }
    Some(theta)
}

fn search_min_period(
    g: &RetimeGraph,
    original: f64,
    iters: usize,
    opts: &RetimeOptions,
) -> Result<(Vec<i64>, f64)> {
    let mut lo = 0.0f64;
    let mut hi = original;
    let mut best: (Vec<i64>, f64) = (vec![0; g.nodes.len()], original);
    while hi - lo > opts.tol_ps {
        let mid = 0.5 * (lo + hi);
        match feasible(g, mid, iters, opts.max_movable_per_edge) {
            Some(r) => {
                let p = critical_period(g, &r).ok_or(Error::Infeasible)?;
                if p < best.1 {
                    best = (r, p);
                }
                hi = mid;
            }
            None => lo = mid,
        }
    }
    Ok(best)
}

/// Rewrite the netlist for retiming `r`: remove all movable registers and
/// re-insert `w_r(e) − req(e)` of them on each edge, sharing register
/// chains between edges with a common path start.
fn apply(
    nl: &Netlist,
    idx: &ConnIndex,
    g: &RetimeGraph,
    r: &[i64],
    movable: &HashSet<CellId>,
    kind: CellKind,
    clock_net: NetId,
) -> Netlist {
    let mut out = nl.clone();
    for &c in movable {
        out.remove_cell(c);
    }
    let mut fresh = 0usize;
    let mut chains: HashMap<NetId, Vec<NetId>> = HashMap::new();
    // Original net -> replacement driver for output ports.
    let mut port_rewires: HashMap<NetId, NetId> = HashMap::new();

    for e in &g.edges {
        let w_r = e.weight + r[e.to] - r[e.from];
        let taps = usize::try_from(w_r - e.req).expect("legal retiming");
        let start = path_start(nl, idx, movable, e.sink);
        let chain = chains.entry(start).or_insert_with(|| vec![start]);
        while chain.len() <= taps {
            let prev = *chain.last().expect("chain seeded with start");
            let qn = out.add_net(format!("rt_n{fresh}"));
            out.add_cell(format!("rt_ff{fresh}"), kind, vec![prev, clock_net, qn]);
            fresh += 1;
            chain.push(qn);
        }
        let tap = chain[taps];
        match e.sink {
            Sink::Pin(c, pin) => out.set_pin(c, pin, tap),
            Sink::Port(p) => {
                let orig = nl.port(p).net;
                if orig != tap {
                    port_rewires.insert(orig, tap);
                }
            }
        }
    }
    for (orig, tap) in port_rewires {
        // The original PO net lost its (movable) driver; bridge it.
        out.add_cell(
            format!("rt_obuf{}", orig.index()),
            CellKind::Buf,
            vec![tap, orig],
        );
    }
    out.compact()
}

/// Walk backwards from an edge's sink through movable registers to the
/// path's start net (the source node's output or a PI net).
fn path_start(nl: &Netlist, idx: &ConnIndex, movable: &HashSet<CellId>, sink: Sink) -> NetId {
    let mut net = match sink {
        Sink::Pin(c, pin) => nl.cell(c).pin(pin),
        Sink::Port(p) => nl.port(p).net,
    };
    loop {
        match idx.driver(net) {
            Some(drv) if movable.contains(&drv.cell) => {
                net = nl.cell(drv.cell).pin(0);
            }
            _ => return net,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_netlist::{Builder, ClockSpec, PhaseDef};

    fn movable_set(nl: &Netlist, names: &[&str]) -> HashSet<CellId> {
        nl.cells()
            .filter(|(_, c)| names.contains(&c.name.as_str()))
            .map(|(id, _)| id)
            .collect()
    }

    fn two_phase_clock(nl: &mut Netlist) -> (NetId, NetId) {
        let (ckp, ck) = nl.add_input("clk");
        let (cbp, ckb) = nl.add_input("clkbar");
        let mut spec = ClockSpec::single(ckp, 1000.0);
        spec.phases.push(PhaseDef {
            port: cbp,
            rise_ps: 500.0,
            fall_ps: 1000.0,
        });
        nl.clock = Some(spec);
        (ck, ckb)
    }

    /// fixed FF -> 8 INV -> movable FF -> fixed FF.
    fn unbalanced() -> Netlist {
        let mut nl = Netlist::new("unb");
        let (ck, ckb) = two_phase_clock(&mut nl);
        let mut b = Builder::new(&mut nl, "u");
        let (_, din) = b.netlist().add_input("d");
        let q0 = b.net("q0");
        b.netlist()
            .add_cell("fix0", CellKind::Dff, vec![din, ck, q0]);
        let mut x = q0;
        for _ in 0..8 {
            x = b.not(x);
        }
        let qm = b.net("qm");
        b.netlist()
            .add_cell("mov0", CellKind::Dff, vec![x, ckb, qm]);
        let q2 = b.net("q2");
        b.netlist()
            .add_cell("fix1", CellKind::Dff, vec![qm, ck, q2]);
        b.netlist().add_output("out", q2);
        nl.validate().unwrap();
        nl
    }

    #[test]
    fn balances_unbalanced_stage() {
        let nl = unbalanced();
        let lib = Library::synthetic_28nm();
        let movable = movable_set(&nl, &["mov0"]);
        let out = retime_movable(&nl, &lib, &movable, &RetimeOptions::default()).unwrap();
        assert!(
            out.achieved_period_ps < out.original_period_ps * 0.75,
            "period {} -> {}",
            out.original_period_ps,
            out.achieved_period_ps
        );
        out.netlist.validate().unwrap();
        assert_eq!(out.netlist.stats().ffs, 3);
        assert_eq!(out.movable_after, 1);
    }

    #[test]
    fn already_balanced_is_stable() {
        let mut nl = Netlist::new("bal");
        let (ck, ckb) = two_phase_clock(&mut nl);
        let mut b = Builder::new(&mut nl, "u");
        let (_, din) = b.netlist().add_input("d");
        let q0 = b.net("q0");
        b.netlist()
            .add_cell("fix0", CellKind::Dff, vec![din, ck, q0]);
        let x1 = b.not(q0);
        let x2 = b.not(x1);
        let qm = b.net("qm");
        b.netlist()
            .add_cell("mov0", CellKind::Dff, vec![x2, ckb, qm]);
        let y1 = b.not(qm);
        let y2 = b.not(y1);
        let q2 = b.net("q2");
        b.netlist()
            .add_cell("fix1", CellKind::Dff, vec![y2, ck, q2]);
        b.netlist().add_output("out", q2);
        let lib = Library::synthetic_28nm();
        let movable = movable_set(&nl, &["mov0"]);
        let out = retime_movable(&nl, &lib, &movable, &RetimeOptions::default()).unwrap();
        assert!(out.achieved_period_ps <= out.original_period_ps + 1e-9);
        assert_eq!(out.netlist.stats().ffs, 3);
    }

    #[test]
    fn fixed_ffs_never_move() {
        let nl = unbalanced();
        let lib = Library::synthetic_28nm();
        let movable = movable_set(&nl, &["mov0"]);
        let out = retime_movable(&nl, &lib, &movable, &RetimeOptions::default()).unwrap();
        let rebuilt = &out.netlist;
        let fix0 = rebuilt
            .cells()
            .find(|(_, c)| c.name == "fix0")
            .expect("fix0 kept")
            .1;
        assert_eq!(rebuilt.net(fix0.pin(1)).name, "clk");
        let fix1 = rebuilt
            .cells()
            .find(|(_, c)| c.name == "fix1")
            .expect("fix1 kept")
            .1;
        assert_eq!(rebuilt.net(fix1.pin(1)).name, "clk");
    }

    #[test]
    fn rejects_mixed_clocks() {
        let nl = unbalanced();
        let lib = Library::synthetic_28nm();
        let movable = movable_set(&nl, &["mov0", "fix0"]);
        assert!(matches!(
            retime_movable(&nl, &lib, &movable, &RetimeOptions::default()),
            Err(Error::BadMovableSet(_))
        ));
    }

    #[test]
    fn rejects_empty_movable() {
        let nl = unbalanced();
        let lib = Library::synthetic_28nm();
        assert!(matches!(
            retime_movable(&nl, &lib, &HashSet::new(), &RetimeOptions::default()),
            Err(Error::BadMovableSet(_))
        ));
    }

    #[test]
    fn target_mode_reports_met_flag() {
        let nl = unbalanced();
        let lib = Library::synthetic_28nm();
        let movable = movable_set(&nl, &["mov0"]);
        let loose = retime_movable(
            &nl,
            &lib,
            &movable,
            &RetimeOptions {
                target_period_ps: Some(10_000.0),
                ..RetimeOptions::default()
            },
        )
        .unwrap();
        assert!(loose.met_target);
        let tight = retime_movable(
            &nl,
            &lib,
            &movable,
            &RetimeOptions {
                target_period_ps: Some(1.0),
                ..RetimeOptions::default()
            },
        )
        .unwrap();
        assert!(!tight.met_target, "1 ps is impossible");
    }

    #[test]
    fn fanout_shares_chain() {
        let mut nl = Netlist::new("fan");
        let (ck, ckb) = two_phase_clock(&mut nl);
        let mut b = Builder::new(&mut nl, "u");
        let (_, din) = b.netlist().add_input("d");
        let q0 = b.net("q0");
        b.netlist()
            .add_cell("fix0", CellKind::Dff, vec![din, ck, q0]);
        let x = b.not(q0);
        let qm = b.net("qm");
        b.netlist()
            .add_cell("mov0", CellKind::Dff, vec![x, ckb, qm]);
        let y1 = b.not(qm);
        let y2 = b.not(qm);
        let qa = b.net("qa");
        let qb = b.net("qb");
        b.netlist()
            .add_cell("fixa", CellKind::Dff, vec![y1, ck, qa]);
        b.netlist()
            .add_cell("fixb", CellKind::Dff, vec![y2, ck, qb]);
        b.netlist().add_output("oa", qa);
        b.netlist().add_output("ob", qb);
        let lib = Library::synthetic_28nm();
        let movable = movable_set(&nl, &["mov0"]);
        let out = retime_movable(&nl, &lib, &movable, &RetimeOptions::default()).unwrap();
        out.netlist.validate().unwrap();
        assert_eq!(out.movable_after, 1, "shared chain keeps one register");
    }

    #[test]
    fn po_fed_by_movable_register_survives() {
        // PI -> 4 INV -> movable FF -> PO. Retiming may move the FF; the
        // PO must stay functional (bridged by a buffer when rewired).
        let mut nl = Netlist::new("po");
        let (_ck, ckb) = two_phase_clock(&mut nl);
        let mut b = Builder::new(&mut nl, "u");
        let (_, din) = b.netlist().add_input("d");
        let mut x = din;
        for _ in 0..4 {
            x = b.not(x);
        }
        let qm = b.net("qm");
        b.netlist()
            .add_cell("mov0", CellKind::Dff, vec![x, ckb, qm]);
        b.netlist().add_output("out", qm);
        let lib = Library::synthetic_28nm();
        let movable = movable_set(&nl, &["mov0"]);
        let out = retime_movable(&nl, &lib, &movable, &RetimeOptions::default()).unwrap();
        out.netlist.validate().unwrap();
        assert_eq!(out.netlist.stats().ffs, 1);
        assert!(out.achieved_period_ps <= out.original_period_ps);
    }

    #[test]
    fn cg_enable_cone_is_pinned() {
        // comb node feeding both a data path (with a movable FF after it)
        // and an ICG enable: retiming must not move the register across
        // that node (its lag is pinned through the frozen enable sink).
        let mut nl = Netlist::new("cg");
        let (ck, ckb) = two_phase_clock(&mut nl);
        let mut b = Builder::new(&mut nl, "u");
        let (_, din) = b.netlist().add_input("d");
        let (_, en_src) = b.netlist().add_input("en");
        let q0 = b.net("q0");
        b.netlist()
            .add_cell("fix0", CellKind::Dff, vec![din, ck, q0]);
        // Deep logic then the shared node.
        let mut x = q0;
        for _ in 0..6 {
            x = b.not(x);
        }
        let shared = b.gate(CellKind::And(2), &[x, en_src]);
        let gck = b.net("gck");
        b.netlist()
            .add_cell("icg", CellKind::Icg, vec![shared, ck, gck]);
        let qm = b.net("qm");
        b.netlist()
            .add_cell("mov0", CellKind::Dff, vec![shared, ckb, qm]);
        let qg = b.net("qg");
        b.netlist()
            .add_cell("gff", CellKind::Dff, vec![qm, gck, qg]);
        b.netlist().add_output("out", qg);
        let lib = Library::synthetic_28nm();
        let movable = movable_set(&nl, &["mov0"]);
        let out = retime_movable(&nl, &lib, &movable, &RetimeOptions::default()).unwrap();
        out.netlist.validate().unwrap();
        // The ICG enable is still driven by the shared AND, not a register.
        let rebuilt = &out.netlist;
        let icg = rebuilt
            .cells()
            .find(|(_, c)| c.name == "icg")
            .expect("icg kept")
            .1;
        let ridx = rebuilt.index();
        let drv = ridx.driver(icg.pin(0)).expect("enable driven");
        assert!(
            rebuilt.cell(drv.cell).kind.is_comb(),
            "no register on enable"
        );
    }
}
