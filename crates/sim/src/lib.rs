//! Gate-level simulation for the `triphase` toolkit.
//!
//! A levelized, cycle-accurate, 3-valued simulator that understands
//! multi-phase clocks, level-sensitive latches, and the three ICG variants
//! (conventional, M1, M2) — everything the paper's validation and power
//! methodology needs:
//!
//! - [`Simulator`]: per-cycle stepping with per-net toggle counting
//!   ([`Activity`]), used for power estimation and DDCG statistics;
//! - [`equiv_stream`]: the paper's validation ("stream inputs into the FF
//!   and latch designs, compare output streams");
//! - [`run_random`]: pseudo-random workload driver.
//!
//! # Examples
//!
//! ```
//! use triphase_netlist::{Netlist, Builder, ClockSpec};
//! use triphase_sim::{Simulator, Logic};
//!
//! let mut nl = Netlist::new("ff");
//! let mut b = Builder::new(&mut nl, "u");
//! let (ckp, ck) = b.netlist().add_input("ck");
//! let (_, d) = b.netlist().add_input("d");
//! let q = b.dff(d, ck);
//! b.netlist().add_output("q", q);
//! nl.clock = Some(ClockSpec::single(ckp, 1000.0));
//! let dp = nl.find_port("d").unwrap();
//! let qp = nl.find_port("q").unwrap();
//! let mut sim = Simulator::new(&nl)?;
//! sim.reset_zero();
//! sim.set_input(dp, Logic::One);
//! sim.step_cycle(); // input applied after this cycle's capture edge
//! sim.step_cycle(); // captured here
//! assert_eq!(sim.output(qp), Logic::One);
//! # Ok::<(), triphase_sim::Error>(())
//! ```

mod compile;
mod equiv;
mod error;
mod logic;
mod packed;
mod sim;
mod vcd;

pub use compile::{
    collect_activity_compiled, run_random_compiled, CompiledAny, CompiledSim, Lanes, LowerStats,
    Mask, MAX_STREAMS,
};
pub use equiv::{
    data_inputs, data_outputs, equiv_stream, equiv_stream_warmup, replay_vectors, run_random,
    EquivReport, Mismatch, Stream,
};
pub use error::{Error, Result};
pub use logic::{eval_kind, Logic};
pub use packed::{
    collect_activity_packed, lane_seeds, run_random_packed, PackedLogic, PackedSim, LANES,
};
pub use sim::{Activity, Simulator};
pub use vcd::VcdWriter;
