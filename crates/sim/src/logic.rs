//! Three-valued logic.

use std::fmt;
use triphase_cells::CellKind;

/// A 3-valued logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown.
    #[default]
    X,
}

impl Logic {
    /// From a bool.
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// To a bool if known.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X => None,
        }
    }

    /// `true` if known (not X).
    pub fn is_known(self) -> bool {
        self != Logic::X
    }

    /// 3-valued NOT.
    #[allow(clippy::should_implement_trait)] // deliberate: mirrors and()/or()/xor()
    pub fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X => Logic::X,
        }
    }

    /// 3-valued AND.
    pub fn and(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// 3-valued OR.
    pub fn or(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// 3-valued XOR.
    pub fn xor(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::X, _) | (_, Logic::X) => Logic::X,
            (a, b) => Logic::from_bool(a != b),
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Logic::Zero => "0",
            Logic::One => "1",
            Logic::X => "x",
        })
    }
}

/// Evaluate a combinational [`CellKind`] over 3-valued inputs.
///
/// # Panics
///
/// Panics if `kind` is not combinational or the input count mismatches.
pub fn eval_kind(kind: CellKind, inputs: &[Logic]) -> Logic {
    assert!(kind.is_comb(), "eval_kind on {kind:?}");
    assert_eq!(inputs.len(), kind.input_count());
    match kind {
        CellKind::Const0 => Logic::Zero,
        CellKind::Const1 => Logic::One,
        CellKind::Buf | CellKind::ClkBuf => inputs[0],
        CellKind::Inv => inputs[0].not(),
        CellKind::And(_) => inputs.iter().fold(Logic::One, |a, &b| a.and(b)),
        CellKind::Or(_) => inputs.iter().fold(Logic::Zero, |a, &b| a.or(b)),
        CellKind::Nand(_) => inputs.iter().fold(Logic::One, |a, &b| a.and(b)).not(),
        CellKind::Nor(_) => inputs.iter().fold(Logic::Zero, |a, &b| a.or(b)).not(),
        CellKind::Xor(_) => inputs.iter().fold(Logic::Zero, |a, &b| a.xor(b)),
        CellKind::Xnor(_) => inputs.iter().fold(Logic::Zero, |a, &b| a.xor(b)).not(),
        CellKind::Mux2 => match inputs[2] {
            Logic::Zero => inputs[0],
            Logic::One => inputs[1],
            Logic::X => {
                if inputs[0] == inputs[1] {
                    inputs[0]
                } else {
                    Logic::X
                }
            }
        },
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables() {
        use Logic::{One, Zero, X};
        assert_eq!(Zero.and(X), Zero, "0 AND x = 0");
        assert_eq!(One.and(X), X);
        assert_eq!(One.or(X), One, "1 OR x = 1");
        assert_eq!(Zero.or(X), X);
        assert_eq!(One.xor(X), X);
        assert_eq!(X.not(), X);
        assert_eq!(One.xor(One), Zero);
        assert_eq!(One.xor(Zero), One);
    }

    #[test]
    fn conversions() {
        assert_eq!(Logic::from_bool(true), Logic::One);
        assert_eq!(Logic::One.to_bool(), Some(true));
        assert_eq!(Logic::X.to_bool(), None);
        assert!(Logic::Zero.is_known());
        assert!(!Logic::X.is_known());
        assert_eq!(format!("{}{}{}", Logic::Zero, Logic::One, Logic::X), "01x");
    }

    #[test]
    fn kind_eval_matches_bool_eval() {
        for kind in [
            CellKind::And(3),
            CellKind::Or(2),
            CellKind::Nand(2),
            CellKind::Nor(3),
            CellKind::Xor(2),
            CellKind::Xnor(4),
            CellKind::Inv,
            CellKind::Buf,
            CellKind::Mux2,
        ] {
            let n = kind.input_count();
            for m in 0..1u32 << n {
                let bools: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                let logics: Vec<Logic> = bools.iter().map(|&b| Logic::from_bool(b)).collect();
                assert_eq!(
                    eval_kind(kind, &logics),
                    Logic::from_bool(kind.eval_comb(&bools)),
                    "{kind:?} {bools:?}"
                );
            }
        }
    }

    #[test]
    fn mux_x_select_resolves_when_equal() {
        use Logic::{One, Zero, X};
        assert_eq!(eval_kind(CellKind::Mux2, &[One, One, X]), One);
        assert_eq!(eval_kind(CellKind::Mux2, &[Zero, One, X]), X);
    }
}
