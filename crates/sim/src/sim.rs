//! Levelized cycle-accurate simulation with multi-phase clocks.
//!
//! Each cycle is divided into sub-steps at every distinct clock-edge time
//! of the design's [`ClockSpec`]. At each sub-step the clock network
//! (buffers + clock gates) is re-evaluated, rising-edge FFs capture their
//! pre-edge data, and the combinational fabric plus transparent latches are
//! settled to a fixpoint. Per-net 0↔1 toggles are counted into an
//! [`Activity`] profile that drives power estimation and data-driven clock
//! gating.

use crate::error::{Error, Result};
use crate::logic::{eval_kind, Logic};
use std::collections::HashMap;
use triphase_cells::CellKind;
use triphase_netlist::{graph, CellId, ConnIndex, NetId, Netlist, PortDir, PortId};

/// Reject clock specifications the edge scheduler cannot order: a
/// non-finite or non-positive period makes `rem_euclid` produce NaN edge
/// times (which are unsortable), and non-finite edge times do the same.
pub(crate) fn validate_clock(clock: &triphase_netlist::ClockSpec) -> Result<()> {
    if !clock.period_ps.is_finite() || clock.period_ps <= 0.0 {
        return Err(Error::BadClock(format!(
            "period {} ps is not a positive finite time",
            clock.period_ps
        )));
    }
    for (i, p) in clock.phases.iter().enumerate() {
        if !p.rise_ps.is_finite() || !p.fall_ps.is_finite() {
            return Err(Error::BadClock(format!(
                "phase {i} has non-finite edge times (rise {} ps, fall {} ps)",
                p.rise_ps, p.fall_ps
            )));
        }
    }
    Ok(())
}

/// Per-net switching statistics.
#[derive(Debug, Clone, Default)]
pub struct Activity {
    /// Simulated cycles.
    pub cycles: u64,
    /// Total 0↔1 transitions per net (indexed by `NetId`).
    pub net_toggles: Vec<u64>,
}

impl Activity {
    /// Average toggles per cycle of `net`.
    ///
    /// # Errors
    ///
    /// [`Error::NoCycles`] if no cycles were simulated — reachable e.g.
    /// when a packed activity collection is asked for zero cycles; a
    /// silent `0.0` (or NaN) here would corrupt downstream power numbers.
    pub fn toggle_rate(&self, net: NetId) -> Result<f64> {
        if self.cycles == 0 {
            Err(Error::NoCycles)
        } else {
            Ok(self.net_toggles[net.index()] as f64 / self.cycles as f64)
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ClockEvent {
    /// Time within the cycle (ps).
    time: f64,
}

/// Cycle-accurate simulator over a netlist with a clock spec.
#[derive(Debug)]
pub struct Simulator<'a> {
    nl: &'a Netlist,
    comb_order: Vec<CellId>,
    clock_order: Vec<CellId>,
    storage: Vec<CellId>,
    /// Internal enable-latch state per clock-gate cell (by cell index).
    icg_state: Vec<Logic>,
    values: Vec<Logic>,
    pending_inputs: Vec<(NetId, Logic)>,
    activity: Activity,
    events: Vec<ClockEvent>,
    clock_ports: Vec<(PortId, NetId, usize)>,
    cycles: u64,
}

pub(crate) const MAX_SETTLE_PASSES: usize = 64;

impl<'a> Simulator<'a> {
    /// Build a simulator; all state starts at `X`.
    ///
    /// # Errors
    ///
    /// [`Error::NoClock`] if the netlist has no clock spec;
    /// [`Error::BadClock`] on an unusable one (zero/NaN period or
    /// non-finite edge times); [`Error::Netlist`] on combinational loops.
    pub fn new(nl: &'a Netlist) -> Result<Simulator<'a>> {
        let clock = nl.clock.as_ref().ok_or(Error::NoClock)?;
        validate_clock(clock)?;
        let idx = nl.index();
        let comb_order = graph::comb_topo_order(nl, &idx).map_err(Error::Netlist)?;
        let clock_order = clock_network_order(nl, &idx)?;
        let storage: Vec<CellId> = nl
            .cells()
            .filter(|(_, c)| c.kind.is_storage())
            .map(|(id, _)| id)
            .collect();

        // Distinct edge times within the cycle, ascending.
        let mut times: Vec<f64> = Vec::new();
        for p in &clock.phases {
            for t in [
                p.rise_ps.rem_euclid(clock.period_ps),
                p.fall_ps.rem_euclid(clock.period_ps),
            ] {
                if !times.iter().any(|&x| (x - t).abs() < 1e-9) {
                    times.push(t);
                }
            }
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let events = times.into_iter().map(|time| ClockEvent { time }).collect();

        let clock_ports = clock
            .phases
            .iter()
            .enumerate()
            .map(|(i, p)| (p.port, nl.port(p.port).net, i))
            .collect();

        Ok(Simulator {
            nl,
            comb_order,
            clock_order,
            storage,
            icg_state: vec![Logic::X; nl.cell_capacity()],
            values: vec![Logic::X; nl.net_capacity()],
            pending_inputs: Vec::new(),
            activity: Activity {
                cycles: 0,
                net_toggles: vec![0; nl.net_capacity()],
            },
            events,
            clock_ports,
            cycles: 0,
        })
    }

    /// Reset all nets and internal state to logic 0 (the gate-level
    /// equivalent of a global reset) and clear activity counters.
    ///
    /// Clock nets are left at their **end-of-cycle** levels (e.g. `p3`
    /// high in a 3-phase scheme), as if reset were released just before a
    /// cycle boundary with the clocks running. This makes latches whose
    /// transparency window ends at the boundary sample the reset state
    /// during cycle 0's pre-settle — matching an FF capturing
    /// reset-settled data at its first edge, which is what cycle-exact
    /// FF-vs-latch equivalence requires.
    ///
    /// For the same reason, clock-gate enable latches (`Icg`/`IcgM1`)
    /// come out of reset holding the **settled** reset-state enable, not
    /// a blanket zero: with the clocks running during reset every enable
    /// latch saw a transparent window and tracked its enable cone. A
    /// gate whose root clock is high at the release boundary (e.g. a
    /// `p3`-rooted ICG) is opaque at that instant, so a stale zero would
    /// never be corrected and would suppress the boundary capture that
    /// the corresponding FF performs at its first edge.
    pub fn reset_zero(&mut self) {
        self.values.fill(Logic::Zero);
        self.icg_state.fill(Logic::Zero);
        self.activity.net_toggles.fill(0);
        self.activity.cycles = 0;
        self.cycles = 0;
        self.pending_inputs.clear();
        let period = self.nl.clock.as_ref().expect("checked in new").period_ps;
        for i in 0..self.clock_ports.len() {
            let (_, net, phase) = self.clock_ports[i];
            let v = self.clock_level(phase, period - 1e-6);
            self.values[net.index()] = v;
        }
        self.eval_clock_network();
        // Settle the enable cones over the all-zero state, then load every
        // enable latch as if its transparent window had just closed.
        self.settle_data();
        for ci in 0..self.nl.cell_capacity() {
            let c = CellId::from_index(ci);
            let Some(cell) = self.nl.try_cell(c) else {
                continue;
            };
            if matches!(cell.kind, CellKind::Icg | CellKind::IcgM1) {
                self.icg_state[ci] = self.values[cell.pin(0).index()];
            }
        }
        self.eval_clock_network();
        self.settle_data();
    }

    /// Queue an input value; applied at the start of the next cycle.
    ///
    /// # Panics
    ///
    /// Panics if `port` is not an input port.
    pub fn set_input(&mut self, port: PortId, value: Logic) {
        let p = self.nl.port(port);
        assert_eq!(p.dir, PortDir::Input, "set_input on non-input");
        self.pending_inputs.push((p.net, value));
    }

    /// Current value seen by an output port.
    pub fn output(&self, port: PortId) -> Logic {
        self.values[self.nl.port(port).net.index()]
    }

    /// Current value of a net.
    pub fn net_value(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// Accumulated switching activity.
    pub fn activity(&self) -> &Activity {
        &self.activity
    }

    /// Cycles simulated since the last reset.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Current enable-latch state of a clock-gate cell (`Icg`/`IcgM1`);
    /// [`Logic::X`] for cells without internal state. Formal equivalence
    /// checking samples this to seed candidate state correspondences.
    pub fn icg_state(&self, cell: CellId) -> Logic {
        self.icg_state[cell.index()]
    }

    fn set_net(&mut self, net: NetId, val: Logic) {
        let old = self.values[net.index()];
        if old != val {
            if old.is_known() && val.is_known() {
                self.activity.net_toggles[net.index()] += 1;
            }
            self.values[net.index()] = val;
        }
    }

    /// Advance one full clock cycle.
    ///
    /// Input convention (matching the paper's treatment of PIs as
    /// `p1`-launched signals): pending inputs are applied **just after**
    /// the cycle's first clock event, so edge-triggered state captures the
    /// *previous* cycle's input values, exactly like a registered
    /// testbench driving inputs after the active edge.
    pub fn step_cycle(&mut self) {
        // Make combinational state consistent before the capture edge
        // (no-op in steady state; settles the reset state on cycle 0).
        self.settle_data();
        let events: Vec<ClockEvent> = self.events.clone();
        for (i, ev) in events.iter().enumerate() {
            self.process_clock_event(ev.time);
            if i == 0 {
                let pending = std::mem::take(&mut self.pending_inputs);
                for (net, v) in pending {
                    self.set_net(net, v);
                }
                self.settle_data();
            }
        }
        self.cycles += 1;
        self.activity.cycles += 1;
    }

    fn clock_level(&self, phase: usize, t: f64) -> Logic {
        let clock = self.nl.clock.as_ref().expect("checked in new");
        let p = &clock.phases[phase];
        let period = clock.period_ps;
        let (r, f) = (p.rise_ps.rem_euclid(period), p.fall_ps.rem_euclid(period));
        let high = if r < f {
            t >= r - 1e-9 && t < f - 1e-9
        } else {
            // Wrapping window.
            t >= r - 1e-9 || t < f - 1e-9
        };
        Logic::from_bool(high)
    }

    fn process_clock_event(&mut self, t: f64) {
        // Up to a few rounds in case a gated clock rises as a result of
        // data settling (models M2-style hazards instead of hiding them).
        for _ in 0..4 {
            let before_ck: Vec<Logic> = self
                .storage
                .iter()
                .map(|&c| {
                    let cell = self.nl.cell(c);
                    self.values[cell.pin(cell.kind.clock_pin().unwrap()).index()]
                })
                .collect();

            // Drive clock roots for this instant.
            for i in 0..self.clock_ports.len() {
                let (_, net, phase) = self.clock_ports[i];
                let v = self.clock_level(phase, t);
                self.set_net(net, v);
            }
            self.eval_clock_network();

            // Capture: FFs whose clock rose latch their pre-edge data.
            let mut updates: Vec<(NetId, Logic)> = Vec::new();
            for (si, &c) in self.storage.iter().enumerate() {
                let cell = self.nl.cell(c);
                if !cell.kind.is_ff() {
                    continue;
                }
                let ck = self.values[cell.pin(cell.kind.clock_pin().unwrap()).index()];
                // A definite rise captures; an X on either side of the
                // transition is a *maybe*-edge (e.g. a gate enable cone
                // fed by unknown inputs): the FF may or may not have
                // captured, so the result merges to X unless D == Q —
                // mirroring the conservative unknown-gate latch model.
                // Binary clock waveforms never take the maybe path.
                let rose = before_ck[si] == Logic::Zero && ck == Logic::One;
                let maybe =
                    !rose && (ck == Logic::X || (before_ck[si] == Logic::X && ck == Logic::One));
                if !rose && !maybe {
                    continue;
                }
                let d = self.values[cell.pin(0).index()];
                let q_net = cell.output();
                let q = self.values[q_net.index()];
                let captured = match cell.kind {
                    CellKind::Dff => d,
                    CellKind::DffEn => {
                        let en = self.values[cell.pin(1).index()];
                        match en {
                            Logic::One => d,
                            Logic::Zero => q,
                            Logic::X => {
                                if d == q {
                                    d
                                } else {
                                    Logic::X
                                }
                            }
                        }
                    }
                    _ => unreachable!(),
                };
                let next = if rose || captured == q {
                    captured
                } else {
                    Logic::X
                };
                updates.push((q_net, next));
            }
            for (net, v) in updates {
                self.set_net(net, v);
            }
            let changed_clocks = self.settle_data();
            if !changed_clocks {
                break;
            }
        }
    }

    /// Evaluate clock buffers and clock gates in dependency order.
    fn eval_clock_network(&mut self) {
        let order = std::mem::take(&mut self.clock_order);
        for &c in &order {
            self.eval_clock_cell(c);
        }
        self.clock_order = order;
    }

    fn eval_clock_cell(&mut self, c: CellId) {
        let cell = self.nl.cell(c);
        let out = cell.output();
        let v = match cell.kind {
            CellKind::ClkBuf | CellKind::Buf => self.values[cell.pin(0).index()],
            CellKind::Icg => {
                let en = self.values[cell.pin(0).index()];
                let ck = self.values[cell.pin(1).index()];
                if ck != Logic::One {
                    // Enable latch transparent while CK low.
                    self.icg_state[c.index()] = en;
                }
                ck.and(self.icg_state[c.index()])
            }
            CellKind::IcgM1 => {
                let en = self.values[cell.pin(0).index()];
                let p3 = self.values[cell.pin(1).index()];
                let ck = self.values[cell.pin(2).index()];
                if p3 == Logic::One {
                    self.icg_state[c.index()] = en;
                }
                ck.and(self.icg_state[c.index()])
            }
            CellKind::IcgM2 => {
                let en = self.values[cell.pin(0).index()];
                let ck = self.values[cell.pin(1).index()];
                ck.and(en)
            }
            _ => unreachable!("non-clock cell in clock order"),
        };
        self.set_net(out, v);
    }

    /// Settle combinational logic, transparent latches, and (data-driven)
    /// clock-gate outputs. Returns `true` if any storage clock net changed
    /// during settling (an M2-style mid-step clock event).
    fn settle_data(&mut self) -> bool {
        let mut clock_changed = false;
        let mut scratch: Vec<Logic> = Vec::with_capacity(8);
        for _pass in 0..MAX_SETTLE_PASSES {
            let mut changed = false;
            // Combinational fabric.
            let order = std::mem::take(&mut self.comb_order);
            for &c in &order {
                let cell = self.nl.cell(c);
                scratch.clear();
                scratch.extend(cell.inputs().iter().map(|&n| self.values[n.index()]));
                let v = eval_kind(cell.kind, &scratch);
                let out = cell.output();
                if self.values[out.index()] != v {
                    changed = true;
                    self.set_net(out, v);
                }
            }
            self.comb_order = order;
            // Clock gates may see new enables.
            let clk_snapshot: Vec<Logic> = self
                .storage
                .iter()
                .map(|&c| {
                    let cell = self.nl.cell(c);
                    self.values[cell.pin(cell.kind.clock_pin().unwrap()).index()]
                })
                .collect();
            self.eval_clock_network();
            for (si, &c) in self.storage.iter().enumerate() {
                let cell = self.nl.cell(c);
                let now = self.values[cell.pin(cell.kind.clock_pin().unwrap()).index()];
                if clk_snapshot[si] != now {
                    clock_changed = true;
                    changed = true;
                }
            }
            // Transparent latches.
            let storage = std::mem::take(&mut self.storage);
            for &c in &storage {
                let cell = self.nl.cell(c);
                if !cell.kind.is_latch() {
                    continue;
                }
                let g = self.values[cell.pin(1).index()];
                let transparent = match cell.kind {
                    CellKind::LatchH => g == Logic::One,
                    CellKind::LatchL => g == Logic::Zero,
                    _ => unreachable!(),
                };
                let unknown_gate = g == Logic::X;
                let d = self.values[cell.pin(0).index()];
                let q_net = cell.output();
                let q = self.values[q_net.index()];
                let next = if transparent {
                    d
                } else if unknown_gate && d != q {
                    Logic::X
                } else {
                    q
                };
                if next != q {
                    changed = true;
                    self.set_net(q_net, next);
                }
            }
            self.storage = storage;
            if !changed {
                return clock_changed;
            }
        }
        clock_changed
    }
}

/// Topological order of the clock network (buffers driving gates etc.).
/// Shared with the packed kernel, whose compiled clock ops must follow
/// the exact same dependency order.
pub(crate) fn clock_network_order(nl: &Netlist, idx: &ConnIndex) -> Result<Vec<CellId>> {
    let is_clock_cell = |k: CellKind| k.is_clock_gate() || k == CellKind::ClkBuf;
    let mut order = Vec::new();
    let mut state: HashMap<CellId, u8> = HashMap::new(); // 1=visiting, 2=done
    let mut stack: Vec<(CellId, bool)> = nl
        .cells()
        .filter(|(_, c)| is_clock_cell(c.kind))
        .map(|(id, _)| (id, false))
        .collect();
    while let Some((c, processed)) = stack.pop() {
        if processed {
            state.insert(c, 2);
            order.push(c);
            continue;
        }
        match state.get(&c) {
            Some(2) => continue,
            Some(1) => {
                return Err(Error::Netlist(triphase_netlist::Error::Invalid(format!(
                    "clock network cycle at {}",
                    nl.cell(c).name
                ))))
            }
            _ => {}
        }
        state.insert(c, 1);
        stack.push((c, true));
        // Depend on the upstream clock cell driving our clock input(s).
        let cell = nl.cell(c);
        let dep_pins: Vec<usize> = match cell.kind {
            CellKind::ClkBuf => vec![0],
            CellKind::Icg | CellKind::IcgM2 => vec![1],
            CellKind::IcgM1 => vec![1, 2],
            _ => unreachable!(),
        };
        for pin in dep_pins {
            if let Some(drv) = idx.driver(cell.pin(pin)) {
                if is_clock_cell(nl.cell(drv.cell).kind) {
                    match state.get(&drv.cell).copied() {
                        Some(2) => {}
                        Some(_) => {
                            return Err(Error::Netlist(triphase_netlist::Error::Invalid(format!(
                                "clock network cycle at {}",
                                nl.cell(drv.cell).name
                            ))))
                        }
                        None => stack.push((drv.cell, false)),
                    }
                }
            }
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_netlist::{Builder, ClockSpec};

    #[test]
    fn zero_cycle_activity_is_a_typed_error() {
        // Regression: an empty activity used to yield NaN/undefined
        // toggle rates; it must surface as Error::NoCycles instead.
        let act = Activity {
            cycles: 0,
            net_toggles: vec![5],
        };
        let net = triphase_netlist::NetId::from_index(0);
        assert!(matches!(act.toggle_rate(net), Err(Error::NoCycles)));
        let nonzero = Activity {
            cycles: 10,
            net_toggles: vec![5],
        };
        assert_eq!(nonzero.toggle_rate(net).unwrap(), 0.5);
    }

    #[test]
    fn degenerate_clock_periods_are_typed_errors() {
        // Regression (found by the fuzz campaign): a zero/NaN clock
        // period made `rem_euclid` produce NaN edge times, and sorting
        // them panicked inside both simulator constructors.
        for period in [0.0, -1000.0, f64::NAN, f64::INFINITY] {
            let mut nl = counter();
            nl.clock.as_mut().unwrap().period_ps = period;
            assert!(
                matches!(Simulator::new(&nl), Err(Error::BadClock(_))),
                "scalar accepted period {period}"
            );
            assert!(
                matches!(crate::PackedSim::new(&nl, 1), Err(Error::BadClock(_))),
                "packed accepted period {period}"
            );
        }
    }

    /// 3-bit counter with plain FFs.
    fn counter() -> Netlist {
        let mut nl = Netlist::new("cnt");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let q0 = b.net("q0");
        let q1 = b.net("q1");
        let q2 = b.net("q2");
        let one = b.const1();
        let q = triphase_netlist::Word(vec![q0, q1, q2]);
        let one_w = triphase_netlist::Word(vec![one, b.const0(), b.const0()]);
        let (next, _) = b.add(&q, &one_w, None);
        for (i, (&qn, d)) in [q0, q1, q2].iter().zip(next.bits()).enumerate() {
            let name = format!("ff{i}");
            b.netlist().add_cell(name, CellKind::Dff, vec![*d, ck, qn]);
        }
        b.word_output("q", &q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        nl.validate().unwrap();
        nl
    }

    fn read_counter(sim: &Simulator, nl: &Netlist) -> u32 {
        (0..3)
            .map(|i| {
                let p = nl.find_port(&format!("q_{i}")).unwrap();
                match sim.output(p) {
                    Logic::One => 1 << i,
                    _ => 0,
                }
            })
            .sum()
    }

    #[test]
    fn counter_counts() {
        let nl = counter();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        for expect in 1..=10u32 {
            sim.step_cycle();
            assert_eq!(read_counter(&sim, &nl), expect % 8, "cycle {expect}");
        }
        assert_eq!(sim.cycles(), 10);
    }

    #[test]
    fn activity_counts_toggles() {
        let nl = counter();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        for _ in 0..8 {
            sim.step_cycle();
        }
        let act = sim.activity();
        assert_eq!(act.cycles, 8);
        // q0 toggles every cycle.
        let q0 = nl.find_port("q_0").unwrap();
        let q0_net = nl.port(q0).net;
        assert_eq!(act.net_toggles[q0_net.index()], 8);
        assert!((act.toggle_rate(q0_net).unwrap() - 1.0).abs() < 1e-9);
        // The clock toggles twice per cycle.
        let ck = nl.find_port("ck").unwrap();
        let ck_net = nl.port(ck).net;
        assert_eq!(act.net_toggles[ck_net.index()], 16);
    }

    #[test]
    fn dffen_holds_when_disabled() {
        let mut nl = Netlist::new("en");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (enp, en) = b.netlist().add_input("en");
        let (dp, d) = b.netlist().add_input("d");
        let q = b.dffen(d, en, ck);
        b.netlist().add_output("q", q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let qp = nl.find_port("q").unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        // Inputs land after the edge, so captures lag by one cycle.
        sim.set_input(dp, Logic::One);
        sim.set_input(enp, Logic::One);
        sim.step_cycle();
        sim.step_cycle();
        assert_eq!(sim.output(qp), Logic::One);
        sim.set_input(dp, Logic::Zero);
        sim.set_input(enp, Logic::Zero);
        sim.step_cycle();
        sim.step_cycle();
        assert_eq!(sim.output(qp), Logic::One, "disabled FF holds");
        sim.set_input(enp, Logic::One);
        sim.set_input(dp, Logic::Zero);
        sim.step_cycle();
        sim.step_cycle();
        assert_eq!(sim.output(qp), Logic::Zero);
    }

    #[test]
    fn latch_transparency_window() {
        // LatchH on a 1-phase clock: transparent in the first half-cycle.
        let mut nl = Netlist::new("lat");
        let (ckp, ck) = nl.add_input("ck");
        let (dp, d) = nl.add_input("d");
        let q = nl.add_net("q");
        nl.add_cell("l0", CellKind::LatchH, vec![d, ck, q]);
        nl.add_output("q", q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let qp = nl.find_port("q").unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        sim.set_input(dp, Logic::One);
        sim.step_cycle();
        assert_eq!(sim.output(qp), Logic::One, "captured while transparent");
        sim.set_input(dp, Logic::Zero);
        sim.step_cycle();
        assert_eq!(sim.output(qp), Logic::Zero);
    }

    #[test]
    fn icg_gates_clock_and_saves_toggles() {
        // Two FFs: one behind an ICG with EN=0, one free-running.
        let mut nl = Netlist::new("cg");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (enp, en) = b.netlist().add_input("en");
        let (dp, d) = b.netlist().add_input("d");
        let gck = b.net("gck");
        b.netlist()
            .add_cell("icg", CellKind::Icg, vec![en, ck, gck]);
        let q_gated = b.dff(d, gck);
        let q_free = b.dff(d, ck);
        b.netlist().add_output("qg", q_gated);
        b.netlist().add_output("qf", q_free);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let qg = nl.find_port("qg").unwrap();
        let qf = nl.find_port("qf").unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        sim.set_input(enp, Logic::Zero);
        sim.set_input(dp, Logic::One);
        sim.step_cycle();
        sim.step_cycle();
        assert_eq!(sim.output(qf), Logic::One, "free FF captured");
        assert_eq!(sim.output(qg), Logic::Zero, "gated FF froze");
        let gck_toggles = sim.activity().net_toggles[gck.index()];
        assert_eq!(gck_toggles, 0, "gated clock net silent");
        // Enable: gated FF follows again.
        sim.set_input(enp, Logic::One);
        sim.step_cycle();
        sim.step_cycle();
        assert_eq!(sim.output(qg), Logic::One);
        assert!(sim.activity().net_toggles[gck.index()] > 0);
    }

    #[test]
    fn icg_enable_sampled_safely() {
        // Enable raised mid-simulation must not produce a runt pulse: the
        // ICG's internal latch only opens while CK is low.
        let mut nl = Netlist::new("cg2");
        let (ckp, ck) = nl.add_input("ck");
        let (enp, en) = nl.add_input("en");
        let (_, d) = nl.add_input("d");
        let gck = nl.add_net("gck");
        let q = nl.add_net("q");
        nl.add_cell("icg", CellKind::Icg, vec![en, ck, gck]);
        nl.add_cell("ff", CellKind::Dff, vec![d, gck, q]);
        nl.add_output("q", q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        sim.set_input(enp, Logic::One);
        sim.step_cycle(); // enable latched while CK is low this cycle
        sim.step_cycle(); // first gated pulse: exactly one rise + fall
        assert_eq!(sim.activity().net_toggles[gck.index()], 2);
        let _ = ckp;
    }

    #[test]
    fn three_phase_latch_pipeline_shifts() {
        // p1 latch -> p2 latch -> p3 latch behaves as one FF stage per
        // cycle boundary-to-boundary.
        let mut nl = Netlist::new("p3");
        let (p1, c1) = nl.add_input("p1");
        let (p2, c2) = nl.add_input("p2");
        let (p3, c3) = nl.add_input("p3");
        let (dp, d) = nl.add_input("d");
        let q1 = nl.add_net("q1");
        let q2 = nl.add_net("q2");
        let q3 = nl.add_net("q3");
        nl.add_cell("l1", CellKind::LatchH, vec![d, c1, q1]);
        nl.add_cell("l2", CellKind::LatchH, vec![q1, c2, q2]);
        nl.add_cell("l3", CellKind::LatchH, vec![q2, c3, q3]);
        nl.add_output("q", q3);
        nl.clock = Some(ClockSpec::equal_phases(&[p1, p2, p3], 900.0));
        let qp = nl.find_port("q").unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        sim.set_input(dp, Logic::One);
        sim.step_cycle();
        assert_eq!(
            sim.output(qp),
            Logic::One,
            "value traverses all three phases within the cycle"
        );
        sim.set_input(dp, Logic::Zero);
        sim.step_cycle();
        assert_eq!(sim.output(qp), Logic::Zero);
    }
}
