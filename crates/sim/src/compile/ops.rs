//! Bytecode instruction set and threaded-dispatch handlers.
//!
//! The lowered combinational fabric is a flat array of fixed-size
//! [`Instr`] words. The serial hot loop does **threaded dispatch**: an
//! opcode indexes a table of monomorphized handler function pointers
//! (one table per lane width `W`), each handler evaluates one
//! specialized operation over all `64 * W` lanes and returns the next
//! program counter — no per-gate `match`, no operand-count branch for
//! the common 2/3-input shapes, and superop ([`FUSED2`]) handlers
//! retire two gates per dispatch with the intermediate kept in a
//! register.
//!
//! The parallel per-level path evaluates the *plain* (unfused) stream
//! with [`eval_value`], which reads only slots below the level being
//! computed — see `lower.rs` for why that partition is sound.

use super::lanes::{Lanes, Mask};

/// One bytecode word: opcode + complement/descriptor flags + up to three
/// operand slots and an output slot. N-ary gates use `a`/`b` as a range
/// into the shared operand arena.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Instr {
    /// Opcode (see [`opcode`]).
    pub op: u8,
    /// Gate descriptor for [`GATE2C`]/[`FUSED2`]/[`FUSED_ARG`]; unused
    /// (zero) otherwise.
    pub flags: u8,
    /// First operand slot, or arena start for N-ary gates.
    pub a: u32,
    /// Second operand slot, or arena length for N-ary gates.
    pub b: u32,
    /// Third operand slot (`Mux2` select, 3-input gates); else zero.
    pub c: u32,
    /// Output slot.
    pub out: u32,
}

pub(crate) use opcode::*;

/// Opcode namespace. Specialized opcodes exist for every shape the
/// benchmark netlists hit hot (2- and 3-input gates with and without
/// output inversion); the generic forms ([`GATE2C`], the N-ary family)
/// cover the rest.
pub(crate) mod opcode {
    /// Write constant 0.
    pub const CONST0: u8 = 0;
    /// Write constant 1.
    pub const CONST1: u8 = 1;
    /// `out = a`.
    pub const COPY: u8 = 2;
    /// `out = !a`.
    pub const COPY_INV: u8 = 3;
    /// `out = a & b`.
    pub const AND2: u8 = 4;
    /// `out = !(a & b)`.
    pub const NAND2: u8 = 5;
    /// `out = a | b`.
    pub const OR2: u8 = 6;
    /// `out = !(a | b)`.
    pub const NOR2: u8 = 7;
    /// `out = a ^ b`.
    pub const XOR2: u8 = 8;
    /// `out = !(a ^ b)`.
    pub const XNOR2: u8 = 9;
    /// Generic 2-input gate described by `flags` (absorbed inverters).
    pub const GATE2C: u8 = 10;
    /// `out = mux(sel = c, d0 = a, d1 = b)`.
    pub const MUX2: u8 = 11;
    /// `out = a & b & c`.
    pub const AND3: u8 = 12;
    /// `out = !(a & b & c)`.
    pub const NAND3: u8 = 13;
    /// `out = a | b | c`.
    pub const OR3: u8 = 14;
    /// `out = !(a | b | c)`.
    pub const NOR3: u8 = 15;
    /// `out = a ^ b ^ c`.
    pub const XOR3: u8 = 16;
    /// `out = !(a ^ b ^ c)`.
    pub const XNOR3: u8 = 17;
    /// N-ary AND over `arena[a..a + b]`.
    pub const ANDN: u8 = 18;
    /// N-ary NAND.
    pub const NANDN: u8 = 19;
    /// N-ary OR.
    pub const ORN: u8 = 20;
    /// N-ary NOR.
    pub const NORN: u8 = 21;
    /// N-ary XOR.
    pub const XORN: u8 = 22;
    /// N-ary XNOR.
    pub const XNORN: u8 = 23;
    /// Fused gate pair (superop): this word is gate 1 (descriptor in
    /// `flags`, inputs `a`/`b`, output `out`); the following
    /// [`FUSED_ARG`] word is gate 2, whose first input is gate 1's
    /// result (still in a register) and whose second input is that
    /// word's `a` slot.
    pub const FUSED2: u8 = 24;
    /// Second word of a [`FUSED2`] pair; never dispatched on its own.
    pub const FUSED_ARG: u8 = 25;
    /// Number of opcodes (dispatch-table size).
    pub const N_OPS: usize = 26;
}

/// Gate-descriptor flag layout for [`GATE2C`] and fused words:
/// bits 0-1 = kind (0 AND, 1 OR, 2 XOR, 3 COPY — copy ignores the
/// second input), bit 2 = complement first input, bit 3 = complement
/// second input, bit 4 = complement output.
pub(crate) mod desc {
    /// Kind mask (bits 0-1).
    pub const KIND: u8 = 0b11;
    /// AND kind.
    pub const K_AND: u8 = 0;
    /// OR kind.
    pub const K_OR: u8 = 1;
    /// XOR kind.
    pub const K_XOR: u8 = 2;
    /// COPY kind (unary).
    pub const K_COPY: u8 = 3;
    /// Complement first input.
    pub const CA: u8 = 1 << 2;
    /// Complement second input.
    pub const CB: u8 = 1 << 3;
    /// Complement output.
    pub const CO: u8 = 1 << 4;
}

/// Execution context for the serial threaded-dispatch loop: the dense
/// slot-indexed value/toggle files plus the per-pass `changed` flag.
pub(crate) struct ExecCtx<'a, const W: usize> {
    /// Slot-indexed packed values.
    pub values: &'a mut [Lanes<W>],
    /// Slot-indexed toggle counters (summed over active lanes).
    pub toggles: &'a mut [u64],
    /// Operand arena for N-ary gates.
    pub arena: &'a [u32],
    /// Active-lane mask.
    pub mask: Mask<W>,
    /// Set when any output slot changed value this pass.
    pub changed: bool,
    /// Per-slot changed-since-readers-last-ran bitset. Handlers skip an
    /// instruction when every input slot is clean: unchanged inputs
    /// reproduce the unchanged output with zero toggles, so skipping is
    /// observationally identical to re-evaluating (the write path is
    /// gated on inequality). The owner sets bits on every external
    /// write and clears the whole set after each serial pass — the
    /// stream is in topological order, so by then every reader of every
    /// marked slot has run.
    pub dirty: &'a mut [u64],
}

/// Test slot `s`'s dirty bit.
#[inline(always)]
fn dirty<const W: usize>(ctx: &ExecCtx<'_, W>, s: u32) -> bool {
    ctx.dirty[(s >> 6) as usize] & (1u64 << (s & 63)) != 0
}

/// Write `v` to `out`, counting toggles on known→known differing lanes
/// — the exact packed-kernel `set_net` rule, gated on inequality like
/// the packed settle loop (equal values imply zero toggles). A changed
/// slot is marked dirty so downstream instructions re-evaluate.
#[inline(always)]
fn write<const W: usize>(ctx: &mut ExecCtx<'_, W>, out: u32, v: Lanes<W>) {
    let old = ctx.values[out as usize];
    let (diff, t) = old.delta_toggles(v, ctx.mask);
    if diff {
        ctx.toggles[out as usize] += t;
        ctx.values[out as usize] = v;
        ctx.dirty[(out >> 6) as usize] |= 1u64 << (out & 63);
        ctx.changed = true;
    }
}

/// Evaluate a gate descriptor (see [`desc`]) on two operand values.
#[inline(always)]
fn eval_desc<const W: usize>(flags: u8, a: Lanes<W>, b: Lanes<W>) -> Lanes<W> {
    let a = a.cnot(flags & desc::CA != 0);
    let b = b.cnot(flags & desc::CB != 0);
    let v = match flags & desc::KIND {
        desc::K_AND => a.and(b),
        desc::K_OR => a.or(b),
        desc::K_XOR => a.xor(b),
        _ => a,
    };
    v.cnot(flags & desc::CO != 0)
}

/// Handler signature: evaluate the instruction(s) at `pc` and return the
/// next program counter.
pub(crate) type Handler<const W: usize> = fn(&mut ExecCtx<'_, W>, &[Instr], usize) -> usize;

macro_rules! h_const {
    ($f:ident, $k:expr) => {
        fn $f<const W: usize>(ctx: &mut ExecCtx<'_, W>, ins: &[Instr], pc: usize) -> usize {
            // No inputs: only the reset-time mark on the out slot ever
            // re-runs a constant.
            if dirty(ctx, ins[pc].out) {
                write(ctx, ins[pc].out, $k);
            }
            pc + 1
        }
    };
}
h_const!(h_const0, Lanes::ZERO);
h_const!(h_const1, Lanes::ONE);

macro_rules! h_copy {
    ($f:ident, $co:expr) => {
        fn $f<const W: usize>(ctx: &mut ExecCtx<'_, W>, ins: &[Instr], pc: usize) -> usize {
            let i = ins[pc];
            if dirty(ctx, i.a) {
                let v = ctx.values[i.a as usize].cnot($co);
                write(ctx, i.out, v);
            }
            pc + 1
        }
    };
}
h_copy!(h_copy, false);
h_copy!(h_copy_inv, true);

macro_rules! h_gate2 {
    ($f:ident, $m:ident, $co:expr) => {
        fn $f<const W: usize>(ctx: &mut ExecCtx<'_, W>, ins: &[Instr], pc: usize) -> usize {
            let i = ins[pc];
            if dirty(ctx, i.a) || dirty(ctx, i.b) {
                let v = ctx.values[i.a as usize]
                    .$m(ctx.values[i.b as usize])
                    .cnot($co);
                write(ctx, i.out, v);
            }
            pc + 1
        }
    };
}
h_gate2!(h_and2, and, false);
h_gate2!(h_nand2, and, true);
h_gate2!(h_or2, or, false);
h_gate2!(h_nor2, or, true);
h_gate2!(h_xor2, xor, false);
h_gate2!(h_xnor2, xor, true);

macro_rules! h_gate3 {
    ($f:ident, $m:ident, $co:expr) => {
        fn $f<const W: usize>(ctx: &mut ExecCtx<'_, W>, ins: &[Instr], pc: usize) -> usize {
            let i = ins[pc];
            if dirty(ctx, i.a) || dirty(ctx, i.b) || dirty(ctx, i.c) {
                let v = ctx.values[i.a as usize]
                    .$m(ctx.values[i.b as usize])
                    .$m(ctx.values[i.c as usize])
                    .cnot($co);
                write(ctx, i.out, v);
            }
            pc + 1
        }
    };
}
h_gate3!(h_and3, and, false);
h_gate3!(h_nand3, and, true);
h_gate3!(h_or3, or, false);
h_gate3!(h_nor3, or, true);
h_gate3!(h_xor3, xor, false);
h_gate3!(h_xnor3, xor, true);

macro_rules! h_gaten {
    ($f:ident, $m:ident, $co:expr) => {
        fn $f<const W: usize>(ctx: &mut ExecCtx<'_, W>, ins: &[Instr], pc: usize) -> usize {
            let i = ins[pc];
            let (s, n) = (i.a as usize, i.b as usize);
            if !ctx.arena[s..s + n].iter().any(|&op| dirty(ctx, op)) {
                return pc + 1;
            }
            let mut v = ctx.values[ctx.arena[s] as usize];
            for k in 1..n {
                v = v.$m(ctx.values[ctx.arena[s + k] as usize]);
            }
            write(ctx, i.out, v.cnot($co));
            pc + 1
        }
    };
}
h_gaten!(h_andn, and, false);
h_gaten!(h_nandn, and, true);
h_gaten!(h_orn, or, false);
h_gaten!(h_norn, or, true);
h_gaten!(h_xorn, xor, false);
h_gaten!(h_xnorn, xor, true);

fn h_gate2c<const W: usize>(ctx: &mut ExecCtx<'_, W>, ins: &[Instr], pc: usize) -> usize {
    let i = ins[pc];
    if dirty(ctx, i.a) || dirty(ctx, i.b) {
        let v = eval_desc(i.flags, ctx.values[i.a as usize], ctx.values[i.b as usize]);
        write(ctx, i.out, v);
    }
    pc + 1
}

fn h_mux2<const W: usize>(ctx: &mut ExecCtx<'_, W>, ins: &[Instr], pc: usize) -> usize {
    let i = ins[pc];
    if dirty(ctx, i.a) || dirty(ctx, i.b) || dirty(ctx, i.c) {
        let v = ctx.values[i.c as usize].mux(ctx.values[i.a as usize], ctx.values[i.b as usize]);
        write(ctx, i.out, v);
    }
    pc + 1
}

/// Superop: two fused gates, one dispatch. Gate 1's result stays in a
/// register and feeds gate 2 directly; gate 1's output slot is written
/// first, so a gate 2 that also reads it through memory sees the
/// updated value.
fn h_fused2<const W: usize>(ctx: &mut ExecCtx<'_, W>, ins: &[Instr], pc: usize) -> usize {
    let w1 = ins[pc];
    let w2 = ins[pc + 1];
    if !(dirty(ctx, w1.a) || dirty(ctx, w1.b) || dirty(ctx, w2.a)) {
        return pc + 2;
    }
    let r = eval_desc(
        w1.flags,
        ctx.values[w1.a as usize],
        ctx.values[w1.b as usize],
    );
    write(ctx, w1.out, r);
    let r2 = eval_desc(w2.flags, r, ctx.values[w2.a as usize]);
    write(ctx, w2.out, r2);
    pc + 2
}

/// Defensive no-op: a [`FUSED_ARG`] word is always consumed by the
/// preceding [`FUSED2`] handler and never dispatched.
fn h_fused_arg<const W: usize>(_: &mut ExecCtx<'_, W>, _: &[Instr], pc: usize) -> usize {
    pc + 1
}

/// Monomorphized dispatch table for lane width `W`, indexed by opcode.
pub(crate) fn handlers<const W: usize>() -> [Handler<W>; N_OPS] {
    [
        h_const0,
        h_const1,
        h_copy,
        h_copy_inv,
        h_and2,
        h_nand2,
        h_or2,
        h_nor2,
        h_xor2,
        h_xnor2,
        h_gate2c,
        h_mux2,
        h_and3,
        h_nand3,
        h_or3,
        h_nor3,
        h_xor3,
        h_xnor3,
        h_andn,
        h_nandn,
        h_orn,
        h_norn,
        h_xorn,
        h_xnorn,
        h_fused2,
        h_fused_arg,
    ]
}

/// Run the serial instruction stream to completion through the dispatch
/// table.
#[inline]
pub(crate) fn run_stream<const W: usize>(ctx: &mut ExecCtx<'_, W>, instrs: &[Instr]) {
    let table = handlers::<W>();
    let mut pc = 0usize;
    while pc < instrs.len() {
        pc = table[instrs[pc].op as usize](ctx, instrs, pc);
    }
}

/// Evaluate one *plain-stream* instruction's value against a read-only
/// value file (the slots below the instruction's level). The plain
/// stream contains no fused superops; encountering one here returns X
/// defensively.
#[inline(always)]
pub(crate) fn eval_value<const W: usize>(i: &Instr, vals: &[Lanes<W>], arena: &[u32]) -> Lanes<W> {
    let v = |s: u32| vals[s as usize];
    let foldn = |f: fn(Lanes<W>, Lanes<W>) -> Lanes<W>| {
        let (s, n) = (i.a as usize, i.b as usize);
        let mut acc = v(arena[s]);
        for k in 1..n {
            acc = f(acc, v(arena[s + k]));
        }
        acc
    };
    match i.op {
        CONST0 => Lanes::ZERO,
        CONST1 => Lanes::ONE,
        COPY => v(i.a),
        COPY_INV => v(i.a).not(),
        AND2 => v(i.a).and(v(i.b)),
        NAND2 => v(i.a).and(v(i.b)).not(),
        OR2 => v(i.a).or(v(i.b)),
        NOR2 => v(i.a).or(v(i.b)).not(),
        XOR2 => v(i.a).xor(v(i.b)),
        XNOR2 => v(i.a).xor(v(i.b)).not(),
        GATE2C => eval_desc(i.flags, v(i.a), v(i.b)),
        MUX2 => v(i.c).mux(v(i.a), v(i.b)),
        AND3 => v(i.a).and(v(i.b)).and(v(i.c)),
        NAND3 => v(i.a).and(v(i.b)).and(v(i.c)).not(),
        OR3 => v(i.a).or(v(i.b)).or(v(i.c)),
        NOR3 => v(i.a).or(v(i.b)).or(v(i.c)).not(),
        XOR3 => v(i.a).xor(v(i.b)).xor(v(i.c)),
        XNOR3 => v(i.a).xor(v(i.b)).xor(v(i.c)).not(),
        ANDN => foldn(Lanes::and),
        NANDN => foldn(Lanes::and).not(),
        ORN => foldn(Lanes::or),
        NORN => foldn(Lanes::or).not(),
        XORN => foldn(Lanes::xor),
        XNORN => foldn(Lanes::xor).not(),
        _ => Lanes::X,
    }
}
