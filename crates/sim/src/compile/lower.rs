//! Lowering pipeline: levelized netlist → fused bytecode program.
//!
//! Four passes, each **trajectory-preserving**: every net keeps its own
//! output slot, is written exactly once per settle pass, in a
//! topological order, with the same 3-valued value the packed kernel
//! would compute — so per-pass values *and* per-net toggle counts are
//! bit-identical to the scalar/packed kernels (the certification suite
//! checks both). Only the *computation strategy* changes:
//!
//! 1. **Normalize** (AIG-style): constant-fold through the fabric
//!    (3-valued-sound: `AND(x, 0) = 0` and `AND(x, 1) = x` hold for
//!    `x = X`), collapse buf/inverter chains into complement-carrying
//!    operand reads, and fold XOR input/constant complements into the
//!    output complement. Folded gates still write their output slot
//!    every pass (as a constant/copy), so downstream reads and toggle
//!    counts are unchanged.
//! 2. **Allocate**: map nets onto a dense slot file — graph sources
//!    (primary inputs, storage Q, clock nets) first in net order, then
//!    combinational outputs level by level in topological order. Every
//!    slot is live to the end of simulation (each net carries a toggle
//!    counter and an observable final value), so allocation orders the
//!    register file by definition time instead of recycling: reads
//!    cluster in the recently written region, each level's writes are
//!    one contiguous run, and the level partition makes the parallel
//!    path's `split_at_mut` sound (a level reads only lower slots).
//! 3. **Specialize + dedupe**: pick monomorphized opcodes for the hot
//!    gate shapes, and replace structurally identical gates (structural
//!    hash over kind + canonically ordered complement-carrying
//!    operands) with register-to-register copies from the first
//!    occurrence.
//! 4. **Fuse**: pair a 2-input gate with a single downstream 2-input
//!    gate (AOI/OAI, mux legs, xor-tree steps, absorbed inverters) into
//!    one two-word superop dispatched once, with the intermediate kept
//!    in a register. The pair executes at the producer's stream
//!    position; this is sound because the consumer's other operand is
//!    required to be defined before that position and the consumer's
//!    own readers sit even later in the stream.
//!
//! Two instruction streams come out: the fused `serial` stream (default
//! hot path) and an unfused `plain` stream aligned 1:1 with the slot
//! file for the per-level parallel path (no intra-level reads — dedupe
//! copies and fusion are serial-only transforms).

use std::collections::HashMap;

use super::ops::{desc, opcode, Instr};
use crate::error::{Error, Result};
use triphase_cells::CellKind;
use triphase_netlist::{graph, Netlist};

/// Counters from the lowering passes (reported by `sim_perf`).
#[derive(Debug, Default, Clone, Copy)]
pub struct LowerStats {
    /// Combinational gates lowered.
    pub gates: usize,
    /// Words in the fused serial stream.
    pub serial_words: usize,
    /// Gates reduced to constant writes.
    pub const_folded: usize,
    /// Operand reads routed through buf/inverter chains to their root.
    pub chains_collapsed: usize,
    /// Structurally duplicate gates replaced by register copies.
    pub deduped: usize,
    /// Fused superop pairs.
    pub fused_pairs: usize,
    /// Topological levels in the fabric.
    pub levels: usize,
}

/// A lowered program: both instruction streams, the operand arena, the
/// net↔slot permutation, and the level partition.
#[derive(Debug)]
pub(crate) struct Program {
    /// Fused serial stream (threaded dispatch).
    pub serial: Vec<Instr>,
    /// Unfused stream, one instruction per gate, aligned with the
    /// comb slot range (instruction `k` writes slot
    /// `first_comb_slot + k`).
    pub plain: Vec<Instr>,
    /// Operand arena for N-ary gates (slot indices).
    pub arena: Vec<u32>,
    /// Per-level ranges into `plain`.
    pub levels: Vec<(u32, u32)>,
    /// Net index → slot (a permutation of `0..net_capacity`).
    pub slot_of_net: Vec<u32>,
    /// Slot → net index.
    pub net_of_slot: Vec<u32>,
    /// Slots below this hold graph sources; at/above, comb outputs.
    pub first_comb_slot: u32,
    /// Widest level (gates), for the parallel-path heuristic.
    pub max_level_width: u32,
    /// Pass counters.
    pub stats: LowerStats,
}

/// Commutative gate family used in descriptors and dedupe keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum G2k {
    And,
    Or,
    Xor,
}

/// Logical instruction, pre-encoding (output slot kept separately).
#[derive(Debug, Clone, Copy)]
enum LIns {
    Konst {
        one: bool,
    },
    Copy {
        a: u32,
        ca: bool,
    },
    Gate2 {
        k: G2k,
        a: u32,
        b: u32,
        ca: bool,
        cb: bool,
        co: bool,
    },
    Gate3 {
        k: G2k,
        a: u32,
        b: u32,
        c: u32,
        co: bool,
    },
    GateN {
        k: G2k,
        start: u32,
        count: u32,
        co: bool,
    },
    Mux {
        d0: u32,
        d1: u32,
        sel: u32,
    },
}

/// Structural-hash key: kind + canonically ordered operands, output
/// complement excluded (stored in the value so an AND2/NAND2 twin still
/// dedupes, via a complemented copy).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum DedupKey {
    Gate2 { k: G2k, ops: [(u32, bool); 2] },
    Gate3 { k: G2k, ops: [u32; 3] },
    GateN { k: G2k, ops: Vec<u32> },
    Mux { d0: u32, d1: u32, sel: u32 },
}

/// A resolved gate operand: compile-time constant, or a slot read with
/// an optional absorbed complement.
#[derive(Debug, Clone, Copy)]
enum Operand {
    K(bool),
    S { slot: u32, c: bool },
}

/// One combinational cell in topological order.
struct Gate {
    kind: CellKind,
    out: u32,
    ins: Vec<u32>,
}

/// Lower the combinational fabric of `nl`.
///
/// # Errors
///
/// [`Error::Netlist`] on a combinational loop.
pub(crate) fn lower(nl: &Netlist) -> Result<Program> {
    let idx = nl.index();
    let comb_order = graph::comb_topo_order(nl, &idx).map_err(Error::Netlist)?;
    let net_cap = nl.net_capacity();

    let gates: Vec<Gate> = comb_order
        .iter()
        .map(|&c| {
            let cell = nl.cell(c);
            Gate {
                kind: cell.kind,
                out: cell.output().index() as u32,
                ins: cell.inputs().iter().map(|n| n.index() as u32).collect(),
            }
        })
        .collect();

    // Levelize: a gate's level is the max over its input nets of the
    // defining gate's level + 1 (sources are level 0), so every read of
    // a level-L gate resolves at a strictly lower level.
    let mut net_level = vec![0u32; net_cap];
    let mut gate_level = vec![0u32; gates.len()];
    let mut comb_driven = vec![false; net_cap];
    for (gi, g) in gates.iter().enumerate() {
        let lvl = g.ins.iter().map(|&n| net_level[n as usize]).max();
        gate_level[gi] = lvl.unwrap_or(0);
        net_level[g.out as usize] = gate_level[gi] + 1;
        comb_driven[g.out as usize] = true;
    }

    // Slot allocation: sources first (net order), then comb outputs
    // level-major in topological order.
    let mut slot_of_net = vec![0u32; net_cap];
    let mut net_of_slot = Vec::with_capacity(net_cap);
    for net in 0..net_cap {
        if !comb_driven[net] {
            slot_of_net[net] = net_of_slot.len() as u32;
            net_of_slot.push(net as u32);
        }
    }
    let first_comb_slot = net_of_slot.len() as u32;
    let mut order: Vec<u32> = (0..gates.len() as u32).collect();
    order.sort_by_key(|&gi| (gate_level[gi as usize], gi));
    for &gi in &order {
        let out = gates[gi as usize].out;
        slot_of_net[out as usize] = net_of_slot.len() as u32;
        net_of_slot.push(out);
    }

    // Level partition over the ordered gate list.
    let mut levels: Vec<(u32, u32)> = Vec::new();
    let mut max_level_width = 0u32;
    {
        let mut start = 0usize;
        while start < order.len() {
            let lvl = gate_level[order[start] as usize];
            let mut end = start;
            while end < order.len() && gate_level[order[end] as usize] == lvl {
                end += 1;
            }
            max_level_width = max_level_width.max((end - start) as u32);
            levels.push((start as u32, end as u32));
            start = end;
        }
    }

    // Constant lattice (3-valued sound) in topological order.
    let mut konst: Vec<Option<bool>> = vec![None; net_cap];
    for g in &gates {
        let k = |n: u32| konst[n as usize];
        let v = match g.kind {
            CellKind::Const0 => Some(false),
            CellKind::Const1 => Some(true),
            CellKind::Buf | CellKind::ClkBuf => k(g.ins[0]),
            CellKind::Inv => k(g.ins[0]).map(|b| !b),
            CellKind::And(_) | CellKind::Nand(_) => fold_konst(g.ins.iter().map(|&n| k(n)), false)
                .map(|b| b ^ matches!(g.kind, CellKind::Nand(_))),
            CellKind::Or(_) | CellKind::Nor(_) => fold_konst(g.ins.iter().map(|&n| k(n)), true)
                .map(|b| b ^ matches!(g.kind, CellKind::Nor(_))),
            CellKind::Xor(_) | CellKind::Xnor(_) => {
                let mut acc = Some(matches!(g.kind, CellKind::Xnor(_)));
                for &n in &g.ins {
                    acc = match (acc, k(n)) {
                        (Some(a), Some(b)) => Some(a ^ b),
                        _ => None,
                    };
                }
                acc
            }
            CellKind::Mux2 => match k(g.ins[2]) {
                Some(false) => k(g.ins[0]),
                Some(true) => k(g.ins[1]),
                None => match (k(g.ins[0]), k(g.ins[1])) {
                    (Some(a), Some(b)) if a == b => Some(a),
                    _ => None,
                },
            },
            _ => None,
        };
        konst[g.out as usize] = v;
    }

    // Buf/inverter chain roots with complement parity.
    let mut chain: Vec<(u32, bool)> = (0..net_cap as u32).map(|n| (n, false)).collect();
    for g in &gates {
        let inv = match g.kind {
            CellKind::Buf | CellKind::ClkBuf => false,
            CellKind::Inv => true,
            _ => continue,
        };
        let (root, c) = chain[g.ins[0] as usize];
        chain[g.out as usize] = (root, c ^ inv);
    }

    let mut stats = LowerStats {
        gates: gates.len(),
        levels: levels.len(),
        ..LowerStats::default()
    };

    // Operand resolution helpers.
    let resolve = |n: u32, stats: &mut LowerStats| -> Operand {
        if let Some(kv) = konst[n as usize] {
            return Operand::K(kv);
        }
        let (root, c) = chain[n as usize];
        if root != n {
            stats.chains_collapsed += 1;
        }
        Operand::S {
            slot: slot_of_net[root as usize],
            c,
        }
    };
    // Unabsorbed fallback: read the original input net's own slot
    // (written by its driver at a strictly lower level).
    let plain_slot = |n: u32| slot_of_net[n as usize];

    // Pass 3a: per-gate instruction selection (shared by both streams).
    let mut arena: Vec<u32> = Vec::new();
    let mut lins: Vec<LIns> = Vec::with_capacity(order.len());
    for &gi in &order {
        let g = &gates[gi as usize];
        let li = select_gate(g, &mut stats, &resolve, &plain_slot, &mut arena);
        if matches!(li, LIns::Konst { .. })
            && !matches!(g.kind, CellKind::Const0 | CellKind::Const1)
        {
            stats.const_folded += 1;
        }
        lins.push(li);
    }

    let plain: Vec<Instr> = lins
        .iter()
        .enumerate()
        .map(|(k, li)| encode(li, first_comb_slot + k as u32))
        .collect();

    // Pass 3b: structural dedupe on the serial stream.
    let mut dedup: HashMap<DedupKey, (u32, bool)> = HashMap::new();
    let serial_lins: Vec<LIns> = lins
        .iter()
        .enumerate()
        .map(|(k, li)| {
            let out = first_comb_slot + k as u32;
            let (key, co) = match *li {
                LIns::Gate2 {
                    k,
                    a,
                    b,
                    ca,
                    cb,
                    co,
                } => {
                    let mut ops = [(a, ca), (b, cb)];
                    ops.sort_unstable();
                    (DedupKey::Gate2 { k, ops }, co)
                }
                LIns::Gate3 { k, a, b, c, co } => {
                    let mut ops = [a, b, c];
                    ops.sort_unstable();
                    (DedupKey::Gate3 { k, ops }, co)
                }
                LIns::GateN {
                    k,
                    start,
                    count,
                    co,
                } => {
                    let mut ops: Vec<u32> =
                        arena[start as usize..(start + count) as usize].to_vec();
                    ops.sort_unstable();
                    (DedupKey::GateN { k, ops }, co)
                }
                LIns::Mux { d0, d1, sel } => (DedupKey::Mux { d0, d1, sel }, false),
                LIns::Konst { .. } | LIns::Copy { .. } => return *li,
            };
            match dedup.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let (canon, canon_co) = *e.get();
                    stats.deduped += 1;
                    LIns::Copy {
                        a: canon,
                        ca: co ^ canon_co,
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((out, co));
                    *li
                }
            }
        })
        .collect();

    let mut serial: Vec<Instr> = serial_lins
        .iter()
        .enumerate()
        .map(|(k, li)| encode(li, first_comb_slot + k as u32))
        .collect();

    // Pass 4: greedy superop fusion on the serial stream.
    stats.fused_pairs = fuse(&mut serial, first_comb_slot);
    stats.serial_words = serial.len();

    Ok(Program {
        serial,
        plain,
        arena,
        levels,
        slot_of_net,
        net_of_slot,
        first_comb_slot,
        max_level_width,
        stats,
    })
}

/// Short-circuit fold for AND (`absorb = false`) / OR (`absorb = true`)
/// over the constant lattice: any absorbing input decides the output
/// regardless of X elsewhere; otherwise all inputs must be constant.
fn fold_konst(ins: impl Iterator<Item = Option<bool>>, absorb: bool) -> Option<bool> {
    let mut all = true;
    for i in ins {
        match i {
            Some(b) if b == absorb => return Some(absorb),
            Some(_) => {}
            None => all = false,
        }
    }
    if all {
        Some(!absorb)
    } else {
        None
    }
}

/// Select the logical instruction for one gate: resolve operands
/// (constants, chain roots), drop identity inputs, fold XOR complements
/// into the output, and fall back to plain operand reads where the
/// encoding has no complement bits (3+-input gates, mux branches).
fn select_gate(
    g: &Gate,
    stats: &mut LowerStats,
    resolve: &dyn Fn(u32, &mut LowerStats) -> Operand,
    plain_slot: &dyn Fn(u32) -> u32,
    arena: &mut Vec<u32>,
) -> LIns {
    let (k, mut co) = match g.kind {
        CellKind::Const0 => return LIns::Konst { one: false },
        CellKind::Const1 => return LIns::Konst { one: true },
        CellKind::Buf | CellKind::ClkBuf | CellKind::Inv => {
            let co = matches!(g.kind, CellKind::Inv);
            return match resolve(g.ins[0], stats) {
                Operand::K(b) => LIns::Konst { one: b ^ co },
                Operand::S { slot, c } => LIns::Copy {
                    a: slot,
                    ca: c ^ co,
                },
            };
        }
        CellKind::Mux2 => return select_mux(g, stats, resolve, plain_slot),
        CellKind::And(_) => (G2k::And, false),
        CellKind::Nand(_) => (G2k::And, true),
        CellKind::Or(_) => (G2k::Or, false),
        CellKind::Nor(_) => (G2k::Or, true),
        CellKind::Xor(_) => (G2k::Xor, false),
        CellKind::Xnor(_) => (G2k::Xor, true),
        // Not combinational: unreachable via comb_topo_order; emit a
        // benign constant rather than panicking.
        _ => return LIns::Konst { one: false },
    };

    // Resolve, dropping identity constants; an absorbing constant
    // decides the gate. XOR folds both constants and operand
    // complements into the output complement.
    let absorb = matches!(k, G2k::Or);
    let mut ops: Vec<(u32, Operand)> = Vec::with_capacity(g.ins.len());
    for &n in &g.ins {
        match (k, resolve(n, stats)) {
            (G2k::And | G2k::Or, Operand::K(b)) => {
                if b == absorb {
                    return LIns::Konst { one: absorb ^ co };
                }
            }
            (G2k::Xor, Operand::K(b)) => co ^= b,
            (G2k::Xor, Operand::S { slot, c }) => {
                co ^= c;
                ops.push((n, Operand::S { slot, c: false }));
            }
            (_, s) => ops.push((n, s)),
        }
    }
    match ops.len() {
        // All operands were identity constants: AND of none = 1,
        // OR/XOR of none = 0 (XOR's constants were folded into `co`).
        0 => LIns::Konst {
            one: matches!(k, G2k::And) ^ co,
        },
        1 => match ops[0].1 {
            Operand::S { slot, c } => LIns::Copy {
                a: slot,
                ca: c ^ co,
            },
            Operand::K(b) => LIns::Konst { one: b ^ co },
        },
        2 => {
            let (sa, ca) = slot_c(ops[0], plain_slot);
            let (sb, cb) = slot_c(ops[1], plain_slot);
            LIns::Gate2 {
                k,
                a: sa,
                b: sb,
                ca,
                cb,
                co,
            }
        }
        3 => LIns::Gate3 {
            k,
            a: unabsorbed(ops[0], plain_slot),
            b: unabsorbed(ops[1], plain_slot),
            c: unabsorbed(ops[2], plain_slot),
            co,
        },
        n => {
            let start = arena.len() as u32;
            arena.extend(ops.iter().map(|&op| unabsorbed(op, plain_slot)));
            LIns::GateN {
                k,
                start,
                count: n as u32,
                co,
            }
        }
    }
}

/// Mux selection: constant/complemented selects reduce or swap; equal
/// branches collapse to a copy; otherwise branches read plain slots.
fn select_mux(
    g: &Gate,
    stats: &mut LowerStats,
    resolve: &dyn Fn(u32, &mut LowerStats) -> Operand,
    plain_slot: &dyn Fn(u32) -> u32,
) -> LIns {
    let (mut n0, mut n1, nsel) = (g.ins[0], g.ins[1], g.ins[2]);
    let sel = match resolve(nsel, stats) {
        Operand::K(b) => {
            let branch = if b { n1 } else { n0 };
            return match resolve(branch, stats) {
                Operand::K(one) => LIns::Konst { one },
                Operand::S { slot, c } => LIns::Copy { a: slot, ca: c },
            };
        }
        Operand::S { slot, c } => {
            if c {
                std::mem::swap(&mut n0, &mut n1);
            }
            slot
        }
    };
    let (d0, d1) = (resolve(n0, stats), resolve(n1, stats));
    match (d0, d1) {
        (Operand::K(a), Operand::K(b)) if a == b => return LIns::Konst { one: a },
        (Operand::S { slot: sa, c: ca }, Operand::S { slot: sb, c: cb })
            if sa == sb && ca == cb =>
        {
            return LIns::Copy { a: sa, ca }
        }
        _ => {}
    }
    LIns::Mux {
        d0: unabsorbed((n0, d0), plain_slot),
        d1: unabsorbed((n1, d1), plain_slot),
        sel,
    }
}

/// Operand as (slot, complement) — complement kept (2-input encodings
/// have complement bits).
fn slot_c((n, op): (u32, Operand), plain_slot: &dyn Fn(u32) -> u32) -> (u32, bool) {
    match op {
        Operand::S { slot, c } => (slot, c),
        // Constants reaching here only via mux branches / mixed folds:
        // read the original net's slot (its driver writes the constant).
        Operand::K(_) => (plain_slot(n), false),
    }
}

/// Operand as a plain slot: absorbed complements fall back to reading
/// the original net (written by its inverter at a lower level).
fn unabsorbed((n, op): (u32, Operand), plain_slot: &dyn Fn(u32) -> u32) -> u32 {
    match op {
        Operand::S { slot, c: false } => slot,
        _ => plain_slot(n),
    }
}

/// Encode a logical instruction at output slot `out`.
fn encode(li: &LIns, out: u32) -> Instr {
    let i = |op: u8, flags: u8, a: u32, b: u32, c: u32| Instr {
        op,
        flags,
        a,
        b,
        c,
        out,
    };
    match *li {
        LIns::Konst { one } => i(
            if one { opcode::CONST1 } else { opcode::CONST0 },
            0,
            0,
            0,
            0,
        ),
        LIns::Copy { a, ca } => i(if ca { opcode::COPY_INV } else { opcode::COPY }, 0, a, a, 0),
        LIns::Gate2 {
            k,
            a,
            b,
            ca,
            cb,
            co,
        } => {
            if ca || cb {
                i(opcode::GATE2C, desc_flags(k, ca, cb, co), a, b, 0)
            } else {
                let op = match (k, co) {
                    (G2k::And, false) => opcode::AND2,
                    (G2k::And, true) => opcode::NAND2,
                    (G2k::Or, false) => opcode::OR2,
                    (G2k::Or, true) => opcode::NOR2,
                    (G2k::Xor, false) => opcode::XOR2,
                    (G2k::Xor, true) => opcode::XNOR2,
                };
                i(op, 0, a, b, 0)
            }
        }
        LIns::Gate3 { k, a, b, c, co } => {
            let op = match (k, co) {
                (G2k::And, false) => opcode::AND3,
                (G2k::And, true) => opcode::NAND3,
                (G2k::Or, false) => opcode::OR3,
                (G2k::Or, true) => opcode::NOR3,
                (G2k::Xor, false) => opcode::XOR3,
                (G2k::Xor, true) => opcode::XNOR3,
            };
            i(op, 0, a, b, c)
        }
        LIns::GateN {
            k,
            start,
            count,
            co,
        } => {
            let op = match (k, co) {
                (G2k::And, false) => opcode::ANDN,
                (G2k::And, true) => opcode::NANDN,
                (G2k::Or, false) => opcode::ORN,
                (G2k::Or, true) => opcode::NORN,
                (G2k::Xor, false) => opcode::XORN,
                (G2k::Xor, true) => opcode::XNORN,
            };
            i(op, 0, start, count, 0)
        }
        LIns::Mux { d0, d1, sel } => i(opcode::MUX2, 0, d0, d1, sel),
    }
}

fn desc_flags(k: G2k, ca: bool, cb: bool, co: bool) -> u8 {
    let kind = match k {
        G2k::And => desc::K_AND,
        G2k::Or => desc::K_OR,
        G2k::Xor => desc::K_XOR,
    };
    kind | if ca { desc::CA } else { 0 }
        | if cb { desc::CB } else { 0 }
        | if co { desc::CO } else { 0 }
}

/// Descriptor view of a 2-input/copy instruction, for fusion.
/// Returns `(desc_flags, a, b)`.
fn as_desc(i: &Instr) -> Option<(u8, u32, u32)> {
    let d = |k: u8, co: bool| k | if co { desc::CO } else { 0 };
    match i.op {
        opcode::COPY => Some((desc::K_COPY, i.a, i.b)),
        opcode::COPY_INV => Some((d(desc::K_COPY, true), i.a, i.b)),
        opcode::AND2 => Some((desc::K_AND, i.a, i.b)),
        opcode::NAND2 => Some((d(desc::K_AND, true), i.a, i.b)),
        opcode::OR2 => Some((desc::K_OR, i.a, i.b)),
        opcode::NOR2 => Some((d(desc::K_OR, true), i.a, i.b)),
        opcode::XOR2 => Some((desc::K_XOR, i.a, i.b)),
        opcode::XNOR2 => Some((d(desc::K_XOR, true), i.a, i.b)),
        opcode::GATE2C => Some((i.flags, i.a, i.b)),
        _ => None,
    }
}

/// Greedy fusion over the serial stream. A consumer `j` fuses onto the
/// producer `i` of one of its operands when `i` is the later-defined
/// operand, both have 2-input/copy descriptors, neither is already
/// fused, and `j`'s other operand is defined before `i` (so the pair
/// can execute at `i`'s position). Returns the number of pairs.
fn fuse(serial: &mut Vec<Instr>, first_comb_slot: u32) -> usize {
    let n_slots = first_comb_slot as usize + serial.len();
    // Execution position defining each slot (usize::MAX = source).
    let mut def_pos: Vec<usize> = vec![usize::MAX; n_slots];
    for (idx, ins) in serial.iter().enumerate() {
        def_pos[ins.out as usize] = idx;
    }
    let def = |def_pos: &[usize], s: u32| {
        let p = def_pos[s as usize];
        if p == usize::MAX {
            None
        } else {
            Some(p)
        }
    };

    let mut removed = vec![false; serial.len()];
    let mut second: Vec<Option<Instr>> = vec![None; serial.len()];
    let mut pairs = 0usize;

    for j in 0..serial.len() {
        if removed[j] || second[j].is_some() {
            continue;
        }
        let Some((d2, a2, b2)) = as_desc(&serial[j]) else {
            continue;
        };
        let is_copy = d2 & desc::KIND == desc::K_COPY;
        // Candidate producers: the operand(s) defined in this stream.
        let cand = |s: u32| def(&def_pos, s).filter(|&p| p < j);
        let (pa, pb) = (cand(a2), if is_copy { None } else { cand(b2) });
        let (prod, other, other_def, swap) = match (pa, pb) {
            (Some(x), Some(y)) if x >= y => (x, b2, Some(y), false),
            (Some(x), Some(y)) => (y, a2, Some(x), true),
            (Some(x), None) => (x, b2, def(&def_pos, b2), false),
            (None, Some(y)) => (y, a2, def(&def_pos, a2), true),
            (None, None) => continue,
        };
        if removed[prod] || second[prod].is_some() {
            continue;
        }
        let Some((d1, a1, b1)) = as_desc(&serial[prod]) else {
            continue;
        };
        // The copy kind ignores its b operand, so `other` may be
        // anything for copies; otherwise it must be live at `prod`.
        if !is_copy {
            if let Some(od) = other_def {
                if od >= prod {
                    continue;
                }
            }
        }
        // Rewrite: producer word becomes the FUSED2 head, consumer
        // becomes its FUSED_ARG tail executing at the producer's
        // position. Swapped operands exchange the CA/CB bits
        // (commutative kinds only — copies never swap their sole
        // operand into the register position unless it is the
        // producer's output, which `swap` already encodes).
        let mut tail_flags = d2 & (desc::KIND | desc::CO);
        if swap {
            tail_flags |= ((d2 & desc::CA) << 1) | ((d2 & desc::CB) >> 1);
        } else {
            tail_flags |= d2 & (desc::CA | desc::CB);
        }
        let out1 = serial[prod].out;
        let out2 = serial[j].out;
        serial[prod] = Instr {
            op: opcode::FUSED2,
            flags: d1,
            a: a1,
            b: b1,
            c: 0,
            out: out1,
        };
        second[prod] = Some(Instr {
            op: opcode::FUSED_ARG,
            flags: tail_flags,
            a: if is_copy { out1 } else { other },
            b: 0,
            c: 0,
            out: out2,
        });
        removed[j] = true;
        def_pos[out2 as usize] = prod;
        pairs += 1;
    }

    if pairs > 0 {
        let mut fused: Vec<Instr> = Vec::with_capacity(serial.len() + pairs);
        for (idx, ins) in serial.iter().enumerate() {
            if removed[idx] {
                continue;
            }
            fused.push(*ins);
            if let Some(tail) = second[idx] {
                fused.push(tail);
            }
        }
        *serial = fused;
    }
    pairs
}
