//! Multi-word lane arithmetic for the compiled backend.
//!
//! [`Lanes<W>`] generalizes the packed kernel's one-`u64`-pair two-plane
//! encoding to `W` machine words per plane, so one value carries
//! `64 * W` independent 3-valued stimulus streams. The plane formulas
//! are word-wise copies of [`PackedLogic`](crate::PackedLogic)'s —
//! every method below is the `W`-word fold of the corresponding packed
//! method, which is what makes the compiled backend's lane `l`
//! trajectory equal the packed kernel's lane `l % 64` of word `l / 64`
//! (and hence the scalar simulator's) for the same stimulus.
//!
//! All hot methods are `#[inline]` loops over fixed-size arrays: the
//! compiler unrolls and auto-vectorizes them, which is where the
//! per-stream cost drop at `W ∈ {2, 4, 8}` comes from.

/// Per-lane boolean mask over `W` words (one bit per stimulus lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mask<const W: usize>(pub [u64; W]);

impl<const W: usize> Mask<W> {
    /// All lanes clear.
    pub const NONE: Mask<W> = Mask([0; W]);

    /// Mask covering the first `lanes` lanes (lane `l` = bit `l % 64`
    /// of word `l / 64`).
    pub fn first(lanes: usize) -> Mask<W> {
        let mut m = [0u64; W];
        for (w, word) in m.iter_mut().enumerate() {
            let lo = w * 64;
            if lanes >= lo + 64 {
                *word = !0;
            } else if lanes > lo {
                *word = (1u64 << (lanes - lo)) - 1;
            }
        }
        Mask(m)
    }

    /// `true` when no lane is set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }

    /// Lane-wise AND.
    #[inline]
    #[must_use]
    pub fn and(self, o: Mask<W>) -> Mask<W> {
        let mut m = self.0;
        for (a, b) in m.iter_mut().zip(o.0) {
            *a &= b;
        }
        Mask(m)
    }

    /// Lane-wise OR.
    #[inline]
    #[must_use]
    pub fn or(self, o: Mask<W>) -> Mask<W> {
        let mut m = self.0;
        for (a, b) in m.iter_mut().zip(o.0) {
            *a |= b;
        }
        Mask(m)
    }

    /// Lane-wise NOT. An inherent method (not `std::ops::Not`) so mask
    /// chains read left-to-right without importing the trait.
    #[inline]
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Mask<W> {
        let mut m = self.0;
        for a in m.iter_mut() {
            *a = !*a;
        }
        Mask(m)
    }

    /// Number of set lanes.
    #[inline]
    pub fn count(self) -> u64 {
        self.0.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Index of the lowest set lane, or `None` when empty.
    pub fn lowest(self) -> Option<usize> {
        for (w, &word) in self.0.iter().enumerate() {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// `64 * W` lanes of 3-valued logic in two `W`-word bit-planes: a lane's
/// value is 0 for `(hi, lo) = (0, 1)`, 1 for `(1, 0)`, X for `(1, 1)`
/// (`(0, 0)` never occurs) — the packed kernel's encoding, widened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lanes<const W: usize> {
    /// Plane set for 1 and X.
    pub hi: [u64; W],
    /// Plane set for 0 and X.
    pub lo: [u64; W],
}

impl<const W: usize> Lanes<W> {
    /// All lanes 0.
    pub const ZERO: Lanes<W> = Lanes {
        hi: [0; W],
        lo: [!0; W],
    };
    /// All lanes 1.
    pub const ONE: Lanes<W> = Lanes {
        hi: [!0; W],
        lo: [0; W],
    };
    /// All lanes X.
    pub const X: Lanes<W> = Lanes {
        hi: [!0; W],
        lo: [!0; W],
    };

    /// Same value in every lane.
    pub fn splat(v: crate::Logic) -> Lanes<W> {
        match v {
            crate::Logic::Zero => Lanes::ZERO,
            crate::Logic::One => Lanes::ONE,
            crate::Logic::X => Lanes::X,
        }
    }

    /// Known (non-X) values from per-word bit vectors: lane `l` = bit
    /// `l % 64` of `bits[l / 64]`.
    pub fn from_bits(bits: [u64; W]) -> Lanes<W> {
        let mut lo = bits;
        for w in lo.iter_mut() {
            *w = !*w;
        }
        Lanes { hi: bits, lo }
    }

    /// Value in lane `l`.
    pub fn get(self, lane: usize) -> crate::Logic {
        let (w, b) = (lane / 64, lane % 64);
        match ((self.hi[w] >> b) & 1, (self.lo[w] >> b) & 1) {
            (0, _) => crate::Logic::Zero,
            (1, 0) => crate::Logic::One,
            _ => crate::Logic::X,
        }
    }

    /// Lanes holding a known value.
    #[inline]
    pub fn known(self) -> Mask<W> {
        let mut m = [0u64; W];
        for (w, mw) in m.iter_mut().enumerate() {
            *mw = self.hi[w] ^ self.lo[w];
        }
        Mask(m)
    }

    /// Lanes holding exactly 1.
    #[inline]
    pub fn is_one(self) -> Mask<W> {
        let mut m = [0u64; W];
        for (w, mw) in m.iter_mut().enumerate() {
            *mw = self.hi[w] & !self.lo[w];
        }
        Mask(m)
    }

    /// Lanes holding exactly 0.
    #[inline]
    pub fn is_zero(self) -> Mask<W> {
        let mut m = [0u64; W];
        for (w, mw) in m.iter_mut().enumerate() {
            *mw = self.lo[w] & !self.hi[w];
        }
        Mask(m)
    }

    /// Lanes holding X.
    #[inline]
    pub fn is_x(self) -> Mask<W> {
        let mut m = [0u64; W];
        for (w, mw) in m.iter_mut().enumerate() {
            *mw = self.hi[w] & self.lo[w];
        }
        Mask(m)
    }

    /// Lanes where `self` and `other` hold the same 3-valued value
    /// (X == X).
    #[inline]
    pub fn eq_lanes(self, o: Lanes<W>) -> Mask<W> {
        let mut m = [0u64; W];
        for (w, mw) in m.iter_mut().enumerate() {
            *mw = !(self.hi[w] ^ o.hi[w]) & !(self.lo[w] ^ o.lo[w]);
        }
        Mask(m)
    }

    /// Lane-wise 3-valued AND.
    #[inline]
    #[must_use]
    pub fn and(self, b: Lanes<W>) -> Lanes<W> {
        let mut r = self;
        for w in 0..W {
            r.hi[w] &= b.hi[w];
            r.lo[w] |= b.lo[w];
        }
        r
    }

    /// Lane-wise 3-valued OR.
    #[inline]
    #[must_use]
    pub fn or(self, b: Lanes<W>) -> Lanes<W> {
        let mut r = self;
        for w in 0..W {
            r.hi[w] |= b.hi[w];
            r.lo[w] &= b.lo[w];
        }
        r
    }

    /// Lane-wise 3-valued XOR.
    #[inline]
    #[must_use]
    pub fn xor(self, b: Lanes<W>) -> Lanes<W> {
        let mut r = Lanes::X;
        for w in 0..W {
            r.hi[w] = (self.hi[w] & b.lo[w]) | (self.lo[w] & b.hi[w]);
            r.lo[w] = (self.hi[w] & b.hi[w]) | (self.lo[w] & b.lo[w]);
        }
        r
    }

    /// Lane-wise 3-valued NOT: swap the planes. An inherent method (not
    /// `std::ops::Not`) so lane chains read left-to-right without
    /// importing the trait.
    #[inline]
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Lanes<W> {
        Lanes {
            hi: self.lo,
            lo: self.hi,
        }
    }

    /// Conditional NOT: [`Lanes::not`] when `c`, identity otherwise.
    /// `c` is almost always a compile-time-known flag, so the branch
    /// predicts perfectly.
    #[inline]
    #[must_use]
    pub fn cnot(self, c: bool) -> Lanes<W> {
        if c {
            self.not()
        } else {
            self
        }
    }

    /// Lane-wise 2:1 mux with `self` as select (0 → `d0`, 1 → `d1`,
    /// X → `d0` if it equals `d1`, else X) — the packed `Mux2` formula.
    #[inline]
    #[must_use]
    pub fn mux(self, d0: Lanes<W>, d1: Lanes<W>) -> Lanes<W> {
        let mut r = Lanes::X;
        for w in 0..W {
            r.hi[w] = (self.hi[w] & d1.hi[w]) | (self.lo[w] & d0.hi[w]);
            r.lo[w] = (self.hi[w] & d1.lo[w]) | (self.lo[w] & d0.lo[w]);
        }
        r
    }

    /// Per-lane select: lanes in `mask` take `a`, the rest take `b`.
    #[inline]
    #[must_use]
    pub fn merge(mask: Mask<W>, a: Lanes<W>, b: Lanes<W>) -> Lanes<W> {
        let mut r = Lanes::X;
        for w in 0..W {
            r.hi[w] = (a.hi[w] & mask.0[w]) | (b.hi[w] & !mask.0[w]);
            r.lo[w] = (a.lo[w] & mask.0[w]) | (b.lo[w] & !mask.0[w]);
        }
        r
    }

    /// Number of active lanes (within `mask`) where `self` and `new`
    /// both hold known values that differ — the packed kernel's toggle
    /// rule, summed over words.
    #[inline]
    pub fn toggles_to(self, new: Lanes<W>, mask: Mask<W>) -> u64 {
        let mut n = 0u64;
        for w in 0..W {
            let known_old = self.hi[w] ^ self.lo[w];
            let known_new = new.hi[w] ^ new.lo[w];
            let t = known_old & known_new & (self.hi[w] ^ new.hi[w]) & mask.0[w];
            n += u64::from(t.count_ones());
        }
        n
    }

    /// One-pass combination of `self != new` and [`Lanes::toggles_to`]:
    /// the hot write path needs both, and fusing them reads each plane
    /// word once instead of twice.
    #[inline]
    pub fn delta_toggles(self, new: Lanes<W>, mask: Mask<W>) -> (bool, u64) {
        let mut diff = 0u64;
        let mut n = 0u64;
        for w in 0..W {
            let dh = self.hi[w] ^ new.hi[w];
            let dl = self.lo[w] ^ new.lo[w];
            diff |= dh | dl;
            let known_old = self.hi[w] ^ self.lo[w];
            let known_new = new.hi[w] ^ new.lo[w];
            n += u64::from((known_old & known_new & dh & mask.0[w]).count_ones());
        }
        (diff != 0, n)
    }

    /// Lanes (within `mask`) where `self` holds exactly 1, as a count.
    #[inline]
    pub fn ones(self, mask: Mask<W>) -> u64 {
        self.is_one().and(mask).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Logic;

    const ALL: [Logic; 3] = [Logic::Zero, Logic::One, Logic::X];

    fn lane0<const W: usize>(v: Logic) -> Lanes<W> {
        let mut m = Mask::NONE;
        m.0[0] = 1;
        Lanes::merge(m, Lanes::splat(v), Lanes::X)
    }

    #[test]
    fn wide_plane_ops_match_scalar_tables() {
        fn check<const W: usize>() {
            for a in ALL {
                assert_eq!(lane0::<W>(a).not().get(0), a.not());
                for b in ALL {
                    assert_eq!(lane0::<W>(a).and(lane0(b)).get(0), a.and(b));
                    assert_eq!(lane0::<W>(a).or(lane0(b)).get(0), a.or(b));
                    assert_eq!(lane0::<W>(a).xor(lane0(b)).get(0), a.xor(b));
                    for s in ALL {
                        let want = crate::eval_kind(triphase_cells::CellKind::Mux2, &[a, b, s]);
                        assert_eq!(lane0::<W>(s).mux(lane0(a), lane0(b)).get(0), want);
                    }
                }
            }
        }
        check::<1>();
        check::<2>();
        check::<8>();
    }

    #[test]
    fn mask_first_covers_partial_words() {
        let m = Mask::<4>::first(130);
        assert_eq!(m.0, [!0, !0, 0b11, 0]);
        assert_eq!(m.count(), 130);
        assert_eq!(Mask::<2>::first(128).0, [!0, !0]);
        assert!(Mask::<2>::first(0).is_empty());
    }

    #[test]
    fn from_bits_round_trips_lanes_across_words() {
        let v = Lanes::<2>::from_bits([0b101, 1 << 63]);
        assert_eq!(v.get(0), Logic::One);
        assert_eq!(v.get(1), Logic::Zero);
        assert_eq!(v.get(2), Logic::One);
        assert_eq!(v.get(127), Logic::One);
        assert_eq!(v.get(126), Logic::Zero);
    }

    #[test]
    fn toggle_counting_matches_packed_rule() {
        // 0 -> 1 toggles; 0 -> X, X -> 1, X -> X do not.
        let old = Lanes::<1>::from_bits([0]);
        let new = Lanes::<1>::ONE;
        assert_eq!(old.toggles_to(new, Mask::first(64)), 64);
        assert_eq!(old.toggles_to(new, Mask::first(3)), 3);
        assert_eq!(old.toggles_to(Lanes::X, Mask::first(64)), 0);
        assert_eq!(Lanes::<1>::X.toggles_to(new, Mask::first(64)), 0);
    }

    #[test]
    fn lowest_set_lane_spans_words() {
        let mut m = Mask::<4>::NONE;
        m.0[2] = 0b100;
        assert_eq!(m.lowest(), Some(130));
        assert_eq!(Mask::<4>::NONE.lowest(), None);
    }
}
