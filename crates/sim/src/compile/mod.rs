//! Compiled simulation backend: fused bytecode VM with multi-word lanes.
//!
//! Third backend behind the `Simulator`/`PackedSim` API surface. The
//! combinational fabric is lowered once (see `lower`) into a fused,
//! specialized bytecode executed by a threaded-dispatch interpreter
//! (see `ops`), generic over lane width `W ∈ {1, 2, 4, 8}` machine
//! words — 64 to [`MAX_STREAMS`] independent stimulus streams per pass
//! via [`Lanes`]. Values live in a dense slot file ordered
//! sources-then-levels, which also makes per-level parallel batching
//! over the work-stealing pool (`triphase-par`) a safe
//! `split_at_mut`: a level only reads slots below its own range.
//!
//! Sequencing (reset, settle fixpoint, clock-event rounds, FF capture,
//! latch transparency, ICG enable latches) is an instruction-exact
//! mirror of [`PackedSim`](crate::PackedSim) — lane `l` of a compiled
//! run follows the same trajectory as packed lane `l % 64` of word
//! `l / 64`, and for one active lane the scalar simulator; values *and*
//! per-net toggle counts are bit-identical (certified three ways over
//! the benchmark suite). [`CompiledAny`] erases the width parameter and
//! picks the narrowest width covering a requested lane count.

mod lanes;
mod lower;
mod ops;

pub use lanes::{Lanes, Mask};
pub use lower::LowerStats;

use lower::Program;
use ops::{eval_value, run_stream, ExecCtx, Instr};

use crate::error::{Error, Result};
use crate::logic::Logic;
use crate::sim::{clock_network_order, Activity, MAX_SETTLE_PASSES};
use triphase_cells::CellKind;
use triphase_netlist::rng::SplitMix64;
use triphase_netlist::{CellId, NetId, Netlist, PortDir, PortId};

/// Maximum stimulus streams per pass (lane width `W = 8`).
pub const MAX_STREAMS: usize = 512;

/// Per-level parallel batching engages above this gate count per chunk.
const PAR_CHUNK: usize = 512;
/// Widest-level threshold for enabling the parallel path by default.
const PAR_LEVEL_MIN: u32 = 2048;

/// Compiled clock-network cell (slot-indexed; dependency order kept).
#[derive(Debug, Clone, Copy)]
enum CClockOp {
    Buf {
        inp: u32,
        out: u32,
    },
    Icg {
        en: u32,
        ck: u32,
        out: u32,
        cell: u32,
    },
    IcgM1 {
        en: u32,
        p3: u32,
        ck: u32,
        out: u32,
        cell: u32,
    },
    IcgM2 {
        en: u32,
        ck: u32,
        out: u32,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SKind {
    Dff,
    DffEn,
    LatchH,
    LatchL,
}

/// Compiled storage cell (slot-indexed).
#[derive(Debug, Clone, Copy)]
struct CStorage {
    kind: SKind,
    d: u32,
    ck: u32,
    q: u32,
    en: u32,
}

/// Compiled simulator over `64 * W` stimulus lanes (see module docs).
#[derive(Debug)]
pub struct CompiledSim<'a, const W: usize> {
    nl: &'a Netlist,
    prog: Program,
    clock_ops: Vec<CClockOp>,
    storage: Vec<CStorage>,
    icg_state: Vec<Lanes<W>>,
    values: Vec<Lanes<W>>,
    toggles: Vec<u64>,
    pending: Vec<(u32, Lanes<W>)>,
    per_lane_cycles: u64,
    events: Vec<f64>,
    clock_ports: Vec<(u32, usize)>,
    /// Per-phase (rise, fall) times reduced into one period.
    phase_times: Vec<(f64, f64)>,
    period: f64,
    lanes: usize,
    mask: Mask<W>,
    parallel: bool,
    // Reused per-pass scratch (the packed kernel reallocates these every
    // pass; hoisting them is part of the compiled backend's win).
    before_ck: Vec<Lanes<W>>,
    clk_snapshot: Vec<Lanes<W>>,
    updates: Vec<(u32, Lanes<W>)>,
    /// Per-slot changed-since-last-serial-pass bitset driving the
    /// event-driven gate in the serial stream (see `ops::ExecCtx`):
    /// external writes mark, one topological pass consumes and clears.
    dirty: Vec<u64>,
}

impl<'a, const W: usize> CompiledSim<'a, W> {
    /// Lower `nl` and build a compiled simulator with `lanes` active
    /// lanes (`1..=64 * W`). All state starts at X.
    ///
    /// # Errors
    ///
    /// [`Error::NoClock`] without a clock spec; [`Error::BadClock`] on
    /// an unusable one; [`Error::Netlist`] on combinational loops or a
    /// lane count outside `1..=64 * W`.
    pub fn new(nl: &'a Netlist, lanes: usize) -> Result<CompiledSim<'a, W>> {
        if lanes == 0 || lanes > 64 * W {
            return Err(Error::Netlist(triphase_netlist::Error::Invalid(format!(
                "compiled lane count {lanes} outside 1..={}",
                64 * W
            ))));
        }
        let clock = nl.clock.as_ref().ok_or(Error::NoClock)?;
        crate::sim::validate_clock(clock)?;
        let idx = nl.index();
        let prog = lower::lower(nl)?;
        let clock_order = clock_network_order(nl, &idx)?;

        let slot = |n: triphase_netlist::NetId| prog.slot_of_net[n.index()];
        let clock_ops = clock_order
            .iter()
            .map(|&c| {
                let cell = nl.cell(c);
                let out = slot(cell.output());
                let pin = |i: usize| slot(cell.pin(i));
                match cell.kind {
                    CellKind::Icg => CClockOp::Icg {
                        en: pin(0),
                        ck: pin(1),
                        out,
                        cell: c.index() as u32,
                    },
                    CellKind::IcgM1 => CClockOp::IcgM1 {
                        en: pin(0),
                        p3: pin(1),
                        ck: pin(2),
                        out,
                        cell: c.index() as u32,
                    },
                    CellKind::IcgM2 => CClockOp::IcgM2 {
                        en: pin(0),
                        ck: pin(1),
                        out,
                    },
                    // Remaining clock-network kind: ClkBuf/Buf.
                    _ => CClockOp::Buf { inp: pin(0), out },
                }
            })
            .collect();

        let storage: Vec<CStorage> = nl
            .cells()
            .filter(|(_, c)| c.kind.is_storage())
            .map(|(_, cell)| {
                let pin = |i: usize| slot(cell.pin(i));
                let (kind, d, ck, en) = match cell.kind {
                    CellKind::DffEn => (SKind::DffEn, pin(0), pin(2), pin(1)),
                    CellKind::LatchH => (SKind::LatchH, pin(0), pin(1), 0),
                    CellKind::LatchL => (SKind::LatchL, pin(0), pin(1), 0),
                    // Remaining storage kind: Dff.
                    _ => (SKind::Dff, pin(0), pin(1), 0),
                };
                CStorage {
                    kind,
                    d,
                    ck,
                    q: slot(cell.output()),
                    en,
                }
            })
            .collect();

        // Distinct edge times within the cycle, ascending (as scalar).
        let mut times: Vec<f64> = Vec::new();
        for p in &clock.phases {
            for t in [
                p.rise_ps.rem_euclid(clock.period_ps),
                p.fall_ps.rem_euclid(clock.period_ps),
            ] {
                if !times.iter().any(|&x| (x - t).abs() < 1e-9) {
                    times.push(t);
                }
            }
        }
        times.sort_by(f64::total_cmp);

        let clock_ports = clock
            .phases
            .iter()
            .enumerate()
            .map(|(i, p)| (slot(nl.port(p.port).net), i))
            .collect();
        let phase_times = clock
            .phases
            .iter()
            .map(|p| {
                (
                    p.rise_ps.rem_euclid(clock.period_ps),
                    p.fall_ps.rem_euclid(clock.period_ps),
                )
            })
            .collect();

        let n_slots = prog.net_of_slot.len();
        let n_storage = storage.len();
        let parallel = prog.max_level_width >= PAR_LEVEL_MIN
            && triphase_par::ThreadPool::global().threads() > 1;
        Ok(CompiledSim {
            nl,
            prog,
            clock_ops,
            storage,
            icg_state: vec![Lanes::X; nl.cell_capacity()],
            values: vec![Lanes::X; n_slots],
            toggles: vec![0; n_slots],
            pending: Vec::new(),
            per_lane_cycles: 0,
            events: times,
            clock_ports,
            phase_times,
            period: clock.period_ps,
            lanes,
            mask: Mask::first(lanes),
            parallel,
            before_ck: vec![Lanes::X; n_storage],
            clk_snapshot: vec![Lanes::X; n_storage],
            updates: Vec::new(),
            dirty: vec![u64::MAX; n_slots.div_ceil(64)],
        })
    }

    /// Active lane count.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cycles stepped per lane since the last reset.
    pub fn per_lane_cycles(&self) -> u64 {
        self.per_lane_cycles
    }

    /// Lowering-pass counters for this design.
    pub fn lower_stats(&self) -> LowerStats {
        self.prog.stats
    }

    /// Force the per-level parallel path on or off (both paths are
    /// bit-identical; the default is a size heuristic).
    pub fn set_parallel(&mut self, on: bool) {
        self.parallel = on;
        // The parallel path evaluates every level unconditionally and
        // does not maintain the dirty set; re-mark everything so a
        // later serial pass starts from a sound over-approximation.
        self.dirty.fill(u64::MAX);
    }

    /// Reset every lane to the all-zero state with clocks at
    /// end-of-cycle levels and ICG enable latches loaded from the
    /// settled reset state — the exact twin of the packed/scalar
    /// `reset_zero`.
    pub fn reset_zero(&mut self) {
        self.values.fill(Lanes::ZERO);
        self.icg_state.fill(Lanes::ZERO);
        self.toggles.fill(0);
        self.dirty.fill(u64::MAX);
        self.per_lane_cycles = 0;
        self.pending.clear();
        let period = self.period;
        for i in 0..self.clock_ports.len() {
            let (slot, phase) = self.clock_ports[i];
            // Direct write (no toggle count), matching scalar reset.
            self.values[slot as usize] = Lanes::splat(self.clock_level(phase, period - 1e-6));
        }
        self.eval_clock_network();
        self.settle_data();
        for i in 0..self.clock_ops.len() {
            match self.clock_ops[i] {
                CClockOp::Icg { en, cell, .. } | CClockOp::IcgM1 { en, cell, .. } => {
                    self.icg_state[cell as usize] = self.values[en as usize];
                }
                CClockOp::Buf { .. } | CClockOp::IcgM2 { .. } => {}
            }
        }
        self.eval_clock_network();
        self.settle_data();
    }

    /// Queue a packed input value; applied at the start of the next
    /// cycle.
    ///
    /// # Panics
    ///
    /// Panics if `port` is not an input port.
    pub fn set_input(&mut self, port: PortId, value: Lanes<W>) {
        let p = self.nl.port(port);
        assert_eq!(p.dir, PortDir::Input, "set_input on non-input");
        self.pending
            .push((self.prog.slot_of_net[p.net.index()], value));
    }

    /// Current packed value seen by an output port.
    pub fn output(&self, port: PortId) -> Lanes<W> {
        self.net_value(self.nl.port(port).net)
    }

    /// Current packed value of a net.
    pub fn net_value(&self, net: NetId) -> Lanes<W> {
        self.values[self.prog.slot_of_net[net.index()] as usize]
    }

    /// Current enable-latch state of a clock-gate cell.
    pub fn icg_state(&self, cell: CellId) -> Lanes<W> {
        self.icg_state[cell.index()]
    }

    /// Switching activity accumulated so far: toggles summed over
    /// active lanes, `cycles = per-lane cycles × lanes` (the packed
    /// kernel's convention — identical per lane).
    pub fn activity(&self) -> Activity {
        let mut net_toggles = vec![0u64; self.nl.net_capacity()];
        for (s, &t) in self.toggles.iter().enumerate() {
            net_toggles[self.prog.net_of_slot[s] as usize] = t;
        }
        Activity {
            cycles: self.per_lane_cycles * self.lanes as u64,
            net_toggles,
        }
    }

    /// Advance one full clock cycle for every lane (pending inputs land
    /// just after the first clock event, as scalar/packed).
    pub fn step_cycle(&mut self) {
        self.settle_data();
        for i in 0..self.events.len() {
            let t = self.events[i];
            self.process_clock_event(t);
            if i == 0 {
                let pending = std::mem::take(&mut self.pending);
                for (slot, v) in pending {
                    self.set_slot(slot, v);
                }
                self.settle_data();
            }
        }
        self.per_lane_cycles += 1;
    }

    fn clock_level(&self, phase: usize, t: f64) -> Logic {
        let (r, f) = self.phase_times[phase];
        let high = if r < f {
            t >= r - 1e-9 && t < f - 1e-9
        } else {
            t >= r - 1e-9 || t < f - 1e-9
        };
        Logic::from_bool(high)
    }

    #[inline]
    fn set_slot(&mut self, slot: u32, val: Lanes<W>) {
        let old = self.values[slot as usize];
        let (diff, t) = old.delta_toggles(val, self.mask);
        if diff {
            self.toggles[slot as usize] += t;
            self.values[slot as usize] = val;
            self.dirty[(slot >> 6) as usize] |= 1u64 << (slot & 63);
        }
    }

    fn process_clock_event(&mut self, t: f64) {
        // Up to a few rounds in case a gated clock rises as a result of
        // data settling, exactly as the packed event loop.
        for _ in 0..4 {
            for i in 0..self.storage.len() {
                self.before_ck[i] = self.values[self.storage[i].ck as usize];
            }
            for i in 0..self.clock_ports.len() {
                let (slot, phase) = self.clock_ports[i];
                let v = Lanes::splat(self.clock_level(phase, t));
                self.set_slot(slot, v);
            }
            self.eval_clock_network();

            // Capture: FF lanes whose clock rose latch pre-edge data.
            // Updates are batched (reads see pre-update values).
            let mut updates = std::mem::take(&mut self.updates);
            updates.clear();
            for (si, s) in self.storage.iter().enumerate() {
                if !matches!(s.kind, SKind::Dff | SKind::DffEn) {
                    continue;
                }
                let ck = self.values[s.ck as usize];
                let rose = self.before_ck[si].is_one().not().and(ck.is_one());
                if rose.is_empty() {
                    continue;
                }
                let d = self.values[s.d as usize];
                let q = self.values[s.q as usize];
                let next = match s.kind {
                    SKind::DffEn => {
                        let en = self.values[s.en as usize];
                        // EN=1 → d; EN=0 → q; EN=X → d if d == q else X.
                        let take_d = en.is_one().or(en.is_x().and(d.eq_lanes(q)));
                        let go_x = en.is_x().and(d.eq_lanes(q).not());
                        Lanes::merge(take_d, d, Lanes::merge(go_x, Lanes::X, q))
                    }
                    _ => d,
                };
                updates.push((s.q, Lanes::merge(rose, next, q)));
            }
            for &(slot, v) in &updates {
                self.set_slot(slot, v);
            }
            self.updates = updates;
            if !self.settle_data() {
                break;
            }
        }
    }

    fn eval_clock_network(&mut self) {
        for i in 0..self.clock_ops.len() {
            match self.clock_ops[i] {
                CClockOp::Buf { inp, out } => {
                    let v = self.values[inp as usize];
                    self.set_slot(out, v);
                }
                CClockOp::Icg { en, ck, out, cell } => {
                    let en = self.values[en as usize];
                    let ck = self.values[ck as usize];
                    // Enable latch transparent in lanes where CK != 1.
                    let state = Lanes::merge(ck.is_one().not(), en, self.icg_state[cell as usize]);
                    self.icg_state[cell as usize] = state;
                    self.set_slot(out, ck.and(state));
                }
                CClockOp::IcgM1 {
                    en,
                    p3,
                    ck,
                    out,
                    cell,
                } => {
                    let en = self.values[en as usize];
                    let p3 = self.values[p3 as usize];
                    let ck = self.values[ck as usize];
                    let state = Lanes::merge(p3.is_one(), en, self.icg_state[cell as usize]);
                    self.icg_state[cell as usize] = state;
                    self.set_slot(out, ck.and(state));
                }
                CClockOp::IcgM2 { en, ck, out } => {
                    let v = self.values[ck as usize].and(self.values[en as usize]);
                    self.set_slot(out, v);
                }
            }
        }
    }

    /// One combinational pass: fused serial stream through the dispatch
    /// table, or the plain stream batched per level over the pool. Both
    /// produce bit-identical values and toggles.
    fn run_comb(&mut self, changed: &mut bool) {
        if !self.parallel {
            let mut ctx = ExecCtx {
                values: &mut self.values,
                toggles: &mut self.toggles,
                arena: &self.prog.arena,
                mask: self.mask,
                changed: false,
                dirty: &mut self.dirty,
            };
            run_stream(&mut ctx, &self.prog.serial);
            *changed |= ctx.changed;
            // The stream is topologically ordered, so one full pass
            // consumes every dirty mark (all readers of every marked
            // slot have run); later external writes re-mark.
            self.dirty.fill(0);
            return;
        }
        let prog = &self.prog;
        let mask = self.mask;
        let fcs = prog.first_comb_slot as usize;
        for &(ls, le) in &prog.levels {
            let (ls, le) = (ls as usize, le as usize);
            let n = le - ls;
            let slot_start = fcs + ls;
            let ins = &prog.plain[ls..le];
            let (prefix, rest) = self.values.split_at_mut(slot_start);
            let outs = &mut rest[..n];
            let (_, trest) = self.toggles.split_at_mut(slot_start);
            let touts = &mut trest[..n];
            let prefix: &[Lanes<W>] = prefix;
            let arena: &[u32] = &prog.arena;
            let eval_chunk = |ic: &[Instr], oc: &mut [Lanes<W>], tc: &mut [u64]| -> bool {
                let mut ch = false;
                for k in 0..ic.len() {
                    let v = eval_value(&ic[k], prefix, arena);
                    let old = oc[k];
                    if old != v {
                        tc[k] += old.toggles_to(v, mask);
                        oc[k] = v;
                        ch = true;
                    }
                }
                ch
            };
            if n <= PAR_CHUNK {
                *changed |= eval_chunk(ins, outs, touts);
            } else {
                let mut flags = vec![false; n.div_ceil(PAR_CHUNK)];
                triphase_par::scope(|sc| {
                    let chunks = ins
                        .chunks(PAR_CHUNK)
                        .zip(outs.chunks_mut(PAR_CHUNK))
                        .zip(touts.chunks_mut(PAR_CHUNK))
                        .zip(flags.iter_mut());
                    for (((ic, oc), tc), fl) in chunks {
                        let eval_chunk = &eval_chunk;
                        sc.spawn(move || {
                            *fl = eval_chunk(ic, oc, tc);
                        });
                    }
                });
                *changed |= flags.iter().any(|&f| f);
            }
        }
    }

    /// Settle combinational logic, transparent latches, and clock-gate
    /// outputs to a fixpoint over all lanes. Returns `true` if any
    /// storage clock net changed in any lane (mid-step gated-clock
    /// event). Same structure as the packed kernel's `settle_data`.
    fn settle_data(&mut self) -> bool {
        let mut clock_changed = false;
        for _pass in 0..MAX_SETTLE_PASSES {
            let mut changed = false;
            self.run_comb(&mut changed);

            for i in 0..self.storage.len() {
                self.clk_snapshot[i] = self.values[self.storage[i].ck as usize];
            }
            self.eval_clock_network();
            for (si, s) in self.storage.iter().enumerate() {
                if self.clk_snapshot[si] != self.values[s.ck as usize] {
                    clock_changed = true;
                    changed = true;
                }
            }

            for i in 0..self.storage.len() {
                let s = self.storage[i];
                let transparent_of = match s.kind {
                    SKind::LatchH => true,
                    SKind::LatchL => false,
                    SKind::Dff | SKind::DffEn => continue,
                };
                let g = self.values[s.ck as usize];
                let transparent = if transparent_of {
                    g.is_one()
                } else {
                    g.is_zero()
                };
                let d = self.values[s.d as usize];
                let q = self.values[s.q as usize];
                // transparent → d; X gate with d != q → X; else hold q.
                let go_x = g.is_x().and(d.eq_lanes(q).not());
                let next = Lanes::merge(transparent, d, Lanes::merge(go_x, Lanes::X, q));
                if next != q {
                    changed = true;
                    self.set_slot(s.q, next);
                }
            }
            if !changed {
                return clock_changed;
            }
        }
        clock_changed
    }
}

/// Width-erased compiled simulator: picks the narrowest lane width `W ∈
/// {1, 2, 4, 8}` covering the requested lane count (1..=64 → x1, …,
/// 257..=[`MAX_STREAMS`] → x8).
#[derive(Debug)]
pub enum CompiledAny<'a> {
    /// 64 lanes per pass.
    W1(CompiledSim<'a, 1>),
    /// 128 lanes per pass.
    W2(CompiledSim<'a, 2>),
    /// 256 lanes per pass.
    W4(CompiledSim<'a, 4>),
    /// 512 lanes per pass.
    W8(CompiledSim<'a, 8>),
}

macro_rules! on_any {
    ($self:expr, $s:ident => $e:expr) => {
        match $self {
            CompiledAny::W1($s) => $e,
            CompiledAny::W2($s) => $e,
            CompiledAny::W4($s) => $e,
            CompiledAny::W8($s) => $e,
        }
    };
}

impl<'a> CompiledAny<'a> {
    /// Build a compiled simulator for `lanes` stimulus streams
    /// (`1..=`[`MAX_STREAMS`]).
    ///
    /// # Errors
    ///
    /// As [`CompiledSim::new`]; lane counts outside the range are
    /// rejected.
    pub fn new(nl: &'a Netlist, lanes: usize) -> Result<CompiledAny<'a>> {
        match lanes {
            1..=64 => Ok(CompiledAny::W1(CompiledSim::new(nl, lanes)?)),
            65..=128 => Ok(CompiledAny::W2(CompiledSim::new(nl, lanes)?)),
            129..=256 => Ok(CompiledAny::W4(CompiledSim::new(nl, lanes)?)),
            257..=MAX_STREAMS => Ok(CompiledAny::W8(CompiledSim::new(nl, lanes)?)),
            _ => Err(Error::Netlist(triphase_netlist::Error::Invalid(format!(
                "compiled lane count {lanes} outside 1..={MAX_STREAMS}"
            )))),
        }
    }

    /// Lane width in 64-bit words (1, 2, 4, or 8).
    pub fn width(&self) -> usize {
        match self {
            CompiledAny::W1(_) => 1,
            CompiledAny::W2(_) => 2,
            CompiledAny::W4(_) => 4,
            CompiledAny::W8(_) => 8,
        }
    }

    /// Active lane count.
    pub fn lanes(&self) -> usize {
        on_any!(self, s => s.lanes())
    }

    /// Cycles stepped per lane since the last reset.
    pub fn per_lane_cycles(&self) -> u64 {
        on_any!(self, s => s.per_lane_cycles())
    }

    /// Lowering-pass counters for this design.
    pub fn lower_stats(&self) -> LowerStats {
        on_any!(self, s => s.lower_stats())
    }

    /// Force the per-level parallel path on or off.
    pub fn set_parallel(&mut self, on: bool) {
        on_any!(self, s => s.set_parallel(on));
    }

    /// Reset every lane to the all-zero state (see
    /// [`CompiledSim::reset_zero`]).
    pub fn reset_zero(&mut self) {
        on_any!(self, s => s.reset_zero());
    }

    /// Advance one full clock cycle for every lane.
    pub fn step_cycle(&mut self) {
        on_any!(self, s => s.step_cycle());
    }

    /// Queue known input bits per lane: lane `l` takes bit `l % 64` of
    /// `bits[l / 64]` (missing words read as 0).
    ///
    /// # Panics
    ///
    /// Panics if `port` is not an input port.
    pub fn set_input_bits(&mut self, port: PortId, bits: &[u64]) {
        fn gather<const W: usize>(bits: &[u64]) -> Lanes<W> {
            let mut words = [0u64; W];
            for (i, w) in words.iter_mut().enumerate() {
                *w = bits.get(i).copied().unwrap_or(0);
            }
            Lanes::from_bits(words)
        }
        on_any!(self, s => s.set_input(port, gather(bits)));
    }

    /// Queue the same value on every lane of an input port.
    ///
    /// # Panics
    ///
    /// Panics if `port` is not an input port.
    pub fn set_input_splat(&mut self, port: PortId, v: Logic) {
        on_any!(self, s => s.set_input(port, Lanes::splat(v)));
    }

    /// Value seen by an output port in one lane.
    pub fn output_lane(&self, port: PortId, lane: usize) -> Logic {
        on_any!(self, s => s.output(port).get(lane))
    }

    /// Value of a net in one lane.
    pub fn net_value_lane(&self, net: NetId, lane: usize) -> Logic {
        on_any!(self, s => s.net_value(net).get(lane))
    }

    /// Enable-latch state of a clock-gate cell in one lane.
    pub fn icg_state_lane(&self, cell: CellId, lane: usize) -> Logic {
        on_any!(self, s => s.icg_state(cell).get(lane))
    }

    /// Number of active lanes where a net currently holds exactly 1.
    pub fn net_ones(&self, net: NetId) -> u64 {
        on_any!(self, s => { let m = s.mask; s.net_value(net).ones(m) })
    }

    /// Switching activity accumulated so far (packed convention).
    pub fn activity(&self) -> Activity {
        on_any!(self, s => s.activity())
    }
}

/// Compiled twin of [`run_random_packed`](crate::run_random_packed):
/// drive `lanes` independent pseudo-random streams for `cycles` cycles
/// each. Lane `l`'s stimulus equals a scalar `run_random` with seed
/// `lane_seeds(seed, lanes)[l]` (same per-port draw order), so results
/// are bit-exact with the scalar and packed kernels lane for lane.
///
/// # Errors
///
/// Simulator construction errors.
pub fn run_random_compiled(
    nl: &Netlist,
    seed: u64,
    cycles: u64,
    lanes: usize,
) -> Result<CompiledAny<'_>> {
    let inputs = crate::equiv::data_inputs(nl);
    let mut sim = CompiledAny::new(nl, lanes)?;
    sim.reset_zero();
    let mut streams: Vec<SplitMix64> = crate::packed::lane_seeds(seed, lanes)
        .into_iter()
        .map(SplitMix64::new)
        .collect();
    for _ in 0..cycles {
        for &p in &inputs {
            let mut bits = [0u64; 8];
            for (l, s) in streams.iter_mut().enumerate() {
                bits[l / 64] |= u64::from(s.next_bit()) << (l % 64);
            }
            sim.set_input_bits(p, &bits);
        }
        sim.step_cycle();
    }
    Ok(sim)
}

/// Gather switching activity with the compiled backend: splits `cycles`
/// total simulated cycles across up to [`MAX_STREAMS`] lanes (per-lane
/// count rounded up). The default drive for flow activity collection.
///
/// # Errors
///
/// Simulator construction errors.
pub fn collect_activity_compiled(nl: &Netlist, seed: u64, cycles: u64) -> Result<Activity> {
    let lanes = cycles.clamp(1, MAX_STREAMS as u64) as usize;
    let per_lane = cycles.div_ceil(lanes as u64);
    Ok(run_random_compiled(nl, seed, per_lane, lanes)?.activity())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_random_packed, PackedSim, Simulator};
    use triphase_cells::CellKind;
    use triphase_netlist::{Builder, ClockSpec, Word};

    /// 3-bit counter (same as the packed kernel tests).
    fn counter() -> Netlist {
        let mut nl = Netlist::new("cnt");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let q0 = b.net("q0");
        let q1 = b.net("q1");
        let q2 = b.net("q2");
        let one = b.const1();
        let q = Word(vec![q0, q1, q2]);
        let one_w = Word(vec![one, b.const0(), b.const0()]);
        let (next, _) = b.add(&q, &one_w, None);
        for (i, (&qn, d)) in [q0, q1, q2].iter().zip(next.bits()).enumerate() {
            let name = format!("ff{i}");
            b.netlist().add_cell(name, CellKind::Dff, vec![*d, ck, qn]);
        }
        b.word_output("q", &q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        nl
    }

    #[test]
    fn compiled_counter_counts_in_distant_lanes() {
        let nl = counter();
        let mut sim = CompiledAny::new(&nl, 512).unwrap();
        sim.reset_zero();
        for expect in 1..=9u32 {
            sim.step_cycle();
            for lane in [0usize, 63, 64, 200, 511] {
                let got: u32 = (0..3)
                    .map(|i| {
                        let p = nl.find_port(&format!("q_{i}")).unwrap();
                        match sim.output_lane(p, lane) {
                            Logic::One => 1 << i,
                            _ => 0,
                        }
                    })
                    .sum();
                assert_eq!(got, expect % 8, "cycle {expect} lane {lane}");
            }
        }
    }

    #[test]
    fn single_lane_activity_identical_to_scalar() {
        let nl = counter();
        let scalar = {
            let mut sim = Simulator::new(&nl).unwrap();
            sim.reset_zero();
            for _ in 0..8 {
                sim.step_cycle();
            }
            sim.activity().clone()
        };
        let compiled = {
            let mut sim = CompiledAny::new(&nl, 1).unwrap();
            sim.reset_zero();
            for _ in 0..8 {
                sim.step_cycle();
            }
            sim.activity()
        };
        assert_eq!(compiled.cycles, scalar.cycles);
        assert_eq!(compiled.net_toggles, scalar.net_toggles);
    }

    #[test]
    fn matches_packed_values_and_toggles_at_64_lanes() {
        let nl = counter();
        let seed = 42;
        let packed = run_random_packed(&nl, seed, 20, 64).unwrap();
        let compiled = run_random_compiled(&nl, seed, 20, 64).unwrap();
        let pa = packed.activity();
        let ca = compiled.activity();
        assert_eq!(ca.cycles, pa.cycles);
        assert_eq!(ca.net_toggles, pa.net_toggles);
        for (net, _) in nl.nets() {
            for lane in [0usize, 17, 63] {
                assert_eq!(
                    compiled.net_value_lane(net, lane),
                    packed.net_value(net).get(lane),
                    "net {net:?} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn wide_lanes_match_per_seed_scalar_runs() {
        let nl = counter();
        let seed = 7;
        let cycles = 12;
        let lanes = 130; // forces W = 4
        let compiled = run_random_compiled(&nl, seed, cycles, lanes).unwrap();
        assert_eq!(compiled.width(), 4);
        let q1 = nl.find_port("q_1").unwrap();
        for (l, &ls) in crate::packed::lane_seeds(seed, lanes)
            .iter()
            .enumerate()
            .filter(|(l, _)| [0, 64, 129].contains(l))
        {
            let scalar = crate::equiv::run_random(&nl, ls, cycles).unwrap();
            assert_eq!(compiled.output_lane(q1, l), scalar.output(q1), "lane {l}");
        }
    }

    #[test]
    fn parallel_path_is_bit_identical() {
        let nl = counter();
        let run = |parallel: bool| {
            let mut sim = CompiledAny::new(&nl, 96).unwrap();
            sim.set_parallel(parallel);
            sim.reset_zero();
            let inputs = crate::equiv::data_inputs(&nl);
            let mut streams: Vec<SplitMix64> = crate::packed::lane_seeds(11, 96)
                .into_iter()
                .map(SplitMix64::new)
                .collect();
            for _ in 0..16 {
                for &p in &inputs {
                    let mut bits = [0u64; 8];
                    for (l, s) in streams.iter_mut().enumerate() {
                        bits[l / 64] |= u64::from(s.next_bit()) << (l % 64);
                    }
                    sim.set_input_bits(p, &bits);
                }
                sim.step_cycle();
            }
            sim.activity()
        };
        let serial = run(false);
        let parallel = run(true);
        assert_eq!(serial.cycles, parallel.cycles);
        assert_eq!(serial.net_toggles, parallel.net_toggles);
    }

    #[test]
    fn activity_cycles_scale_with_lanes() {
        let nl = counter();
        let act = collect_activity_compiled(&nl, 7, 5120).unwrap();
        assert_eq!(act.cycles, 5120);
        let ck = nl.find_port("ck").unwrap();
        let ck_net = nl.port(ck).net;
        assert_eq!(act.net_toggles[ck_net.index()], 2 * 5120);
    }

    #[test]
    fn lane_count_validated() {
        let nl = counter();
        assert!(CompiledAny::new(&nl, 0).is_err());
        assert!(CompiledAny::new(&nl, 513).is_err());
        assert!(CompiledAny::new(&nl, 512).is_ok());
        assert!(CompiledSim::<2>::new(&nl, 129).is_err());
    }

    #[test]
    fn lowering_folds_and_dedupes() {
        // Two identical AND gates plus a buf/inv chain and a constant
        // AND — exercises dedupe, chain collapse, and const folding.
        let mut nl = Netlist::new("t");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, a) = b.netlist().add_input("a");
        let (_, c) = b.netlist().add_input("c");
        let x1 = b.gate(CellKind::And(2), &[a, c]);
        let x2 = b.gate(CellKind::And(2), &[a, c]);
        let inv = b.not(a);
        let buf = b.buf(inv);
        let z = b.const0();
        let dead = b.gate(CellKind::And(2), &[a, z]);
        let y = b.gate(CellKind::Or(2), &[x1, x2]);
        let w = b.gate(CellKind::Or(2), &[buf, dead]);
        let q = b.dff(y, ck);
        let q2 = b.dff(w, ck);
        b.netlist().add_output("q", q);
        b.netlist().add_output("q2", q2);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));

        let sim = CompiledAny::new(&nl, 8).unwrap();
        let st = sim.lower_stats();
        assert!(st.deduped >= 1, "duplicate AND should dedupe: {st:?}");
        assert!(st.const_folded >= 1, "AND(a, 0) should fold: {st:?}");
        assert!(
            st.chains_collapsed >= 1,
            "buf chain should collapse: {st:?}"
        );

        // And the optimized program still matches packed bit-for-bit.
        let packed = run_random_packed(&nl, 3, 24, 8).unwrap();
        let compiled = run_random_compiled(&nl, 3, 24, 8).unwrap();
        assert_eq!(
            compiled.activity().net_toggles,
            packed.activity().net_toggles
        );
        let _ = PackedSim::new(&nl, 8).unwrap();
    }
}
