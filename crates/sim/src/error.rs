//! Error type of the simulation crate.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The netlist has no clock specification.
    NoClock,
    /// The clock specification is unusable (non-finite or non-positive
    /// period, non-finite edge times).
    BadClock(String),
    /// Underlying netlist problem (combinational loop etc.).
    Netlist(triphase_netlist::Error),
    /// Equivalence streaming: the two designs' data ports differ.
    PortMismatch(String),
    /// Toggle rates requested from an [`Activity`](crate::Activity) with
    /// zero simulated cycles (the rate would be 0/0).
    NoCycles,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoClock => write!(f, "netlist has no clock specification"),
            Error::BadClock(msg) => write!(f, "bad clock specification: {msg}"),
            Error::Netlist(e) => write!(f, "netlist error: {e}"),
            Error::PortMismatch(msg) => write!(f, "port mismatch: {msg}"),
            Error::NoCycles => write!(f, "activity has zero simulated cycles"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<triphase_netlist::Error> for Error {
    fn from(e: triphase_netlist::Error) -> Self {
        Error::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(Error::NoClock.to_string().contains("clock"));
        assert!(Error::PortMismatch("x".into()).to_string().contains("x"));
    }
}
