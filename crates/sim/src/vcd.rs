//! Value-change-dump (VCD) export of simulation runs.
//!
//! Standard four-state VCD, one sample per call (typically per clock
//! event or per cycle). Viewable in GTKWave and friends.
//!
//! # Examples
//!
//! ```
//! use triphase_netlist::{Netlist, Builder, ClockSpec};
//! use triphase_sim::{Simulator, VcdWriter, Logic};
//!
//! let mut nl = Netlist::new("d");
//! let mut b = Builder::new(&mut nl, "u");
//! let (ckp, ck) = b.netlist().add_input("ck");
//! let (_, d) = b.netlist().add_input("d");
//! let q = b.dff(d, ck);
//! b.netlist().add_output("q", q);
//! nl.clock = Some(ClockSpec::single(ckp, 1000.0));
//! let dp = nl.find_port("d").unwrap();
//!
//! let mut sim = Simulator::new(&nl)?;
//! sim.reset_zero();
//! let mut vcd = VcdWriter::new(Vec::new(), &nl).unwrap();
//! for cycle in 0..4 {
//!     sim.set_input(dp, Logic::from_bool(cycle % 2 == 0));
//!     sim.step_cycle();
//!     vcd.sample(&sim, cycle * 1000).unwrap();
//! }
//! let text = String::from_utf8(vcd.into_inner()).unwrap();
//! assert!(text.contains("$enddefinitions"));
//! # Ok::<(), triphase_sim::Error>(())
//! ```

use crate::logic::Logic;
use crate::sim::Simulator;
use std::io::{self, Write};
use triphase_netlist::{NetId, Netlist};

/// Streams net value changes in VCD format.
#[derive(Debug)]
pub struct VcdWriter<W: Write> {
    out: W,
    nets: Vec<(NetId, String)>,
    last: Vec<Option<Logic>>,
    header_done: bool,
}

/// Short printable identifier for variable `i` (VCD id characters).
fn ident(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            return s;
        }
    }
}

fn logic_char(v: Logic) -> char {
    match v {
        Logic::Zero => '0',
        Logic::One => '1',
        Logic::X => 'x',
    }
}

impl<W: Write> VcdWriter<W> {
    /// Create a writer tracking **all** nets of `nl` and emit the header.
    ///
    /// # Errors
    ///
    /// I/O errors from the sink.
    pub fn new(out: W, nl: &Netlist) -> io::Result<VcdWriter<W>> {
        let nets = nl.nets().map(|(id, n)| (id, n.name.clone())).collect();
        Self::with_nets(out, nl, nets)
    }

    /// Create a writer tracking a chosen subset of nets.
    ///
    /// # Errors
    ///
    /// I/O errors from the sink.
    pub fn with_nets(
        mut out: W,
        nl: &Netlist,
        nets: Vec<(NetId, String)>,
    ) -> io::Result<VcdWriter<W>> {
        writeln!(out, "$version triphase-sim $end")?;
        writeln!(out, "$timescale 1ps $end")?;
        writeln!(out, "$scope module {} $end", sanitize(&nl.name))?;
        for (i, (_, name)) in nets.iter().enumerate() {
            writeln!(out, "$var wire 1 {} {} $end", ident(i), sanitize(name))?;
        }
        writeln!(out, "$upscope $end")?;
        writeln!(out, "$enddefinitions $end")?;
        let n = nets.len();
        Ok(VcdWriter {
            out,
            nets,
            last: vec![None; n],
            header_done: true,
        })
    }

    /// Record the current net values at `time_ps`; only changes are
    /// emitted (the first sample dumps everything).
    ///
    /// # Errors
    ///
    /// I/O errors from the sink.
    pub fn sample(&mut self, sim: &Simulator<'_>, time_ps: u64) -> io::Result<()> {
        debug_assert!(self.header_done);
        let mut stamped = false;
        for (i, (net, _)) in self.nets.iter().enumerate() {
            let v = sim.net_value(*net);
            if self.last[i] != Some(v) {
                if !stamped {
                    writeln!(self.out, "#{time_ps}")?;
                    stamped = true;
                }
                writeln!(self.out, "{}{}", logic_char(v), ident(i))?;
                self.last[i] = Some(v);
            }
        }
        Ok(())
    }

    /// Finish and return the underlying sink.
    pub fn into_inner(self) -> W {
        self.out
    }
}

fn sanitize(raw: &str) -> String {
    raw.chars()
        .map(|c| if c.is_ascii_graphic() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_netlist::{Builder, ClockSpec};

    fn counter() -> Netlist {
        let mut nl = Netlist::new("cnt");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let q = b.netlist().add_net("q");
        let d = b.not(q);
        b.netlist()
            .add_cell("ff", triphase_netlist::CellKind::Dff, vec![d, ck, q]);
        b.netlist().add_output("q", q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        nl
    }

    #[test]
    fn emits_header_and_changes() {
        let nl = counter();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        let mut vcd = VcdWriter::new(Vec::new(), &nl).unwrap();
        for cycle in 0..4u64 {
            sim.step_cycle();
            vcd.sample(&sim, cycle * 1000).unwrap();
        }
        let text = String::from_utf8(vcd.into_inner()).unwrap();
        assert!(text.contains("$timescale 1ps $end"));
        assert!(text.contains("$var wire 1"));
        assert!(text.contains("$enddefinitions $end"));
        // The toggle FF flips every cycle: at least 4 timestamps.
        assert!(text.matches('#').count() >= 4, "{text}");
    }

    #[test]
    fn only_changes_are_emitted() {
        let nl = counter();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        let q = nl.find_port("q").unwrap();
        let qnet = nl.port(q).net;
        let mut vcd = VcdWriter::with_nets(Vec::new(), &nl, vec![(qnet, "q".into())]).unwrap();
        sim.step_cycle();
        vcd.sample(&sim, 0).unwrap();
        vcd.sample(&sim, 500).unwrap(); // no change -> no new timestamp
        let text = String::from_utf8(vcd.into_inner()).unwrap();
        assert_eq!(text.matches('#').count(), 1, "{text}");
    }

    #[test]
    fn idents_are_unique_and_printable() {
        let ids: Vec<String> = (0..200).map(ident).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        assert!(ids.iter().all(|s| s.chars().all(|c| c.is_ascii_graphic())));
    }
}
