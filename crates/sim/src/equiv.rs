//! Equivalence checking by input streaming (the paper's validation
//! methodology: "streaming inputs to the FF-based and latch-based designs
//! and compare output streams").

use crate::compile::{CompiledSim, Lanes};
use crate::error::{Error, Result};
use crate::logic::Logic;
use crate::packed::{lane_seeds, LANES};
use crate::sim::Simulator;
use triphase_netlist::{Netlist, PortId};

/// First divergence found between two designs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Cycle at which outputs diverged (0-based).
    pub cycle: u64,
    /// Name of the diverging output port.
    pub port: String,
    /// Value produced by the reference design.
    pub expected: Logic,
    /// Value produced by the design under test.
    pub actual: Logic,
}

/// Result of an equivalence stream run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivReport {
    /// Cycles simulated.
    pub cycles: u64,
    /// First mismatch, if any.
    pub mismatch: Option<Mismatch>,
}

impl EquivReport {
    /// `true` when no mismatch was observed.
    pub fn equivalent(&self) -> bool {
        self.mismatch.is_none()
    }
}

/// Deterministic stream generator: the workspace-wide splitmix64 from
/// [`triphase_netlist::rng`], re-exported under the historical name so
/// stream seeds keep producing the exact same sequences.
pub use triphase_netlist::rng::SplitMix64 as Stream;

/// Data ports of a design: inputs excluding clock phases, sorted by name.
pub fn data_inputs(nl: &Netlist) -> Vec<PortId> {
    let mut ports: Vec<PortId> = nl
        .input_ports()
        .into_iter()
        .filter(|&p| {
            nl.clock
                .as_ref()
                .is_none_or(|c| c.phase_of_port(p).is_none())
        })
        .collect();
    ports.sort_by(|&a, &b| nl.port(a).name.cmp(&nl.port(b).name));
    ports
}

/// Output ports sorted by name.
pub fn data_outputs(nl: &Netlist) -> Vec<PortId> {
    let mut ports = nl.output_ports();
    ports.sort_by(|&a, &b| nl.port(a).name.cmp(&nl.port(b).name));
    ports
}

/// Stream `cycles` pseudo-random input vectors (from `seed`) into both
/// designs and compare their output streams cycle by cycle.
///
/// Data ports are matched by name; both designs are reset to all-zero
/// state first.
///
/// # Errors
///
/// [`Error::PortMismatch`] if the designs' data port names differ;
/// simulator construction errors are propagated.
pub fn equiv_stream(
    golden: &Netlist,
    dut: &Netlist,
    seed: u64,
    cycles: u64,
) -> Result<EquivReport> {
    equiv_stream_warmup(golden, dut, seed, cycles, 0)
}

/// [`equiv_stream`] that ignores mismatches during the first `warmup`
/// cycles — used after retiming, whose relocated registers start from
/// reset values that flush through feed-forward logic within a few
/// cycles.
///
/// Runs on the compiled bytecode backend: every cycle streams **64**
/// independent random vectors (lane 0 drawn from `seed`'s historical
/// stream, the others from [`lane_seeds`]) through both designs at once,
/// so one call now covers 64× the stimulus of the old scalar pass for
/// well under the scalar cost. The compiled kernel is a certified
/// bit-exact twin of the packed one, so reports are unchanged from the
/// packed era. `cycles` in the report stays the per-lane cycle count; a
/// mismatch reports the earliest cycle, then the first port in name
/// order, then the lowest diverging lane.
///
/// # Errors
///
/// Same as [`equiv_stream`].
pub fn equiv_stream_warmup(
    golden: &Netlist,
    dut: &Netlist,
    seed: u64,
    cycles: u64,
    warmup: u64,
) -> Result<EquivReport> {
    let g_in = data_inputs(golden);
    let d_in = data_inputs(dut);
    let g_out = data_outputs(golden);
    let d_out = data_outputs(dut);
    let names = |nl: &Netlist, ps: &[PortId]| -> Vec<String> {
        ps.iter().map(|&p| nl.port(p).name.clone()).collect()
    };
    if names(golden, &g_in) != names(dut, &d_in) {
        return Err(Error::PortMismatch("input ports differ".into()));
    }
    if names(golden, &g_out) != names(dut, &d_out) {
        return Err(Error::PortMismatch("output ports differ".into()));
    }

    let mut gsim = CompiledSim::<1>::new(golden, LANES)?;
    let mut dsim = CompiledSim::<1>::new(dut, LANES)?;
    gsim.reset_zero();
    dsim.reset_zero();
    let mut streams: Vec<Stream> = lane_seeds(seed, LANES)
        .into_iter()
        .map(Stream::new)
        .collect();
    for cycle in 0..cycles {
        for (&gp, &dp) in g_in.iter().zip(&d_in) {
            let mut bits = 0u64;
            for (l, s) in streams.iter_mut().enumerate() {
                bits |= u64::from(s.next_bit()) << l;
            }
            let v = Lanes::from_bits([bits]);
            gsim.set_input(gp, v);
            dsim.set_input(dp, v);
        }
        gsim.step_cycle();
        dsim.step_cycle();
        if cycle < warmup {
            continue;
        }
        for (&gp, &dp) in g_out.iter().zip(&d_out) {
            let (e, a) = (gsim.output(gp), dsim.output(dp));
            let diff = e.eq_lanes(a).not();
            if let Some(lane) = diff.lowest() {
                return Ok(EquivReport {
                    cycles: cycle + 1,
                    mismatch: Some(Mismatch {
                        cycle,
                        port: golden.port(gp).name.clone(),
                        expected: e.get(lane),
                        actual: a.get(lane),
                    }),
                });
            }
        }
    }
    Ok(EquivReport {
        cycles,
        mismatch: None,
    })
}

/// Replay explicit per-cycle input vectors through both designs and
/// compare output streams — the confirmation step for SAT counterexamples
/// from formal equivalence checking. `vectors[c]` holds one bool per data
/// input port of the golden design, in [`data_inputs`] order (sorted by
/// name); mismatches during the first `warmup` cycles are ignored.
///
/// # Errors
///
/// [`Error::PortMismatch`] if port names differ or a vector's length does
/// not match the data-input count; simulator construction errors are
/// propagated.
pub fn replay_vectors(
    golden: &Netlist,
    dut: &Netlist,
    vectors: &[Vec<bool>],
    warmup: u64,
) -> Result<EquivReport> {
    let g_in = data_inputs(golden);
    let d_in = data_inputs(dut);
    let g_out = data_outputs(golden);
    let d_out = data_outputs(dut);
    let names = |nl: &Netlist, ps: &[PortId]| -> Vec<String> {
        ps.iter().map(|&p| nl.port(p).name.clone()).collect()
    };
    if names(golden, &g_in) != names(dut, &d_in) {
        return Err(Error::PortMismatch("input ports differ".into()));
    }
    if names(golden, &g_out) != names(dut, &d_out) {
        return Err(Error::PortMismatch("output ports differ".into()));
    }
    let mut gsim = Simulator::new(golden)?;
    let mut dsim = Simulator::new(dut)?;
    gsim.reset_zero();
    dsim.reset_zero();
    for (cycle, vec) in vectors.iter().enumerate() {
        if vec.len() != g_in.len() {
            return Err(Error::PortMismatch(format!(
                "cycle {cycle} vector has {} values for {} data inputs",
                vec.len(),
                g_in.len()
            )));
        }
        for ((&gp, &dp), &bit) in g_in.iter().zip(&d_in).zip(vec) {
            let v = Logic::from_bool(bit);
            gsim.set_input(gp, v);
            dsim.set_input(dp, v);
        }
        gsim.step_cycle();
        dsim.step_cycle();
        if (cycle as u64) < warmup {
            continue;
        }
        for (&gp, &dp) in g_out.iter().zip(&d_out) {
            let (e, a) = (gsim.output(gp), dsim.output(dp));
            if e != a {
                return Ok(EquivReport {
                    cycles: cycle as u64 + 1,
                    mismatch: Some(Mismatch {
                        cycle: cycle as u64,
                        port: golden.port(gp).name.clone(),
                        expected: e,
                        actual: a,
                    }),
                });
            }
        }
    }
    Ok(EquivReport {
        cycles: vectors.len() as u64,
        mismatch: None,
    })
}

/// Run `cycles` of pseudo-random stimulus on a single design and return
/// its simulator (with accumulated [`crate::Activity`]); the standard way
/// the flow gathers switching statistics.
///
/// # Errors
///
/// Simulator construction errors.
pub fn run_random<'a>(nl: &'a Netlist, seed: u64, cycles: u64) -> Result<Simulator<'a>> {
    let inputs = data_inputs(nl);
    let mut sim = Simulator::new(nl)?;
    sim.reset_zero();
    let mut stream = Stream::new(seed);
    for _ in 0..cycles {
        for &p in &inputs {
            sim.set_input(p, Logic::from_bool(stream.next_bit()));
        }
        sim.step_cycle();
    }
    Ok(sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_cells::CellKind;
    use triphase_netlist::{Builder, ClockSpec};

    /// FF pipeline: din -> FF -> INV -> FF -> dout.
    fn ff_design() -> Netlist {
        let mut nl = Netlist::new("ff");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, din) = b.netlist().add_input("din");
        let q0 = b.dff(din, ck);
        let x = b.not(q0);
        let q1 = b.dff(x, ck);
        b.netlist().add_output("dout", q1);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        nl
    }

    /// Hand-converted master-slave version of [`ff_design`].
    fn ms_design() -> Netlist {
        let mut nl = Netlist::new("ms");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, din) = b.netlist().add_input("din");
        let m0 = b.net("m0");
        let s0 = b.net("s0");
        let m1 = b.net("m1");
        let s1 = b.net("s1");
        b.netlist()
            .add_cell("l_m0", CellKind::LatchL, vec![din, ck, m0]);
        b.netlist()
            .add_cell("l_s0", CellKind::LatchH, vec![m0, ck, s0]);
        let x = b.not(s0);
        b.netlist()
            .add_cell("l_m1", CellKind::LatchL, vec![x, ck, m1]);
        b.netlist()
            .add_cell("l_s1", CellKind::LatchH, vec![m1, ck, s1]);
        b.netlist().add_output("dout", s1);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        nl
    }

    #[test]
    fn ff_equals_master_slave() {
        let golden = ff_design();
        let dut = ms_design();
        let r = equiv_stream(&golden, &dut, 42, 200).unwrap();
        assert!(r.equivalent(), "{:?}", r.mismatch);
        assert_eq!(r.cycles, 200);
    }

    #[test]
    fn detects_real_difference() {
        let golden = ff_design();
        // A DUT with the inverter missing.
        let mut nl = Netlist::new("bad");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, din) = b.netlist().add_input("din");
        let q0 = b.dff(din, ck);
        let q1 = b.dff(q0, ck);
        b.netlist().add_output("dout", q1);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let r = equiv_stream(&golden, &nl, 42, 50).unwrap();
        assert!(!r.equivalent());
        let m = r.mismatch.unwrap();
        assert_eq!(m.port, "dout");
    }

    #[test]
    fn port_mismatch_rejected() {
        let golden = ff_design();
        let mut nl = Netlist::new("other");
        let (ckp, _ck) = nl.add_input("ck");
        let (_, a) = nl.add_input("other_in");
        nl.add_output("dout", a);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        assert!(matches!(
            equiv_stream(&golden, &nl, 1, 10),
            Err(Error::PortMismatch(_))
        ));
    }

    #[test]
    fn stream_is_deterministic() {
        let mut a = Stream::new(7);
        let mut b = Stream::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_bit(), b.next_bit());
        }
        let mut c = Stream::new(8);
        let differs = (0..64).any(|_| a.next_u64() != c.next_u64());
        assert!(differs);
    }

    #[test]
    fn run_random_accumulates_activity() {
        let nl = ff_design();
        let sim = run_random(&nl, 5, 64).unwrap();
        assert_eq!(sim.activity().cycles, 64);
        let din = nl.find_port("din").unwrap();
        assert!(sim.activity().net_toggles[nl.port(din).net.index()] > 10);
    }
}
