//! Bit-parallel (64-lane) simulation kernel.
//!
//! Classic word-level gate simulation: 64 independent stimulus vectors are
//! packed into one machine word per net, so a gate evaluation becomes a
//! handful of bitwise ops instead of 64 match statements. Three-valued
//! logic uses a **two-plane encoding** per lane:
//!
//! | value | `hi` bit | `lo` bit |
//! |-------|----------|----------|
//! | 0     | 0        | 1        |
//! | 1     | 1        | 0        |
//! | X     | 1        | 1        |
//!
//! (`hi=lo=0` never occurs.) A lane is *known* iff `hi ^ lo`. NOT swaps
//! the planes; AND/OR/XOR/MUX reduce to the plane formulas in
//! [`PackedLogic`], each provably equal to [`Logic`]'s 3-valued tables —
//! see the exhaustive cross-check in this module's tests.
//!
//! [`PackedSim`] is compiled once from a netlist: the combinational fabric
//! is levelized into a flat op list (same topological order as the scalar
//! [`Simulator`]), the clock network and storage cells into dedicated op
//! lists. Every control-flow decision the scalar simulator makes per value
//! (settle fixpoint, clock-event rounds, FF capture) is taken here on the
//! *union* of lanes; because all per-lane updates are idempotent once a
//! lane has settled, lane `l` of a packed run follows exactly the same
//! trajectory as a scalar run with lane `l`'s stimulus. That makes the
//! kernel bit-exact with [`Simulator`] per lane — values *and* toggle
//! counts (for a single active lane the [`Activity`] is identical; for 64
//! lanes, toggles sum over lanes and `cycles` scales by the lane count, so
//! toggle *rates* are the per-lane average).
//!
//! [`Simulator`]: crate::Simulator

use std::ops::Not;

use crate::error::{Error, Result};
use crate::logic::Logic;
use crate::sim::{clock_network_order, Activity, MAX_SETTLE_PASSES};
use triphase_cells::CellKind;
use triphase_netlist::rng::SplitMix64;
use triphase_netlist::{graph, Netlist, PortDir, PortId};

/// Number of stimulus lanes in one packed word.
pub const LANES: usize = 64;

/// 64 lanes of 3-valued logic in two bit-planes (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedLogic {
    /// Plane set for 1 and X.
    pub hi: u64,
    /// Plane set for 0 and X.
    pub lo: u64,
}

impl PackedLogic {
    /// All lanes 0.
    pub const ZERO: PackedLogic = PackedLogic { hi: 0, lo: !0 };
    /// All lanes 1.
    pub const ONE: PackedLogic = PackedLogic { hi: !0, lo: 0 };
    /// All lanes X.
    pub const X: PackedLogic = PackedLogic { hi: !0, lo: !0 };

    /// Same value in every lane.
    pub fn splat(v: Logic) -> PackedLogic {
        match v {
            Logic::Zero => PackedLogic::ZERO,
            Logic::One => PackedLogic::ONE,
            Logic::X => PackedLogic::X,
        }
    }

    /// Known (non-X) values from a bit vector: lane `l` = bit `l`.
    pub fn from_bits(bits: u64) -> PackedLogic {
        PackedLogic {
            hi: bits,
            lo: !bits,
        }
    }

    /// Value in lane `l`.
    pub fn get(self, lane: usize) -> Logic {
        match ((self.hi >> lane) & 1, (self.lo >> lane) & 1) {
            (0, _) => Logic::Zero,
            (1, 0) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Lanes holding a known value.
    pub fn known(self) -> u64 {
        self.hi ^ self.lo
    }

    /// Lanes holding exactly 1.
    pub fn is_one(self) -> u64 {
        self.hi & !self.lo
    }

    /// Lanes holding exactly 0.
    pub fn is_zero(self) -> u64 {
        self.lo & !self.hi
    }

    /// Lanes holding X.
    pub fn is_x(self) -> u64 {
        self.hi & self.lo
    }

    /// Lanes where `self` and `other` hold the same 3-valued value
    /// (X == X, matching `Logic`'s `Eq`).
    pub fn eq_lanes(self, other: PackedLogic) -> u64 {
        !(self.hi ^ other.hi) & !(self.lo ^ other.lo)
    }

    /// Lane-wise 3-valued AND.
    pub fn and(self, b: PackedLogic) -> PackedLogic {
        PackedLogic {
            hi: self.hi & b.hi,
            lo: self.lo | b.lo,
        }
    }

    /// Lane-wise 3-valued OR.
    pub fn or(self, b: PackedLogic) -> PackedLogic {
        PackedLogic {
            hi: self.hi | b.hi,
            lo: self.lo & b.lo,
        }
    }

    /// Lane-wise 3-valued XOR.
    pub fn xor(self, b: PackedLogic) -> PackedLogic {
        PackedLogic {
            hi: (self.hi & b.lo) | (self.lo & b.hi),
            lo: (self.hi & b.hi) | (self.lo & b.lo),
        }
    }

    /// Lane-wise 2:1 mux with `self` as select (0 → `d0`, 1 → `d1`,
    /// X → `d0` if it equals `d1`, else X) — matches scalar `Mux2`.
    pub fn mux(self, d0: PackedLogic, d1: PackedLogic) -> PackedLogic {
        PackedLogic {
            hi: (self.hi & d1.hi) | (self.lo & d0.hi),
            lo: (self.hi & d1.lo) | (self.lo & d0.lo),
        }
    }

    /// Per-lane select: lanes in `mask` take `a`, the rest take `b`.
    pub fn merge(mask: u64, a: PackedLogic, b: PackedLogic) -> PackedLogic {
        PackedLogic {
            hi: (a.hi & mask) | (b.hi & !mask),
            lo: (a.lo & mask) | (b.lo & !mask),
        }
    }
}

/// Lane-wise 3-valued NOT: swap the planes (X stays X).
impl std::ops::Not for PackedLogic {
    type Output = PackedLogic;

    fn not(self) -> PackedLogic {
        PackedLogic {
            hi: self.lo,
            lo: self.hi,
        }
    }
}

/// One compiled combinational cell: `kind` over `inputs[in_start..in_start
/// + in_count]` (indices into the flat input arena) driving net `out`.
#[derive(Debug, Clone, Copy)]
struct Op {
    kind: OpKind,
    out: u32,
    in_start: u32,
    in_count: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Const0,
    Const1,
    Buf,
    Inv,
    And,
    Or,
    Nand,
    Nor,
    Xor,
    Xnor,
    Mux2,
}

/// Compiled clock-network cell (dependency order preserved).
#[derive(Debug, Clone, Copy)]
enum ClockOp {
    Buf {
        inp: u32,
        out: u32,
    },
    Icg {
        en: u32,
        ck: u32,
        out: u32,
        cell: u32,
    },
    IcgM1 {
        en: u32,
        p3: u32,
        ck: u32,
        out: u32,
        cell: u32,
    },
    IcgM2 {
        en: u32,
        ck: u32,
        out: u32,
    },
}

/// Compiled storage cell. `ck` is the clocking net (CK for FFs, G for
/// latches) — also what the event loop snapshots for edge detection.
#[derive(Debug, Clone, Copy)]
struct StorageOp {
    kind: StorageKind,
    d: u32,
    ck: u32,
    q: u32,
    /// Enable net for `DffEn`; unused otherwise.
    en: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StorageKind {
    Dff,
    DffEn,
    LatchH,
    LatchL,
}

/// Bit-parallel twin of the scalar [`Simulator`](crate::Simulator):
/// simulates up to [`LANES`] independent stimulus lanes per step.
#[derive(Debug)]
pub struct PackedSim<'a> {
    nl: &'a Netlist,
    ops: Vec<Op>,
    op_inputs: Vec<u32>,
    clock_ops: Vec<ClockOp>,
    storage: Vec<StorageOp>,
    icg_state: Vec<PackedLogic>,
    values: Vec<PackedLogic>,
    pending_inputs: Vec<(u32, PackedLogic)>,
    net_toggles: Vec<u64>,
    /// Cycles stepped per lane since reset.
    per_lane_cycles: u64,
    /// Clock-edge times within one cycle (ps, ascending).
    events: Vec<f64>,
    clock_ports: Vec<(u32, usize)>,
    lanes: usize,
    lane_mask: u64,
    // Reused per-pass scratch: clock snapshots and batched FF updates
    // were reallocated every settle pass / event round before the
    // compiled-backend PR's audit of inner-loop copies.
    before_ck: Vec<PackedLogic>,
    clk_snapshot: Vec<PackedLogic>,
    updates: Vec<(u32, PackedLogic)>,
}

impl<'a> PackedSim<'a> {
    /// Compile a packed simulator with `lanes` active lanes (1..=64).
    /// All state starts at X.
    ///
    /// # Errors
    ///
    /// [`Error::NoClock`] without a clock spec; [`Error::BadClock`] on an
    /// unusable one (zero/NaN period); [`Error::Netlist`] on
    /// combinational loops or a lane count outside 1..=64.
    pub fn new(nl: &'a Netlist, lanes: usize) -> Result<PackedSim<'a>> {
        if lanes == 0 || lanes > LANES {
            return Err(Error::Netlist(triphase_netlist::Error::Invalid(format!(
                "packed lane count {lanes} outside 1..={LANES}"
            ))));
        }
        let clock = nl.clock.as_ref().ok_or(Error::NoClock)?;
        crate::sim::validate_clock(clock)?;
        let idx = nl.index();
        let comb_order = graph::comb_topo_order(nl, &idx).map_err(Error::Netlist)?;
        let clock_order = clock_network_order(nl, &idx)?;

        let mut ops = Vec::with_capacity(comb_order.len());
        let mut op_inputs: Vec<u32> = Vec::new();
        for &c in &comb_order {
            let cell = nl.cell(c);
            let kind = match cell.kind {
                CellKind::Const0 => OpKind::Const0,
                CellKind::Const1 => OpKind::Const1,
                CellKind::Buf | CellKind::ClkBuf => OpKind::Buf,
                CellKind::Inv => OpKind::Inv,
                CellKind::And(_) => OpKind::And,
                CellKind::Or(_) => OpKind::Or,
                CellKind::Nand(_) => OpKind::Nand,
                CellKind::Nor(_) => OpKind::Nor,
                CellKind::Xor(_) => OpKind::Xor,
                CellKind::Xnor(_) => OpKind::Xnor,
                CellKind::Mux2 => OpKind::Mux2,
                k => unreachable!("non-comb kind {k:?} in comb order"),
            };
            let in_start = op_inputs.len() as u32;
            op_inputs.extend(cell.inputs().iter().map(|n| n.index() as u32));
            ops.push(Op {
                kind,
                out: cell.output().index() as u32,
                in_start,
                in_count: (op_inputs.len() as u32) - in_start,
            });
        }

        let clock_ops = clock_order
            .iter()
            .map(|&c| {
                let cell = nl.cell(c);
                let out = cell.output().index() as u32;
                let pin = |i: usize| cell.pin(i).index() as u32;
                match cell.kind {
                    CellKind::ClkBuf | CellKind::Buf => ClockOp::Buf { inp: pin(0), out },
                    CellKind::Icg => ClockOp::Icg {
                        en: pin(0),
                        ck: pin(1),
                        out,
                        cell: c.index() as u32,
                    },
                    CellKind::IcgM1 => ClockOp::IcgM1 {
                        en: pin(0),
                        p3: pin(1),
                        ck: pin(2),
                        out,
                        cell: c.index() as u32,
                    },
                    CellKind::IcgM2 => ClockOp::IcgM2 {
                        en: pin(0),
                        ck: pin(1),
                        out,
                    },
                    k => unreachable!("non-clock kind {k:?} in clock order"),
                }
            })
            .collect();

        let storage: Vec<StorageOp> = nl
            .cells()
            .filter(|(_, c)| c.kind.is_storage())
            .map(|(_, cell)| {
                let pin = |i: usize| cell.pin(i).index() as u32;
                let ck = pin(cell.kind.clock_pin().expect("storage has clock pin"));
                let (kind, d, en) = match cell.kind {
                    CellKind::Dff => (StorageKind::Dff, pin(0), 0),
                    CellKind::DffEn => (StorageKind::DffEn, pin(0), pin(1)),
                    CellKind::LatchH => (StorageKind::LatchH, pin(0), 0),
                    CellKind::LatchL => (StorageKind::LatchL, pin(0), 0),
                    k => unreachable!("non-storage kind {k:?}"),
                };
                StorageOp {
                    kind,
                    d,
                    ck,
                    q: cell.output().index() as u32,
                    en,
                }
            })
            .collect();

        // Distinct edge times within the cycle, ascending (as scalar).
        let mut times: Vec<f64> = Vec::new();
        for p in &clock.phases {
            for t in [
                p.rise_ps.rem_euclid(clock.period_ps),
                p.fall_ps.rem_euclid(clock.period_ps),
            ] {
                if !times.iter().any(|&x| (x - t).abs() < 1e-9) {
                    times.push(t);
                }
            }
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());

        let clock_ports = clock
            .phases
            .iter()
            .enumerate()
            .map(|(i, p)| (nl.port(p.port).net.index() as u32, i))
            .collect();

        let n_storage = storage.len();
        Ok(PackedSim {
            nl,
            ops,
            op_inputs,
            clock_ops,
            storage,
            icg_state: vec![PackedLogic::X; nl.cell_capacity()],
            values: vec![PackedLogic::X; nl.net_capacity()],
            pending_inputs: Vec::new(),
            net_toggles: vec![0; nl.net_capacity()],
            per_lane_cycles: 0,
            events: times,
            clock_ports,
            lanes,
            lane_mask: if lanes == LANES {
                !0
            } else {
                (1u64 << lanes) - 1
            },
            before_ck: vec![PackedLogic::X; n_storage],
            clk_snapshot: vec![PackedLogic::X; n_storage],
            updates: Vec::new(),
        })
    }

    /// Active lane count.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cycles stepped per lane since the last reset.
    pub fn per_lane_cycles(&self) -> u64 {
        self.per_lane_cycles
    }

    /// Reset every lane to the all-zero state with clocks at end-of-cycle
    /// levels and ICG enable latches loaded from the settled reset state —
    /// the exact packed twin of the scalar `reset_zero` (see its docs for
    /// the rationale).
    pub fn reset_zero(&mut self) {
        self.values.fill(PackedLogic::ZERO);
        self.icg_state.fill(PackedLogic::ZERO);
        self.net_toggles.fill(0);
        self.per_lane_cycles = 0;
        self.pending_inputs.clear();
        let period = self.nl.clock.as_ref().expect("checked in new").period_ps;
        for i in 0..self.clock_ports.len() {
            let (net, phase) = self.clock_ports[i];
            // Direct write (no toggle count), matching scalar reset.
            self.values[net as usize] = PackedLogic::splat(self.clock_level(phase, period - 1e-6));
        }
        self.eval_clock_network();
        self.settle_data();
        for op in &self.clock_ops {
            match *op {
                ClockOp::Icg { en, cell, .. } | ClockOp::IcgM1 { en, cell, .. } => {
                    self.icg_state[cell as usize] = self.values[en as usize];
                }
                ClockOp::Buf { .. } | ClockOp::IcgM2 { .. } => {}
            }
        }
        self.eval_clock_network();
        self.settle_data();
    }

    /// Queue a packed input value; applied at the start of the next cycle.
    ///
    /// # Panics
    ///
    /// Panics if `port` is not an input port.
    pub fn set_input(&mut self, port: PortId, value: PackedLogic) {
        let p = self.nl.port(port);
        assert_eq!(p.dir, PortDir::Input, "set_input on non-input");
        self.pending_inputs.push((p.net.index() as u32, value));
    }

    /// Current packed value seen by an output port.
    pub fn output(&self, port: PortId) -> PackedLogic {
        self.values[self.nl.port(port).net.index()]
    }

    /// Current packed value of a net.
    pub fn net_value(&self, net: triphase_netlist::NetId) -> PackedLogic {
        self.values[net.index()]
    }

    /// Switching activity accumulated so far: toggles are summed over
    /// active lanes and `cycles` is `per-lane cycles × lanes`, so
    /// [`Activity::toggle_rate`] yields the per-lane average. With one
    /// active lane this is bit-identical to the scalar simulator's
    /// activity for the same stimulus.
    pub fn activity(&self) -> Activity {
        Activity {
            cycles: self.per_lane_cycles * self.lanes as u64,
            net_toggles: self.net_toggles.clone(),
        }
    }

    /// Advance one full clock cycle for every lane (same input convention
    /// as the scalar simulator: pending inputs land just after the first
    /// clock event).
    pub fn step_cycle(&mut self) {
        self.settle_data();
        for i in 0..self.events.len() {
            let t = self.events[i];
            self.process_clock_event(t);
            if i == 0 {
                let pending = std::mem::take(&mut self.pending_inputs);
                for (net, v) in pending {
                    self.set_net(net, v);
                }
                self.settle_data();
            }
        }
        self.per_lane_cycles += 1;
    }

    fn clock_level(&self, phase: usize, t: f64) -> Logic {
        let clock = self.nl.clock.as_ref().expect("checked in new");
        let p = &clock.phases[phase];
        let period = clock.period_ps;
        let (r, f) = (p.rise_ps.rem_euclid(period), p.fall_ps.rem_euclid(period));
        let high = if r < f {
            t >= r - 1e-9 && t < f - 1e-9
        } else {
            t >= r - 1e-9 || t < f - 1e-9
        };
        Logic::from_bool(high)
    }

    #[inline]
    fn set_net(&mut self, net: u32, val: PackedLogic) {
        let old = self.values[net as usize];
        // A lane toggles when both old and new are known and differ —
        // for known lanes the value is the `hi` bit.
        let toggled = old.known() & val.known() & (old.hi ^ val.hi) & self.lane_mask;
        self.net_toggles[net as usize] += u64::from(toggled.count_ones());
        self.values[net as usize] = val;
    }

    fn process_clock_event(&mut self, t: f64) {
        // Up to a few rounds in case a gated clock rises as a result of
        // data settling, exactly as the scalar event loop. Extra rounds
        // are identities on lanes that already settled.
        for _ in 0..4 {
            for i in 0..self.storage.len() {
                self.before_ck[i] = self.values[self.storage[i].ck as usize];
            }

            for i in 0..self.clock_ports.len() {
                let (net, phase) = self.clock_ports[i];
                let v = PackedLogic::splat(self.clock_level(phase, t));
                self.set_net(net, v);
            }
            self.eval_clock_network();

            // Capture: FF lanes whose clock rose latch pre-edge data.
            // Updates are batched (reads see pre-update values).
            let mut updates = std::mem::take(&mut self.updates);
            updates.clear();
            for (si, s) in self.storage.iter().enumerate() {
                if !matches!(s.kind, StorageKind::Dff | StorageKind::DffEn) {
                    continue;
                }
                let ck = self.values[s.ck as usize];
                let rose = !self.before_ck[si].is_one() & ck.is_one();
                if rose == 0 {
                    continue;
                }
                let d = self.values[s.d as usize];
                let q = self.values[s.q as usize];
                let next = match s.kind {
                    StorageKind::Dff => d,
                    StorageKind::DffEn => {
                        let en = self.values[s.en as usize];
                        // EN=1 → d; EN=0 → q; EN=X → d if d == q else X.
                        let take_d = en.is_one() | (en.is_x() & d.eq_lanes(q));
                        let go_x = en.is_x() & !d.eq_lanes(q);
                        PackedLogic::merge(take_d, d, PackedLogic::merge(go_x, PackedLogic::X, q))
                    }
                    _ => unreachable!(),
                };
                updates.push((s.q, PackedLogic::merge(rose, next, q)));
            }
            for &(net, v) in &updates {
                self.set_net(net, v);
            }
            self.updates = updates;
            if !self.settle_data() {
                break;
            }
        }
    }

    fn eval_clock_network(&mut self) {
        let ops = std::mem::take(&mut self.clock_ops);
        for op in &ops {
            match *op {
                ClockOp::Buf { inp, out } => {
                    let v = self.values[inp as usize];
                    self.set_net(out, v);
                }
                ClockOp::Icg { en, ck, out, cell } => {
                    let en = self.values[en as usize];
                    let ck = self.values[ck as usize];
                    // Enable latch transparent in lanes where CK != 1.
                    let state = PackedLogic::merge(!ck.is_one(), en, self.icg_state[cell as usize]);
                    self.icg_state[cell as usize] = state;
                    self.set_net(out, ck.and(state));
                }
                ClockOp::IcgM1 {
                    en,
                    p3,
                    ck,
                    out,
                    cell,
                } => {
                    let en = self.values[en as usize];
                    let p3 = self.values[p3 as usize];
                    let ck = self.values[ck as usize];
                    let state = PackedLogic::merge(p3.is_one(), en, self.icg_state[cell as usize]);
                    self.icg_state[cell as usize] = state;
                    self.set_net(out, ck.and(state));
                }
                ClockOp::IcgM2 { en, ck, out } => {
                    let v = self.values[ck as usize].and(self.values[en as usize]);
                    self.set_net(out, v);
                }
            }
        }
        self.clock_ops = ops;
    }

    fn eval_op(&self, op: &Op) -> PackedLogic {
        let ins = &self.op_inputs[op.in_start as usize..(op.in_start + op.in_count) as usize];
        let v = |i: usize| self.values[ins[i] as usize];
        match op.kind {
            OpKind::Const0 => PackedLogic::ZERO,
            OpKind::Const1 => PackedLogic::ONE,
            OpKind::Buf => v(0),
            OpKind::Inv => v(0).not(),
            OpKind::And => (1..ins.len()).fold(v(0), |a, i| a.and(v(i))),
            OpKind::Or => (1..ins.len()).fold(v(0), |a, i| a.or(v(i))),
            OpKind::Nand => (1..ins.len()).fold(v(0), |a, i| a.and(v(i))).not(),
            OpKind::Nor => (1..ins.len()).fold(v(0), |a, i| a.or(v(i))).not(),
            OpKind::Xor => (1..ins.len()).fold(v(0), |a, i| a.xor(v(i))),
            OpKind::Xnor => (1..ins.len()).fold(v(0), |a, i| a.xor(v(i))).not(),
            OpKind::Mux2 => v(2).mux(v(0), v(1)),
        }
    }

    /// Settle combinational logic, transparent latches, and clock-gate
    /// outputs to a fixpoint over all lanes. Returns `true` if any storage
    /// clock net changed in any lane (mid-step gated-clock event).
    fn settle_data(&mut self) -> bool {
        let mut clock_changed = false;
        for _pass in 0..MAX_SETTLE_PASSES {
            let mut changed = false;
            let ops = std::mem::take(&mut self.ops);
            for op in &ops {
                let v = self.eval_op(op);
                if self.values[op.out as usize] != v {
                    changed = true;
                    self.set_net(op.out, v);
                }
            }
            self.ops = ops;

            for i in 0..self.storage.len() {
                self.clk_snapshot[i] = self.values[self.storage[i].ck as usize];
            }
            self.eval_clock_network();
            for (si, s) in self.storage.iter().enumerate() {
                if self.clk_snapshot[si] != self.values[s.ck as usize] {
                    clock_changed = true;
                    changed = true;
                }
            }

            let storage = std::mem::take(&mut self.storage);
            for s in &storage {
                let (transparent_of, is_latch) = match s.kind {
                    StorageKind::LatchH => (true, true),
                    StorageKind::LatchL => (false, true),
                    _ => (false, false),
                };
                if !is_latch {
                    continue;
                }
                let g = self.values[s.ck as usize];
                let transparent = if transparent_of {
                    g.is_one()
                } else {
                    g.is_zero()
                };
                let unknown_gate = g.is_x();
                let d = self.values[s.d as usize];
                let q = self.values[s.q as usize];
                // transparent → d; X gate with d != q → X; else hold q.
                let go_x = unknown_gate & !d.eq_lanes(q);
                let next =
                    PackedLogic::merge(transparent, d, PackedLogic::merge(go_x, PackedLogic::X, q));
                if next != q {
                    changed = true;
                    self.set_net(s.q, next);
                }
            }
            self.storage = storage;
            if !changed {
                return clock_changed;
            }
        }
        clock_changed
    }
}

/// Per-lane stream seeds: lane 0 keeps `seed` verbatim (so lane 0
/// reproduces the historical single-stream run exactly); lane `l > 0`
/// draws an independent seed from `splitmix64(seed + l)`.
pub fn lane_seeds(seed: u64, lanes: usize) -> Vec<u64> {
    (0..lanes)
        .map(|l| {
            if l == 0 {
                seed
            } else {
                SplitMix64::new(seed.wrapping_add(l as u64)).next_u64()
            }
        })
        .collect()
}

/// Packed twin of [`run_random`](crate::run_random): drive `lanes`
/// independent pseudo-random streams for `cycles` cycles each. Lane `l`'s
/// stimulus equals a scalar `run_random` with seed `lane_seeds(seed,
/// lanes)[l]` (same per-port draw order).
///
/// # Errors
///
/// Simulator construction errors.
pub fn run_random_packed(
    nl: &Netlist,
    seed: u64,
    cycles: u64,
    lanes: usize,
) -> Result<PackedSim<'_>> {
    let inputs = crate::equiv::data_inputs(nl);
    let mut sim = PackedSim::new(nl, lanes)?;
    sim.reset_zero();
    let mut streams: Vec<SplitMix64> = lane_seeds(seed, lanes)
        .into_iter()
        .map(SplitMix64::new)
        .collect();
    for _ in 0..cycles {
        for &p in &inputs {
            let mut bits = 0u64;
            for (l, s) in streams.iter_mut().enumerate() {
                bits |= u64::from(s.next_bit()) << l;
            }
            sim.set_input(p, PackedLogic::from_bits(bits));
        }
        sim.step_cycle();
    }
    Ok(sim)
}

/// Gather switching activity with the packed kernel: splits `cycles`
/// total simulated cycles across up to 64 lanes (per-lane cycle count
/// rounded up, so at least `cycles` are simulated). The drop-in fast
/// replacement for scalar `run_random(..).activity()` in the power flow.
///
/// # Errors
///
/// Simulator construction errors.
pub fn collect_activity_packed(nl: &Netlist, seed: u64, cycles: u64) -> Result<Activity> {
    let lanes = cycles.clamp(1, LANES as u64) as usize;
    let per_lane = cycles.div_ceil(lanes as u64);
    Ok(run_random_packed(nl, seed, per_lane, lanes)?.activity())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::run_random;
    use crate::sim::Simulator;
    use triphase_cells::CellKind;
    use triphase_netlist::{Builder, ClockSpec, Word};

    const ALL: [Logic; 3] = [Logic::Zero, Logic::One, Logic::X];

    /// `v` in lane 0, X everywhere else.
    fn lane0(v: Logic) -> PackedLogic {
        PackedLogic::merge(1, PackedLogic::splat(v), PackedLogic::X)
    }

    #[test]
    fn plane_ops_match_scalar_tables() {
        for a in ALL {
            assert_eq!(lane0(a).not().get(0), a.not(), "not {a}");
            for b in ALL {
                assert_eq!(lane0(a).and(lane0(b)).get(0), a.and(b), "{a} and {b}");
                assert_eq!(lane0(a).or(lane0(b)).get(0), a.or(b), "{a} or {b}");
                assert_eq!(lane0(a).xor(lane0(b)).get(0), a.xor(b), "{a} xor {b}");
            }
        }
    }

    #[test]
    fn mux_matches_scalar_semantics() {
        use crate::logic::eval_kind;
        for s in ALL {
            for d0 in ALL {
                for d1 in ALL {
                    let want = eval_kind(CellKind::Mux2, &[d0, d1, s]);
                    let got = lane0(s).mux(lane0(d0), lane0(d1)).get(0);
                    assert_eq!(got, want, "mux s={s} d0={d0} d1={d1}");
                }
            }
        }
    }

    #[test]
    fn eq_lanes_treats_x_as_equal() {
        for a in ALL {
            for b in ALL {
                let eq = lane0(a).eq_lanes(lane0(b)) & 1;
                assert_eq!(eq == 1, a == b, "{a} eq {b}");
            }
        }
    }

    /// 3-bit counter (same as the scalar sim tests).
    fn counter() -> triphase_netlist::Netlist {
        let mut nl = triphase_netlist::Netlist::new("cnt");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let q0 = b.net("q0");
        let q1 = b.net("q1");
        let q2 = b.net("q2");
        let one = b.const1();
        let q = Word(vec![q0, q1, q2]);
        let one_w = Word(vec![one, b.const0(), b.const0()]);
        let (next, _) = b.add(&q, &one_w, None);
        for (i, (&qn, d)) in [q0, q1, q2].iter().zip(next.bits()).enumerate() {
            let name = format!("ff{i}");
            b.netlist().add_cell(name, CellKind::Dff, vec![*d, ck, qn]);
        }
        b.word_output("q", &q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        nl
    }

    #[test]
    fn packed_counter_counts_in_every_lane() {
        let nl = counter();
        let mut sim = PackedSim::new(&nl, 64).unwrap();
        sim.reset_zero();
        for expect in 1..=10u32 {
            sim.step_cycle();
            for lane in [0usize, 1, 31, 63] {
                let got: u32 = (0..3)
                    .map(|i| {
                        let p = nl.find_port(&format!("q_{i}")).unwrap();
                        match sim.output(p).get(lane) {
                            Logic::One => 1 << i,
                            _ => 0,
                        }
                    })
                    .sum();
                assert_eq!(got, expect % 8, "cycle {expect} lane {lane}");
            }
        }
    }

    #[test]
    fn single_lane_activity_identical_to_scalar() {
        let nl = counter();
        let scalar = {
            let mut sim = Simulator::new(&nl).unwrap();
            sim.reset_zero();
            for _ in 0..8 {
                sim.step_cycle();
            }
            sim.activity().clone()
        };
        let packed = {
            let mut sim = PackedSim::new(&nl, 1).unwrap();
            sim.reset_zero();
            for _ in 0..8 {
                sim.step_cycle();
            }
            sim.activity()
        };
        assert_eq!(packed.cycles, scalar.cycles);
        assert_eq!(packed.net_toggles, scalar.net_toggles);
    }

    #[test]
    fn packed_lane_matches_scalar_run_random() {
        // A small mixed design: FF pipeline with an inverter.
        let mut nl = triphase_netlist::Netlist::new("ff");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let (_, din) = b.netlist().add_input("din");
        let q0 = b.dff(din, ck);
        let x = b.not(q0);
        let q1 = b.dff(x, ck);
        b.netlist().add_output("dout", q1);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));

        let seed = 42;
        let lanes = 8;
        let cycles = 40;
        let packed = run_random_packed(&nl, seed, cycles, lanes).unwrap();
        let dout = nl.find_port("dout").unwrap();
        for (l, &ls) in lane_seeds(seed, lanes).iter().enumerate() {
            let scalar = run_random(&nl, ls, cycles).unwrap();
            assert_eq!(
                packed.output(dout).get(l),
                scalar.output(dout),
                "lane {l} final output"
            );
        }
    }

    #[test]
    fn packed_activity_cycles_scale_with_lanes() {
        let nl = counter();
        let act = collect_activity_packed(&nl, 7, 640).unwrap();
        assert_eq!(act.cycles, 640);
        let ck = nl.find_port("ck").unwrap();
        let ck_net = nl.port(ck).net;
        // The clock toggles twice per cycle in every lane.
        assert_eq!(act.net_toggles[ck_net.index()], 2 * 640);
    }

    #[test]
    fn lane_count_validated() {
        let nl = counter();
        assert!(PackedSim::new(&nl, 0).is_err());
        assert!(PackedSim::new(&nl, 65).is_err());
        assert!(PackedSim::new(&nl, 64).is_ok());
    }
}
