//! Async job queue: submissions enqueue here, the worker pool pops.
//!
//! A plain FIFO under a mutex + condvar. Workers block in [`JobQueue::pop`]
//! until a job arrives or the queue is stopped; stopping wakes everyone
//! and drains to `None` so the pool can join.

use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};

use triphase_core::FlowConfig;
use triphase_netlist::Netlist;

/// One unit of queued work: a parsed job plus the channel its progress
/// and completion events are streamed to (the submitting connection's
/// writer).
pub struct Job {
    /// Server-assigned id, unique per daemon lifetime.
    pub id: u64,
    /// Client-chosen display name.
    pub name: String,
    /// The design to convert.
    pub netlist: Netlist,
    /// Flow configuration.
    pub cfg: FlowConfig,
    /// Echo the final 3-phase snapshot in the `done` event.
    pub return_netlist: bool,
    /// Serialized event frames go here; a closed receiver (client went
    /// away) silently drops the job's remaining events.
    pub reply: Sender<String>,
}

struct State {
    jobs: VecDeque<Job>,
    stopped: bool,
}

/// The shared FIFO. Cheap to clone.
#[derive(Clone)]
pub struct JobQueue {
    state: Arc<(Mutex<State>, Condvar)>,
}

impl JobQueue {
    /// Create an empty queue.
    pub fn new() -> JobQueue {
        JobQueue {
            state: Arc::new((
                Mutex::new(State {
                    jobs: VecDeque::new(),
                    stopped: false,
                }),
                Condvar::new(),
            )),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueue a job; returns `false` (job dropped) after [`JobQueue::stop`].
    pub fn push(&self, job: Job) -> bool {
        let mut st = self.lock();
        if st.stopped {
            return false;
        }
        st.jobs.push_back(job);
        drop(st);
        self.state.1.notify_one();
        true
    }

    /// Block until a job is available; `None` once stopped and drained.
    pub fn pop(&self) -> Option<Job> {
        let mut st = self.lock();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.stopped {
                return None;
            }
            st = self.state.1.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Jobs currently waiting (excludes jobs already on a worker).
    pub fn depth(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Stop the queue: queued jobs still drain, new pushes are refused,
    /// and blocked workers wake with `None` once the FIFO empties.
    pub fn stop(&self) {
        self.lock().stopped = true;
        self.state.1.notify_all();
    }
}

impl Default for JobQueue {
    fn default() -> Self {
        JobQueue::new()
    }
}
