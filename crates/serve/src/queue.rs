//! Async job queue with admission control: submissions reserve a slot,
//! the worker pool pops.
//!
//! A FIFO under a mutex + condvar, bounded in **two dimensions**
//! ([`QueueLimits`]): queued-entry count and estimated queued bytes
//! (netlist snapshot size — the dominant memory cost of a parked job).
//! A submission past either bound is **shed** with a typed
//! [`AdmitError::Overloaded`] carrying a `retry_after_ms` hint derived
//! from the observed per-job service time, so a well-behaved client
//! backs off for roughly one queue-drain interval instead of hammering.
//!
//! Admission is **two-phase** to keep the durability ordering honest:
//! [`JobQueue::reserve`] claims capacity, the server journals the accept
//! (fsync) and sends the ack, and only then [`JobQueue::commit`] makes
//! the job poppable. A journal failure releases the reservation and the
//! job is shed — an acknowledged job is therefore always on disk.
//!
//! Workers block in [`JobQueue::pop`] until a job arrives or the queue
//! is stopped. [`JobQueue::stop`] is the *drain* mode (queued jobs still
//! pop, new pushes refused); [`JobQueue::stop_discard`] is the *now*
//! mode (queued jobs are handed back to the caller, which journals them
//! as still-pending so a restart resumes them).
//!
//! Every lock acquisition recovers from poisoning explicitly
//! (`unwrap_or_else(into_inner)`): a worker panicking while holding the
//! lock must not wedge the daemon — the state itself is never left torn
//! because each critical section completes its mutation before any call
//! that could panic.

use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};

use triphase_core::FlowConfig;
use triphase_netlist::Netlist;

/// One unit of queued work: a parsed job plus the channel its progress
/// and completion events are streamed to (the submitting connection's
/// writer).
pub struct Job {
    /// Server-assigned id, unique per daemon lifetime.
    pub id: u64,
    /// Client-chosen display name.
    pub name: String,
    /// The design to convert.
    pub netlist: Netlist,
    /// Flow configuration.
    pub cfg: FlowConfig,
    /// Echo the final 3-phase snapshot in the `done` event.
    pub return_netlist: bool,
    /// Approximate memory this job occupies while queued (snapshot text
    /// length); charged against [`QueueLimits::bytes`].
    pub est_bytes: usize,
    /// Client-requested deadline, if any (already folded into
    /// `cfg.phase_cfg.time_limit`; kept for the cancellation token).
    pub deadline_ms: Option<u64>,
    /// Serialized event frames go here; a closed receiver (client went
    /// away) silently drops the job's remaining events.
    pub reply: Sender<String>,
}

/// Admission bounds for the queue.
#[derive(Debug, Clone, Copy)]
pub struct QueueLimits {
    /// Maximum queued jobs (excludes jobs already on a worker).
    pub depth: usize,
    /// Maximum estimated queued bytes.
    pub bytes: usize,
}

impl Default for QueueLimits {
    fn default() -> Self {
        QueueLimits {
            depth: 256,
            bytes: 256 << 20,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// Queue at capacity; retry after the hinted backoff.
    Overloaded {
        /// Jobs queued (including reservations) at shed time.
        queued: usize,
        /// Suggested client backoff before resubmitting.
        retry_after_ms: u64,
    },
    /// The queue is stopping; no new work is accepted.
    Stopped,
}

struct State {
    jobs: VecDeque<Job>,
    /// Slots claimed by [`JobQueue::reserve`] but not yet committed.
    reserved: usize,
    reserved_bytes: usize,
    queued_bytes: usize,
    stopped: bool,
    /// EMA of per-job service time, feeding the retry hint.
    avg_job_ms: f64,
    jobs_timed: u64,
}

/// The shared bounded FIFO. Cheap to clone.
#[derive(Clone)]
pub struct JobQueue {
    state: Arc<(Mutex<State>, Condvar)>,
    limits: QueueLimits,
    workers: usize,
}

impl JobQueue {
    /// Create an empty queue with default limits and a single worker
    /// assumed for the retry hint.
    pub fn new() -> JobQueue {
        JobQueue::bounded(QueueLimits::default(), 1)
    }

    /// Create an empty queue bounded by `limits`; `workers` scales the
    /// shed-time retry hint (more workers drain the queue faster).
    pub fn bounded(limits: QueueLimits, workers: usize) -> JobQueue {
        JobQueue {
            state: Arc::new((
                Mutex::new(State {
                    jobs: VecDeque::new(),
                    reserved: 0,
                    reserved_bytes: 0,
                    queued_bytes: 0,
                    stopped: false,
                    avg_job_ms: 0.0,
                    jobs_timed: 0,
                }),
                Condvar::new(),
            )),
            limits: QueueLimits {
                depth: limits.depth.max(1),
                bytes: limits.bytes.max(1),
            },
            workers: workers.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn hint_ms(&self, st: &State) -> u64 {
        // Roughly one drain interval: jobs ahead of the retry divided
        // across the pool, one service time each. Falls back to a
        // pessimistic constant before any job has been timed.
        let per_job = if st.jobs_timed == 0 {
            500.0
        } else {
            st.avg_job_ms
        };
        let ahead = st.jobs.len() + st.reserved;
        let ms = (ahead / self.workers + 1) as f64 * per_job;
        (ms as u64).clamp(25, 30_000)
    }

    /// Phase 1 of admission: claim a slot for a job of `est_bytes`.
    /// Follow with [`JobQueue::commit`] (after journaling + ack) or
    /// [`JobQueue::release`] (on journal failure).
    ///
    /// # Errors
    ///
    /// [`AdmitError::Overloaded`] past either bound (with the backoff
    /// hint), [`AdmitError::Stopped`] once stopping.
    pub fn reserve(&self, est_bytes: usize) -> Result<(), AdmitError> {
        let mut st = self.lock();
        if st.stopped {
            return Err(AdmitError::Stopped);
        }
        let queued = st.jobs.len() + st.reserved;
        let bytes = st.queued_bytes + st.reserved_bytes;
        if queued >= self.limits.depth || bytes.saturating_add(est_bytes) > self.limits.bytes {
            let retry_after_ms = self.hint_ms(&st);
            return Err(AdmitError::Overloaded {
                queued,
                retry_after_ms,
            });
        }
        st.reserved += 1;
        st.reserved_bytes += est_bytes;
        Ok(())
    }

    /// Abandon a reservation (journal write failed; the job is shed).
    pub fn release(&self, est_bytes: usize) {
        let mut st = self.lock();
        st.reserved = st.reserved.saturating_sub(1);
        st.reserved_bytes = st.reserved_bytes.saturating_sub(est_bytes);
    }

    /// Phase 2 of admission: enqueue a reserved job. Returns the number
    /// of jobs ahead of it (0 = next to run). If the queue stopped
    /// between reserve and commit, the job is returned so the caller can
    /// fail it with a typed error.
    #[allow(clippy::result_large_err)] // Err hands the whole job back for a typed failure
    pub fn commit(&self, job: Job) -> Result<usize, Job> {
        let mut st = self.lock();
        st.reserved = st.reserved.saturating_sub(1);
        st.reserved_bytes = st.reserved_bytes.saturating_sub(job.est_bytes);
        if st.stopped {
            return Err(job);
        }
        let position = st.jobs.len();
        st.queued_bytes += job.est_bytes;
        st.jobs.push_back(job);
        drop(st);
        self.state.1.notify_one();
        Ok(position)
    }

    /// Enqueue bypassing admission — journal-replay resume only, where
    /// the job was already acknowledged in a previous daemon life and
    /// *must* run regardless of current pressure.
    pub fn force_push(&self, job: Job) -> bool {
        let mut st = self.lock();
        if st.stopped {
            return false;
        }
        st.queued_bytes += job.est_bytes;
        st.jobs.push_back(job);
        drop(st);
        self.state.1.notify_one();
        true
    }

    /// Block until a job is available; `None` once stopped and drained.
    /// Remaining queued jobs get a fresh `queued` position event so
    /// waiting clients watch themselves advance.
    pub fn pop(&self) -> Option<Job> {
        let mut st = self.lock();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                st.queued_bytes = st.queued_bytes.saturating_sub(job.est_bytes);
                let updates: Vec<(Sender<String>, String)> = st
                    .jobs
                    .iter()
                    .enumerate()
                    .map(|(i, j)| (j.reply.clone(), crate::proto::queued_event(j.id, i)))
                    .collect();
                drop(st);
                for (tx, event) in updates {
                    let _ = tx.send(event);
                }
                return Some(job);
            }
            if st.stopped {
                return None;
            }
            st = self.state.1.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Remove a still-queued job by id (cancellation). `None` if it
    /// already started or never existed.
    pub fn remove(&self, id: u64) -> Option<Job> {
        let mut st = self.lock();
        let i = st.jobs.iter().position(|j| j.id == id)?;
        let job = st.jobs.remove(i)?;
        st.queued_bytes = st.queued_bytes.saturating_sub(job.est_bytes);
        Some(job)
    }

    /// Record one finished job's wall-clock service time; feeds the
    /// `retry_after_ms` hint via an exponential moving average.
    pub fn note_job_ms(&self, ms: f64) {
        let mut st = self.lock();
        st.avg_job_ms = if st.jobs_timed == 0 {
            ms
        } else {
            0.8 * st.avg_job_ms + 0.2 * ms
        };
        st.jobs_timed += 1;
    }

    /// Jobs currently waiting (excludes jobs already on a worker).
    pub fn depth(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Estimated bytes currently parked in the queue.
    pub fn queued_bytes(&self) -> usize {
        self.lock().queued_bytes
    }

    /// Stop in **drain** mode: queued jobs still pop, new admissions are
    /// refused, and blocked workers wake with `None` once the FIFO
    /// empties.
    pub fn stop(&self) {
        self.lock().stopped = true;
        self.state.1.notify_all();
    }

    /// Stop in **now** mode: refuse new admissions and hand every
    /// still-queued job back to the caller (which leaves them journaled
    /// as pending, so the next daemon life resumes them). Running jobs
    /// are unaffected.
    pub fn stop_discard(&self) -> Vec<Job> {
        let mut st = self.lock();
        st.stopped = true;
        st.queued_bytes = 0;
        let jobs = std::mem::take(&mut st.jobs).into();
        drop(st);
        self.state.1.notify_all();
        jobs
    }
}

impl Default for JobQueue {
    fn default() -> Self {
        JobQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn job(id: u64, est_bytes: usize) -> (Job, std::sync::mpsc::Receiver<String>) {
        let (tx, rx) = channel();
        (
            Job {
                id,
                name: format!("j{id}"),
                netlist: Netlist::new("t"),
                cfg: FlowConfig::default(),
                return_netlist: false,
                est_bytes,
                deadline_ms: None,
                reply: tx,
            },
            rx,
        )
    }

    fn admit(q: &JobQueue, id: u64, est: usize) -> Result<usize, AdmitError> {
        q.reserve(est)?;
        let (j, rx) = job(id, est);
        std::mem::forget(rx); // keep the channel open for position events
        q.commit(j).map_err(|_| AdmitError::Stopped)
    }

    #[test]
    fn sheds_past_depth_with_retry_hint() {
        let q = JobQueue::bounded(
            QueueLimits {
                depth: 2,
                bytes: usize::MAX,
            },
            1,
        );
        assert_eq!(admit(&q, 1, 10), Ok(0));
        assert_eq!(admit(&q, 2, 10), Ok(1));
        match admit(&q, 3, 10) {
            Err(AdmitError::Overloaded {
                queued,
                retry_after_ms,
            }) => {
                assert_eq!(queued, 2);
                assert!((25..=30_000).contains(&retry_after_ms));
            }
            other => panic!("expected shed, got {other:?}"),
        }
        // Draining one makes room again.
        assert!(q.pop().is_some());
        assert_eq!(admit(&q, 3, 10), Ok(1));
    }

    #[test]
    fn sheds_past_byte_budget_and_releases_on_failure() {
        let q = JobQueue::bounded(
            QueueLimits {
                depth: 64,
                bytes: 100,
            },
            1,
        );
        assert_eq!(admit(&q, 1, 60), Ok(0));
        assert!(matches!(q.reserve(60), Err(AdmitError::Overloaded { .. })));
        // A reservation that is released frees its bytes.
        assert!(q.reserve(30).is_ok());
        q.release(30);
        assert!(q.reserve(40).is_ok());
        q.release(40);
        assert_eq!(q.queued_bytes(), 60);
    }

    #[test]
    fn remove_cancels_only_queued_jobs() {
        let q = JobQueue::new();
        assert_eq!(admit(&q, 1, 5), Ok(0));
        assert_eq!(admit(&q, 2, 7), Ok(1));
        let removed = q.remove(2).expect("queued job removable");
        assert_eq!(removed.id, 2);
        assert!(q.remove(2).is_none(), "already gone");
        assert!(q.remove(99).is_none(), "never existed");
        assert_eq!(q.depth(), 1);
        assert_eq!(q.queued_bytes(), 5);
    }

    #[test]
    fn stop_discard_hands_back_queued_jobs() {
        let q = JobQueue::new();
        assert_eq!(admit(&q, 1, 5), Ok(0));
        assert_eq!(admit(&q, 2, 5), Ok(1));
        let orphans = q.stop_discard();
        assert_eq!(orphans.iter().map(|j| j.id).collect::<Vec<_>>(), vec![1, 2]);
        assert!(q.pop().is_none(), "stopped and empty");
        assert!(matches!(q.reserve(1), Err(AdmitError::Stopped)));
    }

    #[test]
    fn pop_streams_position_updates_to_waiting_jobs() {
        let q = JobQueue::new();
        let (j1, _rx1) = job(1, 1);
        let (j2, rx2) = job(2, 1);
        let (j3, rx3) = job(3, 1);
        for j in [j1, j2, j3] {
            assert!(q.reserve(1).is_ok());
            assert!(q.commit(j).is_ok());
        }
        let popped = q.pop().expect("job 1");
        assert_eq!(popped.id, 1);
        let e2 = rx2.try_recv().expect("job 2 got a position update");
        let e3 = rx3.try_recv().expect("job 3 got a position update");
        assert!(e2.contains("\"position\": 0"), "{e2}");
        assert!(e3.contains("\"position\": 1"), "{e3}");
    }

    #[test]
    fn queue_survives_a_poisoned_lock() {
        let q = JobQueue::new();
        assert_eq!(admit(&q, 1, 5), Ok(0));
        // Poison the inner mutex: panic while holding the guard.
        let q2 = q.clone();
        let _ = std::thread::spawn(move || {
            let _guard = q2.state.0.lock().expect("clean lock");
            panic!("deliberate poison");
        })
        .join();
        assert!(q.state.0.lock().is_err(), "precondition: lock poisoned");
        // Every path still serves.
        assert_eq!(admit(&q, 2, 5), Ok(1));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop().map(|j| j.id), Some(1));
        assert_eq!(q.remove(2).map(|j| j.id), Some(2));
        q.stop();
        assert!(q.pop().is_none());
    }
}
