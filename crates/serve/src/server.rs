//! The TCP daemon: accept loop, per-connection reader/writer threads,
//! and the runner pool draining the [`JobQueue`].
//!
//! Threading model:
//!
//! - one **accept** thread polls the listener until [`Server::stop`];
//! - each connection gets a **reader** thread (parses request frames,
//!   answers control requests inline, enqueues submit jobs) and a
//!   **writer** thread draining an `mpsc` channel of serialized event
//!   frames — so runners stream progress to a client without ever
//!   touching its socket directly, and interleaved jobs from one
//!   connection cannot tear each other's frames;
//! - `workers` **runner** threads pop jobs and run the conversion
//!   engine. Each flow run internally fans its three variant
//!   evaluations onto the shared [`triphase_par`] work-stealing pool,
//!   so a large batch shards across every core even when `workers` is
//!   small, and a single job still parallelizes on an idle server.
//!
//! Runner panics are contained per job: the panic is caught, reported
//! as a typed `done` event (`code: "panic"`), and the runner moves on.
//! Because memo-hit stages are recorded *before* a stage's fault site
//! fires, a job killed mid-flow can be resubmitted and will replay the
//! completed prefix from the stage cache, resuming from where it died.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use triphase_netlist::snapshot;

use crate::engine::{Engine, StageProv};
use crate::frame::{read_frame, write_frame, FrameError, MAX_FRAME_DEFAULT};
use crate::json::Json;
use crate::proto::{self, ProtoError, Request};
use crate::queue::{Job, JobQueue};

/// Daemon configuration.
pub struct ServerOptions {
    /// Bind address; port 0 picks an ephemeral port (see [`Server::addr`]).
    pub addr: String,
    /// Runner threads; 0 means [`triphase_par::default_threads`].
    pub workers: usize,
    /// Per-frame payload cap in bytes.
    pub max_frame: usize,
    /// Memo-store capacity per cache tier.
    pub memo_capacity: usize,
    /// Fault-injection plan forced into every job (test-only).
    pub fault: Option<triphase_fault::SharedInjector>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            max_frame: MAX_FRAME_DEFAULT,
            memo_capacity: 4096,
            fault: None,
        }
    }
}

struct Ctx {
    queue: JobQueue,
    engine: Engine,
    stop: AtomicBool,
    next_id: AtomicU64,
    jobs_done: AtomicU64,
    workers: usize,
    max_frame: usize,
}

/// A running daemon. Dropping the handle does not stop the server;
/// call [`Server::stop`] then [`Server::wait`].
pub struct Server {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept thread and the runner pool, and return.
    ///
    /// # Errors
    ///
    /// Bind/listen failures.
    pub fn start(opts: ServerOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = if opts.workers == 0 {
            triphase_par::default_threads()
        } else {
            opts.workers
        };
        let mut engine = Engine::new(opts.memo_capacity);
        if let Some(fault) = opts.fault {
            engine = engine.with_fault(fault);
        }
        let ctx = Arc::new(Ctx {
            queue: JobQueue::new(),
            engine,
            stop: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            jobs_done: AtomicU64::new(0),
            workers,
            max_frame: opts.max_frame,
        });
        let mut handles = Vec::with_capacity(workers + 1);
        for _ in 0..workers {
            let ctx = Arc::clone(&ctx);
            handles.push(thread::spawn(move || runner_loop(&ctx)));
        }
        {
            let ctx = Arc::clone(&ctx);
            handles.push(thread::spawn(move || accept_loop(&listener, &ctx)));
        }
        Ok(Server { addr, ctx, handles })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared memo-store counters: (stage tier, report tier).
    pub fn memo_stats(&self) -> (crate::memo::TierStats, crate::memo::TierStats) {
        self.ctx.engine.memo().stats()
    }

    /// Signal shutdown: the accept loop exits, queued jobs drain, and
    /// runners stop once the queue empties.
    pub fn stop(&self) {
        self.ctx.stop.store(true, Ordering::SeqCst);
        self.ctx.queue.stop();
    }

    /// Join the accept thread and the runner pool, returning the final
    /// cache counters. Connection threads are not joined — they exit
    /// when their client disconnects.
    pub fn wait(self) -> (crate::memo::TierStats, crate::memo::TierStats) {
        for h in self.handles {
            let _ = h.join();
        }
        self.ctx.engine.memo().stats()
    }
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<Ctx>) {
    while !ctx.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let ctx = Arc::clone(ctx);
                thread::spawn(move || connection(stream, &ctx));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn send_json(tx: &Sender<String>, v: &Json) {
    // A closed receiver means the client went away; drop silently.
    let _ = tx.send(v.to_pretty());
}

fn connection(stream: TcpStream, ctx: &Arc<Ctx>) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = channel::<String>();
    let writer = thread::spawn(move || {
        let mut w = std::io::BufWriter::new(write_half);
        for frame in rx {
            if write_frame(&mut w, &frame).is_err() {
                break;
            }
        }
    });
    reader_loop(stream, ctx, &tx);
    drop(tx);
    let _ = writer.join();
}

fn reader_loop(mut stream: TcpStream, ctx: &Arc<Ctx>, tx: &Sender<String>) {
    loop {
        let text = match read_frame(&mut stream, ctx.max_frame) {
            Ok(text) => text,
            Err(FrameError::TooLarge { len, max }) => {
                // The oversized payload is still in flight: answer, then
                // close — the stream can no longer be framed.
                let e = ProtoError {
                    code: "frame_too_large",
                    message: format!("frame of {len} bytes exceeds the {max}-byte cap"),
                };
                send_json(tx, &e.event());
                return;
            }
            Err(FrameError::Utf8(e)) => {
                // Payload fully consumed, stream still frame-aligned.
                let e = ProtoError {
                    code: "bad_frame",
                    message: format!("frame is not UTF-8: {e}"),
                };
                send_json(tx, &e.event());
                continue;
            }
            Err(_) => return,
        };
        match proto::parse_request(&text) {
            Ok(Request::Submit(jobs)) => {
                let ids: Vec<u64> = jobs
                    .iter()
                    .map(|_| ctx.next_id.fetch_add(1, Ordering::SeqCst))
                    .collect();
                send_json(tx, &proto::ack_event(&ids));
                for (id, j) in ids.into_iter().zip(jobs) {
                    let queued = ctx.queue.push(Job {
                        id,
                        name: j.name.clone(),
                        netlist: j.netlist,
                        cfg: j.cfg,
                        return_netlist: j.return_netlist,
                        reply: tx.clone(),
                    });
                    if !queued {
                        send_json(
                            tx,
                            &proto::done_err(id, &j.name, "shutdown", "server is stopping"),
                        );
                    }
                }
            }
            Ok(Request::Status) => {
                let (stage, report) = ctx.engine.memo().stats();
                send_json(
                    tx,
                    &proto::status_event(
                        ctx.queue.depth(),
                        ctx.workers,
                        ctx.jobs_done.load(Ordering::SeqCst),
                        stage,
                        report,
                    ),
                );
            }
            Ok(Request::Ping) => send_json(tx, &proto::pong_event()),
            Ok(Request::Shutdown) => {
                send_json(tx, &proto::bye_event());
                ctx.stop.store(true, Ordering::SeqCst);
                ctx.queue.stop();
                return;
            }
            Err(e) => send_json(tx, &e.event()),
        }
    }
}

fn runner_loop(ctx: &Arc<Ctx>) {
    while let Some(job) = ctx.queue.pop() {
        run_job(ctx, &job);
        ctx.jobs_done.fetch_add(1, Ordering::SeqCst);
    }
}

fn run_job(ctx: &Arc<Ctx>, job: &Job) {
    let mut prov: Vec<StageProv> = Vec::new();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut emit = |p: &StageProv| {
            prov.push(p.clone());
            send_json(
                &job.reply,
                &proto::stage_event(job.id, p.stage, p.key, p.hit, p.millis),
            );
        };
        ctx.engine.run(&job.netlist, &job.cfg, &mut emit)
    }));
    let done = match result {
        Ok(Ok(report)) => {
            let text = job
                .return_netlist
                .then(|| snapshot::to_text(&report.three_phase.netlist));
            proto::done_ok(job.id, &job.name, &report, &prov, text.as_deref())
        }
        Ok(Err(e)) => proto::done_err(job.id, &job.name, proto::error_code(&e), &e.to_string()),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "worker panicked".into());
            proto::done_err(job.id, &job.name, "panic", &msg)
        }
    };
    send_json(&job.reply, &done);
}
