//! The TCP daemon: accept loop, per-connection reader/writer threads,
//! and the runner pool draining the [`JobQueue`].
//!
//! Threading model:
//!
//! - one **accept** thread polls the listener until [`Server::stop`];
//! - each connection gets a **reader** thread (parses request frames,
//!   answers control requests inline, admits submit jobs) and a
//!   **writer** thread draining an `mpsc` channel of serialized event
//!   frames — so runners stream progress to a client without ever
//!   touching its socket directly, and interleaved jobs from one
//!   connection cannot tear each other's frames;
//! - `workers` **runner** threads pop jobs and run the conversion
//!   engine. Each flow run internally fans its three variant
//!   evaluations onto the shared [`triphase_par`] work-stealing pool,
//!   so a large batch shards across every core even when `workers` is
//!   small, and a single job still parallelizes on an idle server.
//!
//! Resilience model (the PR-10 hardening):
//!
//! - **Admission**: submits pass through the bounded queue's two-phase
//!   `reserve`/`commit`. The durability invariant is *reserve → journal
//!   the accept (fsync) → ack → commit*: an acknowledged job is always
//!   on disk before the client hears about it, so a SIGKILL at any
//!   instant loses nothing that was acknowledged. Shed jobs get a typed
//!   `overloaded` done with a `retry_after_ms` hint.
//! - **Recovery**: with a journal configured, startup replays it —
//!   stage records re-seed the memo store, and accepted-but-unfinished
//!   jobs are re-enqueued (bypassing admission: they were already
//!   admitted in a previous life) and run to a journaled terminal state.
//! - **Cancellation**: `cancel` removes a queued job outright or fires
//!   the running job's [`CancelToken`]; the engine aborts at the next
//!   stage boundary, keeping every banked stage.
//! - **Drain**: `shutdown` defaults to drain mode (finish queued and
//!   running jobs, then exit); `mode: "now"` re-journals queued jobs as
//!   pending for the next daemon life and exits after running jobs
//!   finish.
//!
//! Runner panics are contained per job: the panic is caught, reported
//! as a typed `done` event (`code: "panic"`), and the runner moves on.
//! Because memo-hit stages are recorded *before* a stage's fault site
//! fires, a job killed mid-flow can be resubmitted and will replay the
//! completed prefix from the stage cache, resuming from where it died —
//! and with the journal, that replay survives a full daemon restart.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use triphase_netlist::snapshot;

use crate::engine::{CancelToken, CancelUnwind, Engine, StageProv};
use crate::frame::{read_frame, write_frame, FrameError, MAX_FRAME_DEFAULT};
use crate::journal::{AcceptRecord, Journal};
use crate::json::Json;
use crate::memo::MemoStore;
use crate::proto::{self, ProtoError, Request};
use crate::queue::{AdmitError, Job, JobQueue, QueueLimits};

/// Daemon configuration.
pub struct ServerOptions {
    /// Bind address; port 0 picks an ephemeral port (see [`Server::addr`]).
    pub addr: String,
    /// Runner threads; 0 means [`triphase_par::default_threads`].
    pub workers: usize,
    /// Per-frame payload cap in bytes.
    pub max_frame: usize,
    /// Memo-store capacity per cache tier (entries).
    pub memo_capacity: usize,
    /// Memo-store byte budget per cache tier.
    pub memo_bytes: usize,
    /// Admission bound: maximum queued jobs.
    pub queue_depth: usize,
    /// Admission bound: maximum estimated queued bytes.
    pub queue_bytes: usize,
    /// Durable job journal path. `None` runs memory-only (no recovery).
    pub journal: Option<PathBuf>,
    /// Fault-injection plan forced into every job (test-only).
    pub fault: Option<triphase_fault::SharedInjector>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            max_frame: MAX_FRAME_DEFAULT,
            memo_capacity: 4096,
            memo_bytes: 512 << 20,
            queue_depth: 256,
            queue_bytes: 256 << 20,
            journal: None,
            fault: None,
        }
    }
}

struct Ctx {
    queue: JobQueue,
    engine: Engine,
    journal: Option<Arc<Journal>>,
    /// Cancellation tokens for every admitted-but-unfinished job.
    tokens: Mutex<HashMap<u64, CancelToken>>,
    stop: AtomicBool,
    next_id: AtomicU64,
    jobs_done: AtomicU64,
    workers: usize,
    max_frame: usize,
}

impl Ctx {
    fn tokens(&self) -> std::sync::MutexGuard<'_, HashMap<u64, CancelToken>> {
        self.tokens.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn journal_done(&self, id: u64, code: &str) {
        if let Some(j) = &self.journal {
            let _ = j.append_done(id, code);
        }
    }
}

/// A running daemon. Dropping the handle does not stop the server;
/// call [`Server::stop`] then [`Server::wait`].
pub struct Server {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    handles: Vec<thread::JoinHandle<()>>,
    /// Jobs recovered from the journal at startup (for observability).
    resumed: usize,
}

impl Server {
    /// Bind, replay the journal (when configured), spawn the accept
    /// thread and the runner pool, and return.
    ///
    /// # Errors
    ///
    /// Bind/listen failures, or journal open/replay I/O failures.
    pub fn start(opts: ServerOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = if opts.workers == 0 {
            triphase_par::default_threads()
        } else {
            opts.workers
        };
        let memo = MemoStore::bounded(opts.memo_capacity, opts.memo_bytes);
        let mut journal = None;
        let mut pending = Vec::new();
        let mut next_id = 1;
        if let Some(path) = &opts.journal {
            let (j, replay) = Journal::open_replay(path)?;
            for (key, data) in replay.stages {
                memo.seed_stage(key, data);
            }
            next_id = replay.next_id;
            pending = replay.pending;
            journal = Some(Arc::new(j));
        }
        let mut engine = Engine::with_memo(memo);
        if let Some(j) = &journal {
            engine = engine.with_journal(Arc::clone(j));
        }
        if let Some(fault) = opts.fault {
            engine = engine.with_fault(fault);
        }
        let ctx = Arc::new(Ctx {
            queue: JobQueue::bounded(
                QueueLimits {
                    depth: opts.queue_depth,
                    bytes: opts.queue_bytes,
                },
                workers,
            ),
            engine,
            journal,
            tokens: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
            next_id: AtomicU64::new(next_id),
            jobs_done: AtomicU64::new(0),
            workers,
            max_frame: opts.max_frame,
        });
        // Re-enqueue recovered jobs before any worker or connection
        // exists: they were acknowledged in a previous daemon life and
        // must reach a terminal state in this one. Their submitter is
        // gone, so events go to a closed channel (dropped silently); the
        // terminal state still lands in the journal, and the report in
        // the cache — a reconnecting client's resubmit is a cache hit.
        let resumed = resume_pending(&ctx, pending);
        let mut handles = Vec::with_capacity(workers + 1);
        for _ in 0..workers {
            let ctx = Arc::clone(&ctx);
            handles.push(thread::spawn(move || runner_loop(&ctx)));
        }
        {
            let ctx = Arc::clone(&ctx);
            handles.push(thread::spawn(move || accept_loop(&listener, &ctx)));
        }
        Ok(Server {
            addr,
            ctx,
            handles,
            resumed,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Jobs recovered from the journal and re-enqueued at startup.
    pub fn resumed_jobs(&self) -> usize {
        self.resumed
    }

    /// Shared memo-store counters: (stage tier, report tier).
    pub fn memo_stats(&self) -> (crate::memo::TierStats, crate::memo::TierStats) {
        self.ctx.engine.memo().stats()
    }

    /// Signal drain shutdown: the accept loop exits, queued jobs drain,
    /// and runners stop once the queue empties.
    pub fn stop(&self) {
        self.ctx.stop.store(true, Ordering::SeqCst);
        self.ctx.queue.stop();
    }

    /// Join the accept thread and the runner pool, returning the final
    /// cache counters. Connection threads are not joined — they exit
    /// when their client disconnects.
    pub fn wait(self) -> (crate::memo::TierStats, crate::memo::TierStats) {
        for h in self.handles {
            let _ = h.join();
        }
        self.ctx.engine.memo().stats()
    }
}

/// Rebuild [`Job`]s from replayed accept records and force them onto
/// the queue (admission was already granted in a previous daemon life).
/// Returns how many were resumed; unparseable records are journaled as
/// terminally failed so they are not replayed forever.
fn resume_pending(ctx: &Arc<Ctx>, pending: Vec<AcceptRecord>) -> usize {
    let mut resumed = 0;
    for rec in pending {
        let netlist = match snapshot::from_text(&rec.netlist_text) {
            Ok(nl) => nl,
            Err(_) => {
                ctx.journal_done(rec.id, "bad_netlist");
                continue;
            }
        };
        let cfg = match proto::parse_config(&rec.config) {
            Ok(cfg) => cfg,
            Err(_) => {
                ctx.journal_done(rec.id, "bad_config");
                continue;
            }
        };
        // Re-fold the deadline into the ILP budget exactly as
        // `parse_submit` did: `config_json` round-trips every wire-
        // settable field, and the deadline (not wire-settable) is the
        // only other `time_limit` source — so the rebuilt config is
        // fingerprint-identical and the journaled stages hit.
        let mut cfg = cfg;
        if let Some(ms) = rec.deadline_ms {
            let budget = Duration::from_millis(ms);
            cfg.phase_cfg.time_limit = Some(match cfg.phase_cfg.time_limit {
                Some(existing) => existing.min(budget),
                None => budget,
            });
        }
        let est_bytes = rec.netlist_text.len();
        // The submitter's connection died with the previous daemon: a
        // pre-closed channel swallows the job's events.
        let (reply, _) = channel::<String>();
        ctx.tokens()
            .insert(rec.id, CancelToken::new(rec.deadline_ms));
        if ctx.queue.force_push(Job {
            id: rec.id,
            name: rec.name,
            netlist,
            cfg,
            return_netlist: rec.return_netlist,
            est_bytes,
            deadline_ms: rec.deadline_ms,
            reply,
        }) {
            resumed += 1;
        }
    }
    resumed
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<Ctx>) {
    while !ctx.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let ctx = Arc::clone(ctx);
                thread::spawn(move || connection(stream, &ctx));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn send_json(tx: &Sender<String>, v: &Json) {
    // A closed receiver means the client went away; drop silently.
    let _ = tx.send(v.to_pretty());
}

fn connection(stream: TcpStream, ctx: &Arc<Ctx>) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = channel::<String>();
    let writer = thread::spawn(move || {
        let mut w = std::io::BufWriter::new(write_half);
        for frame in rx {
            if write_frame(&mut w, &frame).is_err() {
                break;
            }
        }
    });
    reader_loop(stream, ctx, &tx);
    drop(tx);
    let _ = writer.join();
}

/// Outcome of the pre-ack half of admitting one job of a submit batch.
enum Admitted {
    /// Reserved and journaled; committed to the queue after the ack.
    Reserved,
    /// Shed: queue depth and retry hint for the `overloaded` done.
    Shed { queued: usize, retry_after_ms: u64 },
    /// The server is stopping.
    Stopped,
    /// The accept record could not be made durable.
    JournalFailed(String),
}

/// The pre-ack half of admission: reserve → journal (fsync) → token.
/// The caller sends the ack and only then commits — so no worker can
/// emit events for a job before its ack frame is on the wire, while
/// durability is already settled when the client hears the id.
fn admit(ctx: &Arc<Ctx>, id: u64, j: &proto::JobRequest) -> Admitted {
    match ctx.queue.reserve(j.est_bytes) {
        Err(AdmitError::Overloaded {
            queued,
            retry_after_ms,
        }) => {
            return Admitted::Shed {
                queued,
                retry_after_ms,
            }
        }
        Err(AdmitError::Stopped) => return Admitted::Stopped,
        Ok(()) => {}
    }
    if let Some(journal) = &ctx.journal {
        let rec = AcceptRecord {
            id,
            name: j.name.clone(),
            netlist_text: snapshot::to_text(&j.netlist),
            config: proto::config_json(&j.cfg),
            return_netlist: j.return_netlist,
            deadline_ms: j.deadline_ms,
        };
        if let Err(e) = journal.append_accept(&rec) {
            ctx.queue.release(j.est_bytes);
            return Admitted::JournalFailed(e.to_string());
        }
    }
    ctx.tokens().insert(id, CancelToken::new(j.deadline_ms));
    Admitted::Reserved
}

/// The post-ack half: commit the reserved job to the queue.
fn commit(ctx: &Arc<Ctx>, id: u64, j: proto::JobRequest, tx: &Sender<String>) -> Option<usize> {
    match ctx.queue.commit(Job {
        id,
        name: j.name,
        netlist: j.netlist,
        cfg: j.cfg,
        return_netlist: j.return_netlist,
        est_bytes: j.est_bytes,
        deadline_ms: j.deadline_ms,
        reply: tx.clone(),
    }) {
        Ok(position) => Some(position),
        Err(_) => {
            ctx.tokens().remove(&id);
            ctx.journal_done(id, "shutdown");
            None
        }
    }
}

fn reader_loop(mut stream: TcpStream, ctx: &Arc<Ctx>, tx: &Sender<String>) {
    loop {
        let text = match read_frame(&mut stream, ctx.max_frame) {
            Ok(text) => text,
            Err(FrameError::TooLarge { len, max }) => {
                // The oversized payload is still in flight: answer, then
                // close — the stream can no longer be framed.
                let e = ProtoError {
                    code: "frame_too_large",
                    message: format!("frame of {len} bytes exceeds the {max}-byte cap"),
                };
                send_json(tx, &e.event());
                return;
            }
            Err(FrameError::Utf8(e)) => {
                // Payload fully consumed, stream still frame-aligned.
                let e = ProtoError {
                    code: "bad_frame",
                    message: format!("frame is not UTF-8: {e}"),
                };
                send_json(tx, &e.event());
                continue;
            }
            Err(_) => return,
        };
        match proto::parse_request(&text) {
            Ok(Request::Submit(jobs)) => {
                let ids: Vec<u64> = jobs
                    .iter()
                    .map(|_| ctx.next_id.fetch_add(1, Ordering::SeqCst))
                    .collect();
                // Admit (reserve + journal) every job *before* the ack:
                // once the client sees an id without a following
                // `overloaded`/`shutdown` done, the job is durable. Jobs
                // become runnable (commit) only *after* the ack, so the
                // ack is always the submit's first event on the wire.
                let outcomes: Vec<Admitted> = ids
                    .iter()
                    .zip(&jobs)
                    .map(|(&id, j)| admit(ctx, id, j))
                    .collect();
                send_json(tx, &proto::ack_event(&ids));
                for ((id, j), outcome) in ids.iter().zip(jobs).zip(outcomes) {
                    match outcome {
                        Admitted::Reserved => {
                            let name = j.name.clone();
                            match commit(ctx, *id, j, tx) {
                                Some(position) => {
                                    let _ = tx.send(proto::queued_event(*id, position));
                                }
                                None => send_json(
                                    tx,
                                    &proto::done_err(*id, &name, "shutdown", "server is stopping"),
                                ),
                            }
                        }
                        Admitted::Shed {
                            queued,
                            retry_after_ms,
                        } => send_json(
                            tx,
                            &proto::done_overloaded(*id, &j.name, queued, retry_after_ms),
                        ),
                        Admitted::Stopped => send_json(
                            tx,
                            &proto::done_err(*id, &j.name, "shutdown", "server is stopping"),
                        ),
                        Admitted::JournalFailed(e) => send_json(
                            tx,
                            &proto::done_err(
                                *id,
                                &j.name,
                                "journal_failed",
                                &format!("could not journal the accept: {e}"),
                            ),
                        ),
                    }
                }
            }
            Ok(Request::Cancel { job }) => {
                if let Some(queued) = ctx.queue.remove(job) {
                    ctx.tokens().remove(&job);
                    ctx.journal_done(job, "cancelled");
                    send_json(tx, &proto::cancelled_event(job, "queued"));
                    send_json(
                        &queued.reply,
                        &proto::done_err(job, &queued.name, "cancelled", "cancelled while queued"),
                    );
                } else if let Some(token) = ctx.tokens().get(&job) {
                    token.cancel();
                    send_json(tx, &proto::cancelled_event(job, "running"));
                } else {
                    send_json(tx, &proto::cancelled_event(job, "unknown"));
                }
            }
            Ok(Request::Status) => {
                let (stage, report) = ctx.engine.memo().stats();
                send_json(
                    tx,
                    &proto::status_event(
                        ctx.queue.depth(),
                        ctx.queue.queued_bytes(),
                        ctx.workers,
                        ctx.jobs_done.load(Ordering::SeqCst),
                        stage,
                        report,
                    ),
                );
            }
            Ok(Request::Ping) => send_json(tx, &proto::pong_event()),
            Ok(Request::Shutdown { drain }) => {
                send_json(tx, &proto::bye_event(if drain { "drain" } else { "now" }));
                ctx.stop.store(true, Ordering::SeqCst);
                if drain {
                    ctx.queue.stop();
                } else {
                    // Queued jobs stay journaled as pending: the next
                    // daemon life resumes them. Tell their submitters.
                    for job in ctx.queue.stop_discard() {
                        ctx.tokens().remove(&job.id);
                        send_json(
                            &job.reply,
                            &proto::done_err(
                                job.id,
                                &job.name,
                                "shutdown",
                                "server stopping; job stays journaled and resumes on restart",
                            ),
                        );
                    }
                }
                return;
            }
            Err(e) => send_json(tx, &e.event()),
        }
    }
}

fn runner_loop(ctx: &Arc<Ctx>) {
    while let Some(job) = ctx.queue.pop() {
        run_job(ctx, &job);
        ctx.jobs_done.fetch_add(1, Ordering::SeqCst);
    }
}

fn run_job(ctx: &Arc<Ctx>, job: &Job) {
    let started = Instant::now();
    let token = ctx.tokens().get(&job.id).cloned();
    let mut prov: Vec<StageProv> = Vec::new();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut emit = |p: &StageProv| {
            prov.push(p.clone());
            send_json(
                &job.reply,
                &proto::stage_event(job.id, p.stage, p.key, p.hit, p.millis, p.evictions),
            );
        };
        ctx.engine
            .run(&job.netlist, &job.cfg, token.as_ref(), &mut emit)
    }));
    let (done, code) = match result {
        Ok(Ok(report)) => {
            let text = job
                .return_netlist
                .then(|| snapshot::to_text(&report.three_phase.netlist));
            (
                proto::done_ok(job.id, &job.name, &report, &prov, text.as_deref()),
                "ok",
            )
        }
        Ok(Err(e)) => {
            let code = proto::error_code(&e);
            (
                proto::done_err(job.id, &job.name, code, &e.to_string()),
                code,
            )
        }
        Err(payload) => match payload.downcast_ref::<CancelUnwind>() {
            Some(c) => (
                proto::done_err(
                    job.id,
                    &job.name,
                    c.reason,
                    &format!(
                        "aborted at a stage boundary; last banked stage: {}",
                        c.last_banked
                    ),
                ),
                c.reason,
            ),
            None => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "worker panicked".into());
                (proto::done_err(job.id, &job.name, "panic", &msg), "panic")
            }
        },
    };
    ctx.tokens().remove(&job.id);
    ctx.journal_done(job.id, code);
    ctx.queue.note_job_ms(started.elapsed().as_secs_f64() * 1e3);
    send_json(&job.reply, &done);
}
