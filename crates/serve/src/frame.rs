//! Length-framed wire format: every message is a 4-byte big-endian
//! payload length followed by that many bytes of UTF-8 JSON.
//!
//! Framing errors are typed so the server can distinguish a cleanly
//! closed connection ([`FrameError::Closed`]) from a torn one
//! ([`FrameError::Truncated`]) and from an oversized frame it refuses to
//! buffer ([`FrameError::TooLarge`] — answered with a protocol error
//! before the connection closes). Nothing in this module panics on
//! malformed input.

use std::io::{ErrorKind, Read, Write};

/// Default per-frame payload cap (16 MiB): large enough for a
/// million-gate netlist snapshot, small enough that a hostile length
/// prefix cannot balloon server memory.
pub const MAX_FRAME_DEFAULT: usize = 16 * 1024 * 1024;

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport error.
    Io(std::io::Error),
    /// The peer closed the connection at a frame boundary (normal EOF).
    Closed,
    /// The connection died mid-frame: `got` of `expected` bytes arrived.
    Truncated {
        /// Bytes the frame header promised (or 4, for the header itself).
        expected: usize,
        /// Bytes actually received before EOF.
        got: usize,
    },
    /// The length prefix exceeds the configured cap.
    TooLarge {
        /// Announced payload length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The payload is not valid UTF-8.
    Utf8(std::string::FromUtf8Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated { expected, got } => {
                write!(f, "truncated frame: got {got} of {expected} bytes")
            }
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Utf8(e) => write!(f, "frame is not UTF-8: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Write one frame (length prefix + payload) and flush.
///
/// # Errors
///
/// [`FrameError::TooLarge`] when the payload exceeds `u32::MAX` bytes;
/// [`FrameError::Io`] on transport failure.
pub fn write_frame(w: &mut impl Write, payload: &str) -> Result<(), FrameError> {
    let Ok(len) = u32::try_from(payload.len()) else {
        return Err(FrameError::TooLarge {
            len: payload.len(),
            max: u32::MAX as usize,
        });
    };
    w.write_all(&len.to_be_bytes()).map_err(FrameError::Io)?;
    w.write_all(payload.as_bytes()).map_err(FrameError::Io)?;
    w.flush().map_err(FrameError::Io)
}

/// Read exactly `buf.len()` bytes, reporting clean EOF at offset 0 as
/// `Closed` and EOF anywhere later as `Truncated`.
fn read_exact_or(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    let expected = buf.len();
    let mut got = 0;
    while got < expected {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated { expected, got }
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Read one frame, enforcing the `max` payload cap before allocating.
///
/// # Errors
///
/// See [`FrameError`]; a `TooLarge` error leaves the unread payload in
/// the stream, so callers should close the connection after answering.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<String, FrameError> {
    let mut header = [0u8; 4];
    read_exact_or(r, &mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > max {
        return Err(FrameError::TooLarge { len, max });
    }
    let mut payload = vec![0u8; len];
    match read_exact_or(r, &mut payload) {
        Ok(()) => {}
        // EOF at payload offset 0 is still mid-frame: the header arrived.
        Err(FrameError::Closed) => {
            return Err(FrameError::Truncated {
                expected: len,
                got: 0,
            })
        }
        Err(e) => return Err(e),
    }
    String::from_utf8(payload).map_err(FrameError::Utf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn framed(payload: &str) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).expect("write");
        out
    }

    #[test]
    fn round_trip() {
        let bytes = framed("{\"kind\":\"status\"}");
        let mut cur = Cursor::new(bytes);
        assert_eq!(
            read_frame(&mut cur, MAX_FRAME_DEFAULT).expect("read"),
            "{\"kind\":\"status\"}"
        );
        // The stream is now at a frame boundary: clean EOF.
        assert!(matches!(
            read_frame(&mut cur, MAX_FRAME_DEFAULT),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn truncation_is_typed_at_every_cut() {
        let bytes = framed("hello frames");
        for cut in 1..bytes.len() {
            let mut cur = Cursor::new(bytes[..cut].to_vec());
            assert!(
                matches!(
                    read_frame(&mut cur, MAX_FRAME_DEFAULT),
                    Err(FrameError::Truncated { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_header_is_rejected_before_allocation() {
        let mut bytes = u32::MAX.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"x");
        let mut cur = Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cur, 1024),
            Err(FrameError::TooLarge { len, max: 1024 }) if len == u32::MAX as usize
        ));
    }

    #[test]
    fn non_utf8_payload_is_typed() {
        let mut bytes = 2u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let mut cur = Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cur, 1024),
            Err(FrameError::Utf8(_))
        ));
    }
}
