//! Durable job journal: the daemon's crash-consistency backbone.
//!
//! An append-only text file of checksummed records, fsync'd per append.
//! Three record kinds cover the service's durable state:
//!
//! - `accept` — a job the daemon admitted (written **before** the ack
//!   frame leaves the process, so an acknowledged job is always
//!   recoverable);
//! - `stage` — one stage-cache entry, in the exact
//!   [`triphase_core::stage_data_to_text`] encoding (written before the
//!   in-memory memo record, which itself precedes the stage's
//!   fault-injection site — the same ordering argument the checkpoint
//!   layer makes: artifacts become durable before anything can kill the
//!   job);
//! - `done` — a job reached a terminal state (success, typed error,
//!   cancellation) and must not be resumed.
//!
//! On startup the daemon replays the journal: `stage` records rebuild
//! the [`crate::memo::MemoStore`] stage tier, and `accept` records with
//! no matching `done` are re-enqueued, so a SIGKILL'd daemon resumes
//! every acknowledged job from its last banked stage. Replay then
//! **compacts**: a fresh journal is atomically written (temp file +
//! rename, the checkpoint idiom) containing the deduplicated stage
//! entries and the still-pending accepts, bounding growth across
//! restarts.
//!
//! Records are framed as a header line — `rec <kind> <len> <fnv1a64>` —
//! followed by exactly `len` payload bytes and a separator newline.
//! Replay is torture-tolerant by construction: a corrupted checksum
//! skips that record (the length prefix keeps framing), a truncated
//! tail stops replay at the last whole record, and duplicate records
//! are idempotent (accepts dedupe by id, stages by key, last wins).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use triphase_core::{stage_data_from_text, stage_data_to_text, StageData};
use triphase_fault::fnv1a64;

use crate::json::Json;

/// One admitted job, as journaled (and as recovered by replay).
#[derive(Debug, Clone)]
pub struct AcceptRecord {
    /// Server-assigned id.
    pub id: u64,
    /// Client-chosen display name.
    pub name: String,
    /// The design, in exact snapshot text.
    pub netlist_text: String,
    /// The flow configuration, in wire JSON ([`crate::proto::config_json`]).
    pub config: Json,
    /// Echo the final netlist in the `done` event.
    pub return_netlist: bool,
    /// Per-job deadline, if the submit carried one.
    pub deadline_ms: Option<u64>,
}

/// Everything a replay recovered from the journal.
#[derive(Default)]
pub struct Replay {
    /// Accepted jobs with no terminal `done` record, in accept order —
    /// the jobs a restarted daemon must resume.
    pub pending: Vec<AcceptRecord>,
    /// Stage-cache entries (deduplicated by key, last record wins), in
    /// first-seen order.
    pub stages: Vec<(u64, StageData)>,
    /// Records skipped for checksum or payload corruption.
    pub skipped: u64,
    /// Terminal records seen (for observability).
    pub done: u64,
    /// One past the highest job id seen (the restarted daemon's first
    /// fresh id).
    pub next_id: u64,
}

/// The append side of the journal. Clone-free; the server shares it via
/// `Arc`.
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => break,
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn push_block(out: &mut String, tag: &str, text: &str) {
    let body = if text.ends_with('\n') || text.is_empty() {
        text.to_owned()
    } else {
        format!("{text}\n")
    };
    out.push_str(&format!("{tag} {}\n", body.lines().count()));
    out.push_str(&body);
}

fn read_block<'a>(lines: &mut std::str::Lines<'a>, tag: &str) -> Option<String> {
    let header = lines.next()?;
    let n: usize = header.strip_prefix(tag)?.trim().parse().ok()?;
    let mut text = String::new();
    for _ in 0..n {
        text.push_str(lines.next()?);
        text.push('\n');
    }
    Some(text)
}

fn accept_payload(rec: &AcceptRecord) -> String {
    let mut s = String::new();
    s.push_str(&format!("job {}\n", rec.id));
    s.push_str(&format!("name {}\n", esc(&rec.name)));
    s.push_str(&format!(
        "return_netlist {}\n",
        u8::from(rec.return_netlist)
    ));
    match rec.deadline_ms {
        Some(ms) => s.push_str(&format!("deadline_ms {ms}\n")),
        None => s.push_str("deadline_ms none\n"),
    }
    push_block(&mut s, "config", &rec.config.to_pretty());
    push_block(&mut s, "netlist", &rec.netlist_text);
    s
}

fn parse_accept(payload: &str) -> Option<AcceptRecord> {
    let mut lines = payload.lines();
    let id: u64 = lines.next()?.strip_prefix("job ")?.parse().ok()?;
    let name = unesc(lines.next()?.strip_prefix("name ")?);
    let return_netlist = lines.next()?.strip_prefix("return_netlist ")? == "1";
    let deadline_ms = match lines.next()?.strip_prefix("deadline_ms ")? {
        "none" => None,
        ms => Some(ms.parse().ok()?),
    };
    let config = Json::parse(&read_block(&mut lines, "config")?).ok()?;
    let netlist_text = read_block(&mut lines, "netlist")?;
    Some(AcceptRecord {
        id,
        name,
        netlist_text,
        config,
        return_netlist,
        deadline_ms,
    })
}

fn record_text(kind: &str, payload: &str) -> String {
    format!(
        "rec {kind} {} {:016x}\n{payload}\n",
        payload.len(),
        fnv1a64(payload.as_bytes())
    )
}

impl Journal {
    /// Open (or create) the journal at `path` for appending. The parent
    /// directory is created if missing.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Journal> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal {
            file: Mutex::new(file),
            path,
        })
    }

    /// Replay then compact the journal at `path`, returning the opened
    /// journal (positioned after the compacted records) and everything
    /// the replay recovered.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures. A missing file is not an error —
    /// it replays as empty.
    pub fn open_replay(path: impl Into<PathBuf>) -> std::io::Result<(Journal, Replay)> {
        let path = path.into();
        let replay = match std::fs::read_to_string(&path) {
            Ok(text) => replay_text(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Replay::default(),
            Err(e) => return Err(e),
        };
        // Compact: rewrite only what still matters, atomically, then
        // append from there.
        let mut compacted = String::new();
        for (key, data) in &replay.stages {
            compacted.push_str(&record_text(
                "stage",
                &format!("key {key:016x}\n{}", stage_data_to_text(data)),
            ));
        }
        for rec in &replay.pending {
            compacted.push_str(&record_text("accept", &accept_payload(rec)));
        }
        let tmp = path.with_extension("journal.tmp");
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(compacted.as_bytes())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &path)?;
        let journal = Journal::open(&path)?;
        Ok((journal, replay))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&self, kind: &str, payload: &str) -> std::io::Result<()> {
        let text = record_text(kind, payload);
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.write_all(text.as_bytes())?;
        // fsync before the caller acts on durability (acks a job, fires
        // a fault site): a record is either fully on disk or replay
        // drops it at the torn tail.
        file.sync_data()
    }

    /// Journal an admitted job. Call **before** sending the ack frame.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; the caller must then shed the
    /// job rather than ack it.
    pub fn append_accept(&self, rec: &AcceptRecord) -> std::io::Result<()> {
        self.append("accept", &accept_payload(rec))
    }

    /// Journal one stage-cache entry. Call before (or atomically with)
    /// the in-memory memo record.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn append_stage(&self, key: u64, data: &StageData) -> std::io::Result<()> {
        self.append(
            "stage",
            &format!("key {key:016x}\n{}", stage_data_to_text(data)),
        )
    }

    /// Journal a job's terminal state (`ok`, a typed error code, or
    /// `cancelled`): replay will not resume it.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn append_done(&self, id: u64, code: &str) -> std::io::Result<()> {
        self.append("done", &format!("job {id}\nstatus {}\n", esc(code)))
    }
}

/// Replay journal text into recovered state. Tolerates every torture
/// case the tests throw at it: a torn tail (replay stops at the last
/// whole record), a corrupted checksum mid-file (that record is skipped,
/// framing continues), and duplicates (idempotent by id / key).
pub fn replay_text(text: &str) -> Replay {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let mut accepts: Vec<AcceptRecord> = Vec::new();
    let mut done_ids: HashMap<u64, ()> = HashMap::new();
    let mut stage_at: HashMap<u64, usize> = HashMap::new();
    let mut stages: Vec<(u64, StageData)> = Vec::new();
    let mut skipped = 0u64;
    let mut done = 0u64;
    let mut next_id = 1u64;
    loop {
        if pos >= bytes.len() {
            break;
        }
        let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            // Torn header at the tail.
            break;
        };
        let header = &text[pos..pos + nl];
        let body_start = pos + nl + 1;
        let mut fields = header.split(' ');
        let (kind, len, sum) = match (
            fields.next(),
            fields.next(),
            fields.next().and_then(|s| s.parse::<usize>().ok()),
            fields.next().and_then(|s| u64::from_str_radix(s, 16).ok()),
        ) {
            (Some("rec"), Some(kind), Some(len), Some(sum)) => (kind, len, sum),
            _ => {
                // An unframeable header: without a trustworthy length we
                // cannot find the next boundary. Stop here.
                break;
            }
        };
        let body_end = body_start.saturating_add(len);
        if body_end > bytes.len() {
            break; // torn payload at the tail
        }
        let payload = &text[body_start..body_end];
        pos = (body_end + 1).min(bytes.len());
        if fnv1a64(payload.as_bytes()) != sum {
            skipped += 1;
            continue;
        }
        match kind {
            "accept" => match parse_accept(payload) {
                Some(rec) => {
                    next_id = next_id.max(rec.id + 1);
                    // Duplicate accept for an id: last record wins.
                    accepts.retain(|a| a.id != rec.id);
                    accepts.push(rec);
                }
                None => skipped += 1,
            },
            "stage" => {
                let parsed = payload.split_once('\n').and_then(|(head, rest)| {
                    let key = u64::from_str_radix(head.strip_prefix("key ")?, 16).ok()?;
                    Some((key, stage_data_from_text(rest)?))
                });
                match parsed {
                    Some((key, data)) => match stage_at.get(&key) {
                        Some(&i) => stages[i] = (key, data),
                        None => {
                            stage_at.insert(key, stages.len());
                            stages.push((key, data));
                        }
                    },
                    None => skipped += 1,
                }
            }
            "done" => {
                let id = payload
                    .lines()
                    .next()
                    .and_then(|l| l.strip_prefix("job "))
                    .and_then(|s| s.parse::<u64>().ok());
                match id {
                    Some(id) => {
                        next_id = next_id.max(id + 1);
                        done_ids.insert(id, ());
                        done += 1;
                    }
                    None => skipped += 1,
                }
            }
            _ => skipped += 1,
        }
    }
    let pending = accepts
        .into_iter()
        .filter(|a| !done_ids.contains_key(&a.id))
        .collect();
    Replay {
        pending,
        stages,
        skipped,
        done,
        next_id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accept(id: u64, name: &str) -> AcceptRecord {
        let mut config = Json::obj();
        config.set("seed", Json::Num(7.0));
        AcceptRecord {
            id,
            name: name.into(),
            netlist_text: "netlist v1\nname x\nnets 0\ncells 0\nports 0\nclock none\nend\n".into(),
            config,
            return_netlist: false,
            deadline_ms: if id.is_multiple_of(2) {
                Some(1500)
            } else {
                None
            },
        }
    }

    #[test]
    fn accept_payload_round_trips_hostile_names() {
        let mut rec = accept(3, "line\nbreak \\ and spaces");
        rec.return_netlist = true;
        let back = parse_accept(&accept_payload(&rec)).expect("parses");
        assert_eq!(back.id, 3);
        assert_eq!(back.name, "line\nbreak \\ and spaces");
        assert_eq!(back.netlist_text, rec.netlist_text);
        assert_eq!(back.deadline_ms, None);
        assert!(back.return_netlist);
        assert_eq!(back.config.get("seed").and_then(Json::as_f64), Some(7.0));
    }

    #[test]
    fn append_replay_round_trip_with_done_filtering() {
        let dir = std::env::temp_dir().join("triphase_journal_unit");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("jobs.journal");
        let j = Journal::open(&path).expect("open");
        j.append_accept(&accept(1, "a")).expect("accept 1");
        j.append_accept(&accept(2, "b")).expect("accept 2");
        j.append_done(1, "ok").expect("done 1");
        let text = std::fs::read_to_string(&path).expect("read");
        let replay = replay_text(&text);
        assert_eq!(replay.skipped, 0);
        assert_eq!(replay.done, 1);
        assert_eq!(replay.next_id, 3);
        assert_eq!(replay.pending.len(), 1);
        assert_eq!(replay.pending[0].id, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_replay_compacts_done_jobs_away() {
        let dir = std::env::temp_dir().join("triphase_journal_compact");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("jobs.journal");
        {
            let j = Journal::open(&path).expect("open");
            j.append_accept(&accept(1, "a")).expect("accept");
            j.append_done(1, "ok").expect("done");
            j.append_accept(&accept(2, "b")).expect("accept");
        }
        let before = std::fs::metadata(&path).expect("meta").len();
        let (_j, replay) = Journal::open_replay(&path).expect("replay");
        assert_eq!(replay.pending.len(), 1);
        let after = std::fs::metadata(&path).expect("meta").len();
        assert!(
            after < before,
            "compaction shrinks the file ({before} -> {after})"
        );
        // A second replay of the compacted file sees the same state.
        let again = replay_text(&std::fs::read_to_string(&path).expect("read"));
        assert_eq!(again.pending.len(), 1);
        assert_eq!(again.pending[0].id, 2);
        assert_eq!(again.skipped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
