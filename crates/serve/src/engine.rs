//! The conversion engine a worker runs per job: report-cache check,
//! then the memoized flow, with per-stage cache provenance emitted as
//! the stages resolve.
//!
//! Two resilience hooks thread through here:
//!
//! - **Cooperative cancellation** ([`CancelToken`]): the engine checks
//!   the token at entry and at every stage boundary (the flow's
//!   [`triphase_core::StageObservation`] hook). A fired token aborts the
//!   job by unwinding a [`CancelUnwind`] payload, which the worker's
//!   existing `catch_unwind` containment catches and maps to a typed
//!   `cancelled` / `deadline_exceeded` done event naming the last stage
//!   whose result was already banked in the memo store — a resubmission
//!   resumes from exactly there. Stage boundaries are the natural grain:
//!   each stage is the unit of memoized (and journaled) progress, so
//!   aborting between stages never wastes banked work.
//! - **Durable memoization** (`JournaledMemo`): when the server runs
//!   with a journal, every stage record is appended (and fsync'd) to the
//!   journal *before* it lands in the in-memory store — the same
//!   artifact-before-fault-site ordering the checkpoint layer uses, so a
//!   SIGKILL after stage N always finds N stages on disk.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use triphase_cells::Library;
use triphase_core::{run_flow_memo, FlowConfig, FlowReport, Stage, StageData, StageMemo};
use triphase_netlist::Netlist;

use crate::journal::Journal;
use crate::memo::{report_key, MemoStore};

/// Provenance of one resolved unit of work: a flow stage, or the
/// whole-report tier (`stage == "report"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageProv {
    /// `"preprocess"`, `"convert"`, `"retime"`, `"clockgate"`, or
    /// `"report"` for the whole-report cache tier.
    pub stage: &'static str,
    /// The memoization key that was looked up.
    pub key: u64,
    /// Whether the lookup was answered from the cache.
    pub hit: bool,
    /// Wall-clock milliseconds until this unit resolved.
    pub millis: u64,
    /// Memo entries evicted since this job's previous event (cache
    /// pressure attributed to the work in between, including concurrent
    /// jobs' inserts).
    pub evictions: u64,
}

/// Cooperative cancellation handle for one job: an explicit `cancel`
/// request and/or a wall-clock deadline, checked by the engine at every
/// stage boundary.
#[derive(Clone)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that fires on [`CancelToken::cancel`], and additionally
    /// `deadline_ms` after creation if given.
    pub fn new(deadline_ms: Option<u64>) -> CancelToken {
        CancelToken {
            cancelled: Arc::new(AtomicBool::new(false)),
            deadline: deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
        }
    }

    /// Fire the token: the job aborts at its next stage boundary.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// The abort reason, if the token has fired: `"cancelled"` (explicit
    /// request wins over the clock) or `"deadline_exceeded"`.
    pub fn check(&self) -> Option<&'static str> {
        if self.cancelled.load(Ordering::SeqCst) {
            return Some("cancelled");
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Some("deadline_exceeded"),
            _ => None,
        }
    }
}

/// The unwind payload of a cancelled job. Thrown with
/// [`std::panic::panic_any`] from the stage-boundary check; the worker's
/// `catch_unwind` downcasts it back into a typed done event.
pub struct CancelUnwind {
    /// `"cancelled"` or `"deadline_exceeded"`.
    pub reason: &'static str,
    /// The last stage whose result was banked before the abort
    /// (`"none"` if the job aborted before its first stage landed); a
    /// resubmission replays the cache up to and including this stage.
    pub last_banked: &'static str,
}

/// A [`StageMemo`] that makes every record durable before it is
/// observable: append + fsync to the journal first, then the in-memory
/// store. Lookups go straight to the store.
struct JournaledMemo<'a> {
    memo: &'a MemoStore,
    journal: &'a Journal,
}

impl StageMemo for JournaledMemo<'_> {
    fn lookup(&self, stage: Stage, key: u64) -> Option<StageData> {
        self.memo.lookup(stage, key)
    }

    fn record(&self, stage: Stage, key: u64, data: &StageData) {
        // A journal write failure downgrades durability, not
        // correctness: the job still completes, and the miss is only
        // that a post-crash restart would recompute this stage.
        let _ = self.journal.append_stage(key, data);
        self.memo.record(stage, key, data);
    }
}

/// A shared, thread-safe conversion engine: one cell library plus the
/// two-tier [`MemoStore`] and (optionally) the durable journal behind
/// it. Workers call [`Engine::run`] concurrently.
pub struct Engine {
    lib: Library,
    memo: MemoStore,
    journal: Option<Arc<Journal>>,
    fault: Option<triphase_fault::SharedInjector>,
}

impl Engine {
    /// Create an engine with the synthetic 28 nm library and a memo
    /// store holding `memo_capacity` entries per tier.
    pub fn new(memo_capacity: usize) -> Engine {
        Engine::with_memo(MemoStore::new(memo_capacity))
    }

    /// Create an engine around an existing (possibly replay-seeded)
    /// memo store.
    pub fn with_memo(memo: MemoStore) -> Engine {
        Engine {
            lib: Library::synthetic_28nm(),
            memo,
            journal: None,
            fault: None,
        }
    }

    /// Journal every stage record (durably, before the in-memory store
    /// sees it).
    pub fn with_journal(mut self, journal: Arc<Journal>) -> Engine {
        self.journal = Some(journal);
        self
    }

    /// Install a fault-injection plan forced into every job's flow
    /// (test-only: lets integration tests kill a worker mid-job).
    pub fn with_fault(mut self, fault: triphase_fault::SharedInjector) -> Engine {
        self.fault = Some(fault);
        self
    }

    /// The shared memo store (for status counters).
    pub fn memo(&self) -> &MemoStore {
        &self.memo
    }

    /// Convert one design. The request's config is taken as-is except
    /// that the fault and checkpoint hooks are forced from the engine —
    /// the wire cannot reach them. `emit` receives cache provenance in
    /// resolution order: the `"report"` tier first, then (on a report
    /// miss) each flow stage as it resolves. A fired `token` aborts at
    /// the next stage boundary by unwinding [`CancelUnwind`] (caught by
    /// the worker's panic containment, never crossing the daemon).
    ///
    /// # Errors
    ///
    /// Any flow error ([`triphase_core::Error`]); the caller maps it to
    /// a typed `done` event via [`crate::proto::error_code`].
    pub fn run(
        &self,
        nl: &Netlist,
        cfg: &FlowConfig,
        token: Option<&CancelToken>,
        emit: &mut dyn FnMut(&StageProv),
    ) -> triphase_core::Result<Arc<FlowReport>> {
        let mut cfg = cfg.clone();
        cfg.fault = self.fault.clone();
        cfg.checkpoint = None;
        let abort = |reason: &'static str, last_banked: &'static str| -> ! {
            std::panic::panic_any(CancelUnwind {
                reason,
                last_banked,
            })
        };
        if let Some(reason) = token.and_then(CancelToken::check) {
            abort(reason, "none");
        }
        let start = Instant::now();
        let evictions_before = |memo: &MemoStore| {
            let (s, r) = memo.stats();
            s.evictions + r.evictions
        };
        let mut last_evictions = evictions_before(&self.memo);
        let rkey = report_key(nl, &cfg);
        if let Some(report) = self.memo.get_report(rkey) {
            emit(&StageProv {
                stage: "report",
                key: rkey,
                hit: true,
                millis: start.elapsed().as_millis() as u64,
                evictions: 0,
            });
            return Ok(report);
        }
        emit(&StageProv {
            stage: "report",
            key: rkey,
            hit: false,
            millis: start.elapsed().as_millis() as u64,
            evictions: 0,
        });
        let mut last = Instant::now();
        // The stage whose record is already banked when the *next*
        // observation fires: observations precede their stage's memo
        // record, so at observe(N) the banked prefix ends at N-1.
        let mut banked: &'static str = "none";
        let memo = &self.memo;
        let mut observe = |obs: triphase_core::StageObservation| {
            if let Some(reason) = token.and_then(CancelToken::check) {
                abort(reason, banked);
            }
            let now_evictions = evictions_before(memo);
            emit(&StageProv {
                stage: obs.stage.name(),
                key: obs.key,
                hit: obs.hit,
                millis: last.elapsed().as_millis() as u64,
                evictions: now_evictions.saturating_sub(last_evictions),
            });
            last_evictions = now_evictions;
            last = Instant::now();
            banked = obs.stage.name();
        };
        let report = match &self.journal {
            Some(journal) => {
                let journaled = JournaledMemo {
                    memo: &self.memo,
                    journal,
                };
                run_flow_memo(nl, &self.lib, &cfg, &journaled, &mut observe)?
            }
            None => run_flow_memo(nl, &self.lib, &cfg, &self.memo, &mut observe)?,
        };
        let report = Arc::new(report);
        self.memo.put_report(rkey, Arc::clone(&report));
        Ok(report)
    }
}
