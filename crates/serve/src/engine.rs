//! The conversion engine a worker runs per job: report-cache check,
//! then the memoized flow, with per-stage cache provenance emitted as
//! the stages resolve.

use std::sync::Arc;
use std::time::Instant;

use triphase_cells::Library;
use triphase_core::{run_flow_memo, FlowConfig, FlowReport};
use triphase_netlist::Netlist;

use crate::memo::{report_key, MemoStore};

/// Provenance of one resolved unit of work: a flow stage, or the
/// whole-report tier (`stage == "report"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageProv {
    /// `"preprocess"`, `"convert"`, `"retime"`, `"clockgate"`, or
    /// `"report"` for the whole-report cache tier.
    pub stage: &'static str,
    /// The memoization key that was looked up.
    pub key: u64,
    /// Whether the lookup was answered from the cache.
    pub hit: bool,
    /// Wall-clock milliseconds until this unit resolved.
    pub millis: u64,
}

/// A shared, thread-safe conversion engine: one cell library plus the
/// two-tier [`MemoStore`]. Workers call [`Engine::run`] concurrently.
pub struct Engine {
    lib: Library,
    memo: MemoStore,
    fault: Option<triphase_fault::SharedInjector>,
}

impl Engine {
    /// Create an engine with the synthetic 28 nm library and a memo
    /// store holding `memo_capacity` entries per tier.
    pub fn new(memo_capacity: usize) -> Engine {
        Engine {
            lib: Library::synthetic_28nm(),
            memo: MemoStore::new(memo_capacity),
            fault: None,
        }
    }

    /// Install a fault-injection plan forced into every job's flow
    /// (test-only: lets integration tests kill a worker mid-job).
    pub fn with_fault(mut self, fault: triphase_fault::SharedInjector) -> Engine {
        self.fault = Some(fault);
        self
    }

    /// The shared memo store (for status counters).
    pub fn memo(&self) -> &MemoStore {
        &self.memo
    }

    /// Convert one design. The request's config is taken as-is except
    /// that the fault and checkpoint hooks are forced from the engine —
    /// the wire cannot reach them. `emit` receives cache provenance in
    /// resolution order: the `"report"` tier first, then (on a report
    /// miss) each flow stage as it resolves.
    ///
    /// # Errors
    ///
    /// Any flow error ([`triphase_core::Error`]); the caller maps it to
    /// a typed `done` event via [`crate::proto::error_code`].
    pub fn run(
        &self,
        nl: &Netlist,
        cfg: &FlowConfig,
        emit: &mut dyn FnMut(&StageProv),
    ) -> triphase_core::Result<Arc<FlowReport>> {
        let mut cfg = cfg.clone();
        cfg.fault = self.fault.clone();
        cfg.checkpoint = None;
        let start = Instant::now();
        let rkey = report_key(nl, &cfg);
        if let Some(report) = self.memo.get_report(rkey) {
            emit(&StageProv {
                stage: "report",
                key: rkey,
                hit: true,
                millis: start.elapsed().as_millis() as u64,
            });
            return Ok(report);
        }
        emit(&StageProv {
            stage: "report",
            key: rkey,
            hit: false,
            millis: start.elapsed().as_millis() as u64,
        });
        let mut last = Instant::now();
        let mut observe = |obs: triphase_core::StageObservation| {
            emit(&StageProv {
                stage: obs.stage.name(),
                key: obs.key,
                hit: obs.hit,
                millis: last.elapsed().as_millis() as u64,
            });
            last = Instant::now();
        };
        let report = Arc::new(run_flow_memo(
            nl,
            &self.lib,
            &cfg,
            &self.memo,
            &mut observe,
        )?);
        self.memo.put_report(rkey, Arc::clone(&report));
        Ok(report)
    }
}
