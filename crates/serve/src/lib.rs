//! `triphase-serve` — conversion-as-a-service: a std-only TCP daemon
//! that runs the FF → 3-phase flow ([`triphase_core::run_flow`]) behind
//! a length-framed JSON wire protocol, with an async job queue, a
//! worker pool, and a two-tier memoization store keyed on the flow's
//! checkpoint fingerprints.
//!
//! Why a daemon: the flow's dominant costs (P&R, simulation, the ILP)
//! recur identically across ECO-style iterations on the same design.
//! Holding the caches in a long-lived process turns a resubmitted
//! netlist into a report-cache hit and an *edited* netlist into a
//! partial replay — only stages at or after the first divergent
//! checkpoint fingerprint re-run, with hit/miss provenance recorded per
//! job in the response ([`engine::StageProv`]).
//!
//! The wire format ([`frame`]) is a 4-byte big-endian length prefix
//! followed by UTF-8 JSON ([`json`]); the schema ([`proto`]) follows
//! the repo's CLI conventions — stable machine-matchable codes, typed
//! errors for every malformed input, no panics on hostile bytes.
//!
//! ```
//! use triphase_serve::{Client, Server, ServerOptions};
//! use triphase_core::FlowConfig;
//! use triphase_circuits::pipeline::linear_pipeline;
//!
//! let server = Server::start(ServerOptions::default())?;
//! let mut client = Client::connect(server.addr())?;
//! let design = linear_pipeline(3, 4, 1, 900.0);
//! let cfg = FlowConfig { sim_cycles: 16, equiv_cycles: 32, ..FlowConfig::default() };
//! let (stages, done) = client.convert("demo", &design, &cfg).expect("served");
//! assert_eq!(done.get("ok"), Some(&triphase_serve::json::Json::Bool(true)));
//! assert!(!stages.is_empty());
//! server.stop();
//! server.wait();
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
pub mod engine;
pub mod frame;
pub mod journal;
pub mod json;
pub mod memo;
pub mod proto;
pub mod queue;
pub mod server;

pub use client::{Backoff, Client, ClientError};
pub use engine::{CancelToken, CancelUnwind, Engine, StageProv};
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_DEFAULT};
pub use journal::{AcceptRecord, Journal, Replay};
pub use json::Json;
pub use memo::{report_key, MemoStore, TierStats};
pub use proto::{parse_request, report_json, strip_timings, ProtoError, Request, PROTOCOL_VERSION};
pub use queue::{AdmitError, Job, JobQueue, QueueLimits};
pub use server::{Server, ServerOptions};
