//! Two-tier memoization store shared by all workers.
//!
//! Tier 1 — **stage cache**: keyed on [`triphase_core::stage_key`]
//! (fingerprint of the stage's *input* netlist plus exactly the config
//! fields that stage reads). An edited netlist resubmission therefore
//! replays cached results up to the first divergent stage and only
//! recomputes from there; an untouched prefix is bit-exact because the
//! cached [`StageData`] *is* the value the fresh computation would have
//! produced (the flow is deterministic given seed).
//!
//! Tier 2 — **report cache**: keyed on [`report_key`], the whole-flow
//! fingerprint extended with the fields the flow fingerprint
//! deliberately ignores (check policies, equivalence depth, simulation
//! backend). An identical resubmission skips the flow entirely —
//! including the three variant evaluations the stage cache cannot
//! cover — which is what makes a warm-cache resubmission an order of
//! magnitude faster than a cold run.
//!
//! Both tiers are **LRU with byte accounting**: every entry carries an
//! approximate footprint ([`stage_data_bytes`] / [`report_bytes`],
//! dominated by the netlists it holds), a lookup hit refreshes recency,
//! and an insert evicts cold entries until both the entry-count
//! capacity and the byte budget hold. Eviction counts are exported in
//! [`TierStats`] and surfaced as provenance in `stage` events, so a
//! client can see when its own insert pushed older work out.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use triphase_core::{FlowConfig, FlowReport, Stage, StageData, StageMemo};
use triphase_fault::fnv1a64;
use triphase_netlist::Netlist;

/// Whole-report cache key: the flow fingerprint (netlist + every
/// result-shaping config field) extended with the knobs the fingerprint
/// excludes because they only *check* rather than shape the netlist —
/// they still shape the `FlowReport`, so the report cache must key on
/// them.
pub fn report_key(nl: &Netlist, cfg: &FlowConfig) -> u64 {
    let base = triphase_core::flow_fingerprint(nl, cfg);
    let mut s = format!("report {base:016x} ");
    use std::fmt::Write;
    let _ = write!(
        s,
        "lint {:?} equiv {:?} dfa {:?} cycles {} backend {}",
        cfg.lint,
        cfg.equiv,
        cfg.dfa,
        cfg.equiv_cycles,
        cfg.sim_backend.label()
    );
    fnv1a64(s.as_bytes())
}

fn netlist_bytes(nl: &Netlist) -> usize {
    // A cell with its pins/nets costs on the order of 100 bytes in the
    // arena representation; the constant covers ports/clock/name.
    1024 + nl.stats().cells * 112
}

/// Approximate in-memory footprint of one stage-cache entry.
pub fn stage_data_bytes(data: &StageData) -> usize {
    match data {
        StageData::Preprocess(nl, _) => 64 + netlist_bytes(nl),
        StageData::Convert { netlist, .. } => 128 + netlist_bytes(netlist),
        StageData::Retime(nl, _) => 96 + netlist_bytes(nl),
        StageData::ClockGate(nl, _, _) => 96 + netlist_bytes(nl),
    }
}

/// Approximate in-memory footprint of one report-cache entry (the three
/// evaluated variant netlists dominate).
pub fn report_bytes(report: &FlowReport) -> usize {
    2048 + netlist_bytes(&report.ff.netlist)
        + netlist_bytes(&report.ms.netlist)
        + netlist_bytes(&report.three_phase.netlist)
}

/// Hit/miss/eviction counters for one cache tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to computation.
    pub misses: u64,
    /// Entries currently held.
    pub entries: usize,
    /// Approximate bytes currently held.
    pub bytes: usize,
    /// Entries evicted since startup (capacity or byte-budget pressure).
    pub evictions: u64,
}

struct Tier<V> {
    map: HashMap<u64, (V, usize)>,
    /// Recency order: front = coldest, back = hottest.
    order: VecDeque<u64>,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V> Default for Tier<V> {
    fn default() -> Self {
        Tier {
            map: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

impl<V: Clone> Tier<V> {
    fn touch(&mut self, key: u64) {
        if let Some(i) = self.order.iter().position(|&k| k == key) {
            self.order.remove(i);
            self.order.push_back(key);
        }
    }

    fn get(&mut self, key: u64) -> Option<V> {
        let v = self.map.get(&key).map(|(v, _)| v.clone());
        if v.is_some() {
            self.hits += 1;
            self.touch(key);
        } else {
            self.misses += 1;
        }
        v
    }

    /// Insert and evict LRU entries until both bounds hold; returns how
    /// many entries were evicted by this insert.
    fn put(&mut self, key: u64, value: V, size: usize, capacity: usize, budget: usize) -> u64 {
        match self.map.insert(key, (value, size)) {
            None => {
                self.order.push_back(key);
                self.bytes += size;
            }
            Some((_, old_size)) => {
                self.bytes = self.bytes - old_size + size;
                self.touch(key);
            }
        }
        let mut evicted = 0;
        // Never evict the entry just inserted, even if it alone exceeds
        // the byte budget — a cache that refuses oversized-but-real work
        // would silently disable memoization for large designs.
        while self.order.len() > 1 && (self.order.len() > capacity || self.bytes > budget) {
            if let Some(old) = self.order.pop_front() {
                if let Some((_, sz)) = self.map.remove(&old) {
                    self.bytes -= sz;
                    evicted += 1;
                }
            }
        }
        self.evictions += evicted;
        evicted
    }

    fn stats(&self) -> TierStats {
        TierStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
            bytes: self.bytes,
            evictions: self.evictions,
        }
    }
}

struct Inner {
    stages: Tier<StageData>,
    reports: Tier<Arc<FlowReport>>,
}

/// The shared store. Cheap to clone ([`Arc`] inside); implements
/// [`StageMemo`] so it can be handed straight to
/// [`triphase_core::run_flow_memo`].
#[derive(Clone)]
pub struct MemoStore {
    inner: Arc<Mutex<Inner>>,
    capacity: usize,
    byte_budget: usize,
}

impl MemoStore {
    /// Create a store holding at most `capacity` entries per tier, with
    /// the default half-GiB byte budget per tier.
    pub fn new(capacity: usize) -> MemoStore {
        MemoStore::bounded(capacity, 512 << 20)
    }

    /// Create a store bounded by both `capacity` entries and
    /// `byte_budget` approximate bytes per tier (LRU eviction enforces
    /// whichever bound is hit first).
    pub fn bounded(capacity: usize, byte_budget: usize) -> MemoStore {
        MemoStore {
            inner: Arc::new(Mutex::new(Inner {
                stages: Tier::default(),
                reports: Tier::default(),
            })),
            capacity: capacity.max(1),
            byte_budget: byte_budget.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock only means another worker panicked mid-insert;
        // the map itself is never left in a torn state by Tier's methods.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Look up a whole cached report.
    pub fn get_report(&self, key: u64) -> Option<Arc<FlowReport>> {
        self.lock().reports.get(key)
    }

    /// Record a finished report; returns entries evicted by the insert.
    pub fn put_report(&self, key: u64, report: Arc<FlowReport>) -> u64 {
        let size = report_bytes(&report);
        let (capacity, budget) = (self.capacity, self.byte_budget);
        self.lock().reports.put(key, report, size, capacity, budget)
    }

    /// Seed a stage entry during journal replay: identical to
    /// [`StageMemo::record`] (same eviction policy) but exists so replay
    /// call sites read as what they are — warming, not recomputing.
    pub fn seed_stage(&self, key: u64, data: StageData) {
        let size = stage_data_bytes(&data);
        let (capacity, budget) = (self.capacity, self.byte_budget);
        self.lock().stages.put(key, data, size, capacity, budget);
    }

    /// Current counters: (stage tier, report tier).
    pub fn stats(&self) -> (TierStats, TierStats) {
        let inner = self.lock();
        (inner.stages.stats(), inner.reports.stats())
    }
}

impl StageMemo for MemoStore {
    fn lookup(&self, _stage: Stage, key: u64) -> Option<StageData> {
        self.lock().stages.get(key)
    }

    fn record(&self, _stage: Stage, key: u64, data: &StageData) {
        let size = stage_data_bytes(data);
        let (capacity, budget) = (self.capacity, self.byte_budget);
        self.lock()
            .stages
            .put(key, data.clone(), size, capacity, budget);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_core::{DfaPolicy, LintPolicy};

    #[test]
    fn report_key_sees_policy_fields_the_flow_fingerprint_ignores() {
        let nl = Netlist::new("k");
        let base = FlowConfig::default();
        let lint = FlowConfig {
            lint: LintPolicy::Deny,
            ..base.clone()
        };
        let dfa = FlowConfig {
            dfa: DfaPolicy::Off,
            ..base.clone()
        };
        let cycles = FlowConfig {
            equiv_cycles: base.equiv_cycles + 1,
            ..base.clone()
        };
        assert_eq!(
            triphase_core::flow_fingerprint(&nl, &base),
            triphase_core::flow_fingerprint(&nl, &lint),
            "precondition: flow fingerprint ignores lint policy"
        );
        let k0 = report_key(&nl, &base);
        assert_ne!(k0, report_key(&nl, &lint));
        assert_ne!(k0, report_key(&nl, &dfa));
        assert_ne!(k0, report_key(&nl, &cycles));
        assert_eq!(k0, report_key(&nl, &base.clone()));
    }

    #[test]
    fn tier_evicts_least_recently_used_not_oldest_inserted() {
        let mut t: Tier<u32> = Tier::default();
        t.put(0, 0, 1, 3, usize::MAX);
        t.put(1, 1, 1, 3, usize::MAX);
        t.put(2, 2, 1, 3, usize::MAX);
        // Refresh 0 — it is now the hottest despite being oldest.
        assert_eq!(t.get(0), Some(0));
        let evicted = t.put(3, 3, 1, 3, usize::MAX);
        assert_eq!(evicted, 1);
        assert_eq!(t.get(1), None, "LRU victim was 1, not 0");
        assert_eq!(t.get(0), Some(0));
        let s = t.stats();
        assert_eq!((s.entries, s.evictions), (3, 1));
    }

    #[test]
    fn tier_honors_byte_budget_and_never_evicts_the_fresh_entry() {
        let mut t: Tier<u32> = Tier::default();
        t.put(1, 1, 40, 100, 100);
        t.put(2, 2, 40, 100, 100);
        // 40+40+40 > 100: inserting 3 evicts the coldest (1).
        let evicted = t.put(3, 3, 40, 100, 100);
        assert_eq!(evicted, 1);
        assert_eq!(t.stats().bytes, 80);
        // An entry bigger than the whole budget still lands (and evicts
        // everything else).
        let evicted = t.put(4, 4, 500, 100, 100);
        assert_eq!(evicted, 2);
        assert_eq!(t.get(4), Some(4));
        assert_eq!(t.stats().entries, 1);
    }

    #[test]
    fn stats_track_bytes_through_replacement() {
        let mut t: Tier<u32> = Tier::default();
        t.put(7, 1, 30, 10, usize::MAX);
        t.put(7, 2, 50, 10, usize::MAX);
        let s = t.stats();
        assert_eq!((s.entries, s.bytes), (1, 50));
    }
}
