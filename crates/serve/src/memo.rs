//! Two-tier memoization store shared by all workers.
//!
//! Tier 1 — **stage cache**: keyed on [`triphase_core::stage_key`]
//! (fingerprint of the stage's *input* netlist plus exactly the config
//! fields that stage reads). An edited netlist resubmission therefore
//! replays cached results up to the first divergent stage and only
//! recomputes from there; an untouched prefix is bit-exact because the
//! cached [`StageData`] *is* the value the fresh computation would have
//! produced (the flow is deterministic given seed).
//!
//! Tier 2 — **report cache**: keyed on [`report_key`], the whole-flow
//! fingerprint extended with the fields the flow fingerprint
//! deliberately ignores (check policies, equivalence depth, simulation
//! backend). An identical resubmission skips the flow entirely —
//! including the three variant evaluations the stage cache cannot
//! cover — which is what makes a warm-cache resubmission an order of
//! magnitude faster than a cold run.
//!
//! Both tiers evict in insertion order once over capacity, and both
//! count hits/misses for the `status` event.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use triphase_core::{FlowConfig, FlowReport, Stage, StageData, StageMemo};
use triphase_fault::fnv1a64;
use triphase_netlist::Netlist;

/// Whole-report cache key: the flow fingerprint (netlist + every
/// result-shaping config field) extended with the knobs the fingerprint
/// excludes because they only *check* rather than shape the netlist —
/// they still shape the `FlowReport`, so the report cache must key on
/// them.
pub fn report_key(nl: &Netlist, cfg: &FlowConfig) -> u64 {
    let base = triphase_core::flow_fingerprint(nl, cfg);
    let mut s = format!("report {base:016x} ");
    use std::fmt::Write;
    let _ = write!(
        s,
        "lint {:?} equiv {:?} dfa {:?} cycles {} backend {}",
        cfg.lint,
        cfg.equiv,
        cfg.dfa,
        cfg.equiv_cycles,
        cfg.sim_backend.label()
    );
    fnv1a64(s.as_bytes())
}

/// Hit/miss counters for one cache tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to computation.
    pub misses: u64,
    /// Entries currently held.
    pub entries: usize,
}

struct Tier<V> {
    map: HashMap<u64, V>,
    order: VecDeque<u64>,
    hits: u64,
    misses: u64,
}

impl<V> Default for Tier<V> {
    fn default() -> Self {
        Tier {
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }
}

impl<V: Clone> Tier<V> {
    fn get(&mut self, key: u64) -> Option<V> {
        let v = self.map.get(&key).cloned();
        if v.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        v
    }

    fn put(&mut self, key: u64, value: V, capacity: usize) {
        if self.map.insert(key, value).is_none() {
            self.order.push_back(key);
        }
        while self.order.len() > capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
    }

    fn stats(&self) -> TierStats {
        TierStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
        }
    }
}

struct Inner {
    stages: Tier<StageData>,
    reports: Tier<Arc<FlowReport>>,
}

/// The shared store. Cheap to clone ([`Arc`] inside); implements
/// [`StageMemo`] so it can be handed straight to
/// [`triphase_core::run_flow_memo`].
#[derive(Clone)]
pub struct MemoStore {
    inner: Arc<Mutex<Inner>>,
    capacity: usize,
}

impl MemoStore {
    /// Create a store holding at most `capacity` entries per tier.
    pub fn new(capacity: usize) -> MemoStore {
        MemoStore {
            inner: Arc::new(Mutex::new(Inner {
                stages: Tier::default(),
                reports: Tier::default(),
            })),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock only means another worker panicked mid-insert;
        // the map itself is never left in a torn state by Tier's methods.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Look up a whole cached report.
    pub fn get_report(&self, key: u64) -> Option<Arc<FlowReport>> {
        self.lock().reports.get(key)
    }

    /// Record a finished report.
    pub fn put_report(&self, key: u64, report: Arc<FlowReport>) {
        let capacity = self.capacity;
        self.lock().reports.put(key, report, capacity);
    }

    /// Current counters: (stage tier, report tier).
    pub fn stats(&self) -> (TierStats, TierStats) {
        let inner = self.lock();
        (inner.stages.stats(), inner.reports.stats())
    }
}

impl StageMemo for MemoStore {
    fn lookup(&self, _stage: Stage, key: u64) -> Option<StageData> {
        self.lock().stages.get(key)
    }

    fn record(&self, _stage: Stage, key: u64, data: &StageData) {
        let capacity = self.capacity;
        self.lock().stages.put(key, data.clone(), capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_core::{DfaPolicy, LintPolicy};

    #[test]
    fn report_key_sees_policy_fields_the_flow_fingerprint_ignores() {
        let nl = Netlist::new("k");
        let base = FlowConfig::default();
        let lint = FlowConfig {
            lint: LintPolicy::Deny,
            ..base.clone()
        };
        let dfa = FlowConfig {
            dfa: DfaPolicy::Off,
            ..base.clone()
        };
        let cycles = FlowConfig {
            equiv_cycles: base.equiv_cycles + 1,
            ..base.clone()
        };
        assert_eq!(
            triphase_core::flow_fingerprint(&nl, &base),
            triphase_core::flow_fingerprint(&nl, &lint),
            "precondition: flow fingerprint ignores lint policy"
        );
        let k0 = report_key(&nl, &base);
        assert_ne!(k0, report_key(&nl, &lint));
        assert_ne!(k0, report_key(&nl, &dfa));
        assert_ne!(k0, report_key(&nl, &cycles));
        assert_eq!(k0, report_key(&nl, &base.clone()));
    }

    #[test]
    fn tiers_evict_in_insertion_order() {
        let mut t: Tier<u32> = Tier::default();
        for k in 0..4 {
            t.put(k, k as u32, 2);
        }
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(1), None);
        assert_eq!(t.get(2), Some(2));
        assert_eq!(t.get(3), Some(3));
        let s = t.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 2, 2));
    }
}
