//! Blocking client for the daemon: frame-level connect/send/recv plus
//! submit helpers. Used by the load generator and the integration
//! tests; thin enough to double as wire documentation.

use std::net::TcpStream;

use triphase_core::FlowConfig;
use triphase_netlist::{snapshot, Netlist};

use crate::frame::{read_frame, write_frame, FrameError, MAX_FRAME_DEFAULT};
use crate::json::Json;
use crate::proto::config_json;

/// A blocking connection to the daemon.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
}

/// Client-side failure: a frame/transport error or an unparseable
/// server frame.
#[derive(Debug)]
pub enum ClientError {
    /// Transport/framing failure.
    Frame(FrameError),
    /// The server sent a frame that is not valid JSON.
    BadFrame(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::BadFrame(e) => write!(f, "unparseable server frame: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        ClientError::Frame(e)
    }
}

impl Client {
    /// Connect to `addr` (e.g. the value of [`crate::Server::addr`]).
    ///
    /// # Errors
    ///
    /// Connection failure.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            max_frame: MAX_FRAME_DEFAULT,
        })
    }

    /// Send one JSON frame.
    ///
    /// # Errors
    ///
    /// Transport failure.
    pub fn send(&mut self, v: &Json) -> Result<(), ClientError> {
        Ok(write_frame(&mut self.stream, &v.to_pretty())?)
    }

    /// Send one raw (possibly malformed) payload — negative tests.
    ///
    /// # Errors
    ///
    /// Transport failure.
    pub fn send_raw(&mut self, payload: &str) -> Result<(), ClientError> {
        Ok(write_frame(&mut self.stream, payload)?)
    }

    /// Receive one event frame.
    ///
    /// # Errors
    ///
    /// Transport failure or an unparseable frame.
    pub fn recv(&mut self) -> Result<Json, ClientError> {
        let text = read_frame(&mut self.stream, self.max_frame)?;
        Json::parse(&text).map_err(ClientError::BadFrame)
    }

    /// Build the `submit` request frame for a batch of
    /// (name, netlist, config) jobs.
    pub fn submit_request(jobs: &[(&str, &Netlist, &FlowConfig)]) -> Json {
        let mut req = Json::obj();
        req.set("kind", Json::Str("submit".into()));
        req.set(
            "jobs",
            Json::Arr(
                jobs.iter()
                    .map(|(name, nl, cfg)| {
                        let mut j = Json::obj();
                        j.set("name", Json::Str((*name).into()));
                        j.set("netlist", Json::Str(snapshot::to_text(nl)));
                        j.set("config", config_json(cfg));
                        j
                    })
                    .collect(),
            ),
        );
        req
    }

    /// Submit one job and block until its `done` event, returning the
    /// streamed `stage` events and the `done` event.
    ///
    /// # Errors
    ///
    /// Transport failure, an unparseable frame, or a server-side
    /// protocol error (`error` event) surfaced as [`ClientError::BadFrame`].
    pub fn convert(
        &mut self,
        name: &str,
        nl: &Netlist,
        cfg: &FlowConfig,
    ) -> Result<(Vec<Json>, Json), ClientError> {
        self.send(&Client::submit_request(&[(name, nl, cfg)]))?;
        let mut stages = Vec::new();
        loop {
            let event = self.recv()?;
            match event.get("event").and_then(Json::as_str) {
                Some("ack") => {}
                Some("stage") => stages.push(event),
                Some("done") => return Ok((stages, event)),
                Some("error") => {
                    return Err(ClientError::BadFrame(event.to_pretty()));
                }
                _ => {}
            }
        }
    }
}
