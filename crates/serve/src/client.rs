//! Blocking client for the daemon: frame-level connect/send/recv plus
//! submit helpers. Used by the load generator and the integration
//! tests; thin enough to double as wire documentation.
//!
//! [`Client::convert_resilient`] is the crash-tolerant entry point: it
//! honors the server's `retry_after_ms` hint on `overloaded` sheds,
//! reconnects and resubmits on transport loss (a SIGKILL'd daemon drops
//! every socket), and spaces attempts with seeded-jittered exponential
//! [`Backoff`] so a fleet of retrying clients doesn't stampede the
//! restarted daemon in lockstep.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use triphase_core::FlowConfig;
use triphase_netlist::{snapshot, Netlist, SplitMix64};

use crate::frame::{read_frame, write_frame, FrameError, MAX_FRAME_DEFAULT};
use crate::json::Json;
use crate::proto::config_json;

/// A blocking connection to the daemon.
pub struct Client {
    stream: TcpStream,
    addr: SocketAddr,
    max_frame: usize,
}

/// Client-side failure: a frame/transport error, an unparseable server
/// frame, or a retry budget exhausted.
#[derive(Debug)]
pub enum ClientError {
    /// Transport/framing failure.
    Frame(FrameError),
    /// The server sent a frame that is not valid JSON.
    BadFrame(String),
    /// [`Client::convert_resilient`] gave up after this many attempts.
    RetriesExhausted(u32),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::BadFrame(e) => write!(f, "unparseable server frame: {e}"),
            ClientError::RetriesExhausted(n) => write!(f, "gave up after {n} attempts"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        ClientError::Frame(e)
    }
}

/// Seeded-jittered exponential backoff: delay doubles per consecutive
/// failure (base 50 ms, cap 5 s), a server `retry_after_ms` hint raises
/// the floor, and the final delay is jittered into `[0.5, 1.0)` of the
/// target so retrying clients decorrelate. Deterministic per seed —
/// the chaos harness replays identical schedules.
pub struct Backoff {
    rng: SplitMix64,
    attempt: u32,
}

impl Backoff {
    const BASE_MS: u64 = 50;
    const CAP_MS: u64 = 5_000;

    /// A backoff schedule seeded for reproducibility.
    pub fn new(seed: u64) -> Backoff {
        Backoff {
            rng: SplitMix64::new(seed),
            attempt: 0,
        }
    }

    /// Consecutive failures so far (reset on success).
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Note a success: the next failure starts the schedule over.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// The next delay: exponential in consecutive failures, floored at
    /// the server's hint when one was given, jittered to `[0.5, 1.0)`.
    pub fn delay(&mut self, hint_ms: Option<u64>) -> Duration {
        let exp = Backoff::BASE_MS
            .saturating_mul(1 << self.attempt.min(10))
            .min(Backoff::CAP_MS);
        // The hint is the server's own drain estimate — trust it even
        // past our cap (it is already clamped server-side).
        let target = exp.max(hint_ms.unwrap_or(0));
        self.attempt = self.attempt.saturating_add(1);
        let unit = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        Duration::from_millis(((0.5 + 0.5 * unit) * target as f64) as u64)
    }
}

impl Client {
    /// Connect to `addr` (e.g. the value of [`crate::Server::addr`]).
    ///
    /// # Errors
    ///
    /// Connection failure.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let addr = stream.peer_addr()?;
        Ok(Client {
            stream,
            addr,
            max_frame: MAX_FRAME_DEFAULT,
        })
    }

    /// Drop the current stream and dial the same address again (the
    /// daemon may have restarted in between).
    ///
    /// # Errors
    ///
    /// Connection failure (e.g. the daemon is still down).
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        let _ = stream.set_nodelay(true);
        self.stream = stream;
        Ok(())
    }

    /// Send one JSON frame.
    ///
    /// # Errors
    ///
    /// Transport failure.
    pub fn send(&mut self, v: &Json) -> Result<(), ClientError> {
        Ok(write_frame(&mut self.stream, &v.to_pretty())?)
    }

    /// Send one raw (possibly malformed) payload — negative tests.
    ///
    /// # Errors
    ///
    /// Transport failure.
    pub fn send_raw(&mut self, payload: &str) -> Result<(), ClientError> {
        Ok(write_frame(&mut self.stream, payload)?)
    }

    /// Receive one event frame.
    ///
    /// # Errors
    ///
    /// Transport failure or an unparseable frame.
    pub fn recv(&mut self) -> Result<Json, ClientError> {
        let text = read_frame(&mut self.stream, self.max_frame)?;
        Json::parse(&text).map_err(ClientError::BadFrame)
    }

    /// Build the `submit` request frame for a batch of
    /// (name, netlist, config) jobs.
    pub fn submit_request(jobs: &[(&str, &Netlist, &FlowConfig)]) -> Json {
        let mut req = Json::obj();
        req.set("kind", Json::Str("submit".into()));
        req.set(
            "jobs",
            Json::Arr(
                jobs.iter()
                    .map(|(name, nl, cfg)| {
                        let mut j = Json::obj();
                        j.set("name", Json::Str((*name).into()));
                        j.set("netlist", Json::Str(snapshot::to_text(nl)));
                        j.set("config", config_json(cfg));
                        j
                    })
                    .collect(),
            ),
        );
        req
    }

    /// Submit one job and block until its `done` event, returning the
    /// streamed `stage` events and the `done` event.
    ///
    /// # Errors
    ///
    /// Transport failure, an unparseable frame, or a server-side
    /// protocol error (`error` event) surfaced as [`ClientError::BadFrame`].
    pub fn convert(
        &mut self,
        name: &str,
        nl: &Netlist,
        cfg: &FlowConfig,
    ) -> Result<(Vec<Json>, Json), ClientError> {
        self.send(&Client::submit_request(&[(name, nl, cfg)]))?;
        let mut stages = Vec::new();
        loop {
            let event = self.recv()?;
            match event.get("event").and_then(Json::as_str) {
                Some("ack") => {}
                Some("stage") => stages.push(event),
                Some("done") => return Ok((stages, event)),
                Some("error") => {
                    return Err(ClientError::BadFrame(event.to_pretty()));
                }
                _ => {}
            }
        }
    }

    /// [`Client::convert`] with retry: an `overloaded` shed waits out
    /// the server's `retry_after_ms` hint and resubmits; a transport
    /// failure (daemon killed, connection reset) reconnects and
    /// resubmits. Both paths sleep a jittered [`Backoff`] delay first.
    /// Resubmission after a crash is safe by design: the flow is
    /// deterministic and memoized, so a replayed job returns the
    /// bit-exact report, from cache wherever the first attempt banked
    /// stages.
    ///
    /// # Errors
    ///
    /// [`ClientError::RetriesExhausted`] after `max_attempts`;
    /// [`ClientError::BadFrame`] on a server-side protocol error
    /// (not retried — resending a malformed request cannot help).
    pub fn convert_resilient(
        &mut self,
        name: &str,
        nl: &Netlist,
        cfg: &FlowConfig,
        backoff: &mut Backoff,
        max_attempts: u32,
    ) -> Result<(Vec<Json>, Json), ClientError> {
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > max_attempts.max(1) {
                return Err(ClientError::RetriesExhausted(attempts - 1));
            }
            match self.convert(name, nl, cfg) {
                Ok((stages, done)) => {
                    let code = done.get("code").and_then(Json::as_str);
                    if code == Some("overloaded") {
                        let hint = done
                            .get("retry_after_ms")
                            .and_then(Json::as_f64)
                            .map(|v| v as u64);
                        std::thread::sleep(backoff.delay(hint));
                        continue;
                    }
                    backoff.reset();
                    return Ok((stages, done));
                }
                Err(ClientError::Frame(_)) => {
                    // The daemon (or just the socket) went away. Keep
                    // reconnecting under backoff until it returns.
                    std::thread::sleep(backoff.delay(None));
                    let _ = self.reconnect();
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_honors_hints_and_replays_per_seed() {
        let mut b = Backoff::new(42);
        let d1 = b.delay(None);
        let d2 = b.delay(None);
        let d3 = b.delay(None);
        // Jitter is [0.5, 1.0) of an exponentially growing target.
        assert!((25..50).contains(&(d1.as_millis() as u64)), "{d1:?}");
        assert!((50..100).contains(&(d2.as_millis() as u64)), "{d2:?}");
        assert!((100..200).contains(&(d3.as_millis() as u64)), "{d3:?}");
        // A server hint raises the floor above the exponential target.
        let mut h = Backoff::new(42);
        let hinted = h.delay(Some(2_000));
        assert!(hinted >= Duration::from_millis(1_000), "{hinted:?}");
        // Deterministic per seed; different seeds decorrelate.
        let (mut x, mut y, mut z) = (Backoff::new(7), Backoff::new(7), Backoff::new(8));
        let xs: Vec<_> = (0..8).map(|_| x.delay(None)).collect();
        let ys: Vec<_> = (0..8).map(|_| y.delay(None)).collect();
        let zs: Vec<_> = (0..8).map(|_| z.delay(None)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        // Reset restarts the schedule.
        x.reset();
        assert_eq!(x.attempts(), 0);
        assert!(x.delay(None) < Duration::from_millis(50));
    }
}
