//! Wire protocol: request parsing, typed protocol errors, and event
//! builders — the JSON schema of the service.
//!
//! Every frame is one JSON document. Requests carry a `"kind"`
//! discriminator (`submit`, `cancel`, `status`, `ping`, `shutdown`);
//! every server frame carries an `"event"` discriminator (`ack`,
//! `queued`, `stage`, `done`, `cancelled`, `status`, `pong`, `bye`,
//! `error`). The schema is versioned ([`PROTOCOL_VERSION`], echoed in
//! `ack`/`status`/`pong`): a request may carry a `"proto"` field, and a
//! mismatch is answered with a typed `bad_request` naming the supported
//! version — never a frame error — so old clients fail cleanly. Error
//! codes are stable strings in the lint/equiv/dfa CLI style — clients
//! match on `code`, never on message text. The resilience additions
//! bring three more codes: `overloaded` (shed at admission, with a
//! `retry_after_ms` hint), `deadline_exceeded`, and `cancelled`.
//!
//! Like those CLIs, malformed input is answered with a typed error, not
//! a panic: every parser in this module returns [`ProtoError`].

use crate::json::Json;
use triphase_core::{
    ActivityCfg, DfaPolicy, EquivPolicy, Error, FlowConfig, FlowReport, LintPolicy, SimBackend,
    VariantResult,
};
use triphase_netlist::{snapshot, Netlist};

/// Wire-schema version, echoed in `ack`, `status`, and `pong` events.
/// v2 added admission control (`overloaded` + `retry_after_ms`,
/// `queued` position events), per-job deadlines and cancellation, and
/// drain-mode shutdown.
pub const PROTOCOL_VERSION: u64 = 2;

/// A typed protocol error: a stable machine-matchable `code` plus a
/// human-readable message, serialized as an `error` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable error code (see the module docs / README table).
    pub code: &'static str,
    /// Human-readable detail; never stable, never matched by clients.
    pub message: String,
}

impl ProtoError {
    fn new(code: &'static str, message: impl Into<String>) -> ProtoError {
        ProtoError {
            code,
            message: message.into(),
        }
    }

    /// Serialize as an `error` event frame.
    pub fn event(&self) -> Json {
        let mut e = Json::obj();
        e.set("event", Json::Str("error".into()));
        e.set("code", Json::Str(self.code.into()));
        e.set("message", Json::Str(self.message.clone()));
        e
    }
}

/// One job of a `submit` request.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Client-chosen display name (defaults to the netlist's own name).
    pub name: String,
    /// The design to convert.
    pub netlist: Netlist,
    /// Flow configuration (defaults + the request's overrides).
    pub cfg: FlowConfig,
    /// Echo the final 3-phase netlist snapshot in the `done` event.
    pub return_netlist: bool,
    /// Approximate queued footprint (snapshot text length), charged
    /// against the queue's byte budget at admission.
    pub est_bytes: usize,
    /// Client deadline. Already folded into `cfg.phase_cfg.time_limit`
    /// (deterministically, at parse time — so memo keys stay stable);
    /// the server also arms a cancellation token with it.
    pub deadline_ms: Option<u64>,
}

/// A parsed request frame.
#[derive(Debug, Clone)]
pub enum Request {
    /// Convert one or more designs (batch submission).
    Submit(Vec<JobRequest>),
    /// Kill a queued or running job by id.
    Cancel {
        /// Server-assigned job id (from the `ack` event).
        job: u64,
    },
    /// Queue/cache/worker statistics.
    Status,
    /// Liveness probe.
    Ping,
    /// Stop the server. `drain: true` (the default) finishes queued and
    /// running jobs first; `false` journals queued jobs for the next
    /// daemon life and stops after running jobs finish.
    Shutdown {
        /// Finish queued work before exiting.
        drain: bool,
    },
}

/// Parse one request frame.
///
/// # Errors
///
/// `bad_json` (not a JSON document), `bad_request` (not an object, a
/// missing/ill-typed field, or an unsupported `proto` version),
/// `unknown_kind`, `bad_netlist` (snapshot text does not parse),
/// `bad_config` (unknown or ill-typed config key).
pub fn parse_request(text: &str) -> Result<Request, ProtoError> {
    let doc = Json::parse(text).map_err(|e| ProtoError::new("bad_json", e))?;
    let Json::Obj(_) = &doc else {
        return Err(ProtoError::new("bad_request", "request must be an object"));
    };
    if let Some(v) = doc.get("proto") {
        let requested = v.as_f64();
        if requested != Some(PROTOCOL_VERSION as f64) {
            return Err(ProtoError::new(
                "bad_request",
                format!(
                    "unsupported protocol version {}; this server speaks version {PROTOCOL_VERSION}",
                    requested.map_or_else(|| "?".to_owned(), |v| format!("{v}"))
                ),
            ));
        }
    }
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::new("bad_request", "missing string field `kind`"))?;
    match kind {
        "submit" => parse_submit(&doc),
        "cancel" => {
            let job = doc
                .get("job")
                .ok_or_else(|| ProtoError::new("bad_request", "cancel requires a `job` id"))
                .and_then(|v| {
                    want_u64(v, "job").map_err(|e| ProtoError::new("bad_request", e.message))
                })?;
            Ok(Request::Cancel { job })
        }
        "status" => Ok(Request::Status),
        "ping" => Ok(Request::Ping),
        "shutdown" => {
            let drain = match doc.get("mode").and_then(Json::as_str) {
                None | Some("drain") => true,
                Some("now") => false,
                Some(other) => {
                    return Err(ProtoError::new(
                        "bad_request",
                        format!("shutdown `mode` must be drain|now, got `{other}`"),
                    ))
                }
            };
            Ok(Request::Shutdown { drain })
        }
        other => Err(ProtoError::new(
            "unknown_kind",
            format!("unknown request kind `{other}`"),
        )),
    }
}

fn parse_submit(doc: &Json) -> Result<Request, ProtoError> {
    let Some(Json::Arr(jobs)) = doc.get("jobs") else {
        return Err(ProtoError::new(
            "bad_request",
            "submit requires an array field `jobs`",
        ));
    };
    if jobs.is_empty() {
        return Err(ProtoError::new("bad_request", "`jobs` must be non-empty"));
    }
    let mut parsed = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        let text = job.get("netlist").and_then(Json::as_str).ok_or_else(|| {
            ProtoError::new(
                "bad_request",
                format!("job {i}: missing string field `netlist` (snapshot text)"),
            )
        })?;
        let netlist = snapshot::from_text(text)
            .map_err(|e| ProtoError::new("bad_netlist", format!("job {i}: {e}")))?;
        let cfg = match job.get("config") {
            Some(c) => parse_config(c)
                .map_err(|e| ProtoError::new(e.code, format!("job {i}: {}", e.message)))?,
            None => FlowConfig::default(),
        };
        let mut cfg = cfg;
        let deadline_ms = match job.get("deadline_ms") {
            None => None,
            Some(v) => {
                let ms = want_u64(v, "deadline_ms").map_err(|e| {
                    ProtoError::new("bad_request", format!("job {i}: {}", e.message))
                })?;
                if ms == 0 {
                    return Err(ProtoError::new(
                        "bad_request",
                        format!("job {i}: `deadline_ms` must be positive"),
                    ));
                }
                Some(ms)
            }
        };
        if let Some(ms) = deadline_ms {
            // Fold the deadline into the ILP wall-clock budget here, at
            // parse time: the budget is a fingerprinted field, so it
            // must be a deterministic function of the request — never of
            // the wall clock remaining when the job reaches a worker.
            let budget = std::time::Duration::from_millis(ms);
            cfg.phase_cfg.time_limit = Some(match cfg.phase_cfg.time_limit {
                Some(existing) => existing.min(budget),
                None => budget,
            });
        }
        let name = job
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or(&netlist.name)
            .to_owned();
        let return_netlist = matches!(job.get("return_netlist"), Some(Json::Bool(true)));
        parsed.push(JobRequest {
            name,
            netlist,
            cfg,
            return_netlist,
            est_bytes: text.len(),
            deadline_ms,
        });
    }
    Ok(Request::Submit(parsed))
}

fn want_u64(v: &Json, key: &str) -> Result<u64, ProtoError> {
    match v.as_f64() {
        Some(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Ok(f as u64),
        _ => Err(ProtoError::new(
            "bad_config",
            format!("`{key}` must be a non-negative integer"),
        )),
    }
}

fn want_usize(v: &Json, key: &str) -> Result<usize, ProtoError> {
    want_u64(v, key).map(|n| n as usize)
}

fn want_f64(v: &Json, key: &str) -> Result<f64, ProtoError> {
    v.as_f64()
        .ok_or_else(|| ProtoError::new("bad_config", format!("`{key}` must be a number")))
}

fn want_bool(v: &Json, key: &str) -> Result<bool, ProtoError> {
    match v {
        Json::Bool(b) => Ok(*b),
        _ => Err(ProtoError::new(
            "bad_config",
            format!("`{key}` must be a boolean"),
        )),
    }
}

/// Parse the request's flow-configuration object: [`FlowConfig`]
/// defaults overridden by the given keys. Unknown keys are rejected
/// (`bad_config`) so schema drift fails loudly instead of silently
/// running with defaults. The fault-injection and checkpoint hooks are
/// deliberately not reachable from the wire.
///
/// # Errors
///
/// `bad_config` on unknown keys or ill-typed values.
pub fn parse_config(obj: &Json) -> Result<FlowConfig, ProtoError> {
    let Json::Obj(fields) = obj else {
        return Err(ProtoError::new("bad_config", "`config` must be an object"));
    };
    let mut cfg = FlowConfig::default();
    for (key, v) in fields {
        match key.as_str() {
            "seed" => cfg.seed = want_u64(v, key)?,
            "sim_cycles" => cfg.sim_cycles = want_u64(v, key)?,
            "equiv_cycles" => cfg.equiv_cycles = want_u64(v, key)?,
            "retime" => cfg.retime = want_bool(v, key)?,
            "retime_target_ratio" => cfg.retime_target_ratio = want_f64(v, key)?,
            "common_enable_cg" => cfg.common_enable_cg = want_bool(v, key)?,
            "m2" => cfg.m2 = want_bool(v, key)?,
            "ddcg" => cfg.ddcg = want_bool(v, key)?,
            "ddcg_threshold" => cfg.ddcg_threshold = want_f64(v, key)?,
            "cg_max_fanout" => cfg.cg_max_fanout = want_usize(v, key)?,
            "pnr_seed" => cfg.pnr.seed = want_u64(v, key)?,
            "pnr_moves_per_cell" => cfg.pnr.moves_per_cell = want_usize(v, key)?,
            "ilp_max_nodes" => cfg.phase_cfg.max_nodes = want_usize(v, key)?,
            "ilp_max_vars" => cfg.phase_cfg.ilp_max_vars = want_usize(v, key)?,
            "activity_enabled" => cfg.activity.enabled = want_bool(v, key)?,
            "activity_cut_budget" => cfg.activity.cut_budget = want_usize(v, key)?,
            "activity_max_correlation_rate" => {
                cfg.activity.max_correlation_rate = want_f64(v, key)?
            }
            "sim_backend" => {
                cfg.sim_backend = match v.as_str() {
                    Some("scalar") => SimBackend::Scalar,
                    Some("packed") => SimBackend::Packed,
                    Some("compiled") => SimBackend::Compiled,
                    _ => {
                        return Err(ProtoError::new(
                            "bad_config",
                            "`sim_backend` must be scalar|packed|compiled",
                        ))
                    }
                }
            }
            "lint" => {
                cfg.lint =
                    parse_policy(v, key, LintPolicy::Off, LintPolicy::Warn, LintPolicy::Deny)?
            }
            "equiv" => {
                cfg.equiv = parse_policy(
                    v,
                    key,
                    EquivPolicy::Off,
                    EquivPolicy::Warn,
                    EquivPolicy::Deny,
                )?
            }
            "dfa" => {
                cfg.dfa = parse_policy(v, key, DfaPolicy::Off, DfaPolicy::Warn, DfaPolicy::Deny)?
            }
            other => {
                return Err(ProtoError::new(
                    "bad_config",
                    format!("unknown config key `{other}`"),
                ))
            }
        }
    }
    Ok(cfg)
}

fn parse_policy<T>(v: &Json, key: &str, off: T, warn: T, deny: T) -> Result<T, ProtoError> {
    match v.as_str() {
        Some("off") => Ok(off),
        Some("warn") => Ok(warn),
        Some("deny") => Ok(deny),
        _ => Err(ProtoError::new(
            "bad_config",
            format!("`{key}` must be off|warn|deny"),
        )),
    }
}

/// Serialize a config back to its wire object (the fields
/// [`parse_config`] accepts, with the activity knobs flattened).
/// Round-trips: `parse_config(&config_json(&cfg))` reproduces `cfg`.
pub fn config_json(cfg: &FlowConfig) -> Json {
    let FlowConfig {
        seed,
        sim_backend,
        sim_cycles,
        equiv_cycles,
        retime,
        retime_target_ratio,
        common_enable_cg,
        m2,
        ddcg,
        ddcg_threshold,
        cg_max_fanout,
        pnr,
        phase_cfg,
        lint,
        equiv,
        dfa,
        activity:
            ActivityCfg {
                enabled,
                cut_budget,
                max_correlation_rate,
            },
        ..
    } = cfg;
    let mut o = Json::obj();
    o.set("seed", Json::Num(*seed as f64));
    o.set("sim_backend", Json::Str(sim_backend.label().into()));
    o.set("sim_cycles", Json::Num(*sim_cycles as f64));
    o.set("equiv_cycles", Json::Num(*equiv_cycles as f64));
    o.set("retime", Json::Bool(*retime));
    o.set("retime_target_ratio", Json::Num(*retime_target_ratio));
    o.set("common_enable_cg", Json::Bool(*common_enable_cg));
    o.set("m2", Json::Bool(*m2));
    o.set("ddcg", Json::Bool(*ddcg));
    o.set("ddcg_threshold", Json::Num(*ddcg_threshold));
    o.set("cg_max_fanout", Json::Num(*cg_max_fanout as f64));
    o.set("pnr_seed", Json::Num(pnr.seed as f64));
    o.set("pnr_moves_per_cell", Json::Num(pnr.moves_per_cell as f64));
    o.set("ilp_max_nodes", Json::Num(phase_cfg.max_nodes as f64));
    o.set("ilp_max_vars", Json::Num(phase_cfg.ilp_max_vars as f64));
    o.set(
        "lint",
        Json::Str(
            match lint {
                LintPolicy::Off => "off",
                LintPolicy::Warn => "warn",
                LintPolicy::Deny => "deny",
            }
            .into(),
        ),
    );
    o.set(
        "equiv",
        Json::Str(
            match equiv {
                EquivPolicy::Off => "off",
                EquivPolicy::Warn => "warn",
                EquivPolicy::Deny => "deny",
            }
            .into(),
        ),
    );
    o.set(
        "dfa",
        Json::Str(
            match dfa {
                DfaPolicy::Off => "off",
                DfaPolicy::Warn => "warn",
                DfaPolicy::Deny => "deny",
            }
            .into(),
        ),
    );
    o.set("activity_enabled", Json::Bool(*enabled));
    o.set("activity_cut_budget", Json::Num(*cut_budget as f64));
    o.set(
        "activity_max_correlation_rate",
        Json::Num(*max_correlation_rate),
    );
    o
}

/// Stable error code for a flow failure ([`triphase_core::Error`]).
pub fn error_code(e: &Error) -> &'static str {
    match e {
        Error::Netlist(_) => "netlist",
        Error::Timing(_) => "timing",
        Error::Sim(_) => "sim",
        Error::Retime(_) => "retime",
        Error::Pnr(_) => "pnr",
        Error::Power(_) => "power",
        Error::BadInput(_) => "bad_input",
        Error::ValidationFailed(_) => "validation_failed",
        Error::Lint(_) => "lint_denied",
        Error::Equiv(_) => "equiv_denied",
        Error::Dfa(_) => "dfa_denied",
        Error::Panic(_) => "panic",
        Error::Checkpoint(_) => "checkpoint",
    }
}

fn num(v: f64) -> Json {
    Json::Num(v)
}

fn variant_json(v: &VariantResult) -> Json {
    let mut o = Json::obj();
    o.set("cells", num(v.stats.cells as f64));
    o.set("ffs", num(v.stats.ffs as f64));
    o.set("latches", num(v.stats.latches as f64));
    o.set("clock_gates", num(v.stats.clock_gates as f64));
    o.set("registers", num(v.registers() as f64));
    o.set("area_um2", num(v.area_um2));
    o.set("clock_sinks", num(v.clock_sinks as f64));
    o.set("clock_buffers", num(v.clock_buffers as f64));
    o.set("wirelength_um", num(v.wirelength_um));
    o.set("worst_setup_slack_ps", num(v.worst_setup_slack_ps));
    o.set("worst_hold_slack_ps", num(v.worst_hold_slack_ps));
    let mut p = Json::obj();
    for (group, g) in [
        ("clock", &v.power.clock),
        ("seq", &v.power.seq),
        ("comb", &v.power.comb),
    ] {
        let mut go = Json::obj();
        go.set("switching_mw", num(g.switching_mw));
        go.set("internal_mw", num(g.internal_mw));
        go.set("leakage_mw", num(g.leakage_mw));
        p.set(group, go);
    }
    p.set("total_mw", num(v.power.total_mw()));
    o.set("power", p);
    o.set("pnr_seconds", num(v.pnr_seconds));
    o.set("sim_seconds", num(v.sim_seconds));
    o
}

/// Serialize a [`FlowReport`] to its wire JSON. Every field that is a
/// deterministic function of (netlist, config) is included; wall-clock
/// fields keep a `_seconds` suffix so [`strip_timings`] can remove them
/// for bit-exactness comparisons.
pub fn report_json(r: &FlowReport) -> Json {
    let mut o = Json::obj();
    o.set("name", Json::Str(r.name.clone()));
    o.set("ff", variant_json(&r.ff));
    o.set("ms", variant_json(&r.ms));
    o.set("three_phase", variant_json(&r.three_phase));
    o.set(
        "preprocess_converted_ffs",
        num(r.preprocess.converted_ffs as f64),
    );
    o.set(
        "preprocess_icgs_inserted",
        num(r.preprocess.icgs_inserted as f64),
    );
    o.set("ilp_cost", num(r.ilp_cost as f64));
    o.set("ilp_optimal", Json::Bool(r.ilp_optimal));
    o.set("ilp_rung", Json::Str(r.ilp_rung.name().into()));
    o.set("ilp_status", Json::Str(r.ilp_status.name().into()));
    o.set("ilp_fallbacks", num(r.ilp_fallbacks as f64));
    o.set("ilp_seconds", num(r.ilp_seconds));
    o.set("sim_backend", Json::Str(r.sim_backend.into()));
    o.set("activity_source", Json::Str(r.activity_source.into()));
    o.set(
        "activity_correlation_rate",
        r.activity_correlation_rate.map_or(Json::Null, num),
    );
    o.set("convert_singles", num(r.convert.singles as f64));
    o.set("convert_back_to_back", num(r.convert.back_to_back as f64));
    o.set("convert_pi_latches", num(r.convert.pi_latches as f64));
    o.set(
        "convert_icgs_duplicated",
        num(r.convert.icgs_duplicated as f64),
    );
    o.set(
        "retime",
        match &r.retime {
            None => Json::Null,
            Some(rt) => {
                let mut t = Json::obj();
                t.set("ran", Json::Bool(rt.ran));
                t.set("fell_back", Json::Bool(rt.fell_back));
                t.set("original_ps", num(rt.original_ps));
                t.set("achieved_ps", num(rt.achieved_ps));
                t.set("met_target", Json::Bool(rt.met_target));
                t.set("movable", num(rt.movable as f64));
                t.set("pinned", num(rt.pinned as f64));
                t.set("p2_after", num(rt.p2_after as f64));
                t
            }
        },
    );
    let mut cg = Json::obj();
    cg.set("common_enable_gated", num(r.cg.common_enable_gated as f64));
    cg.set("m1_cells", num(r.cg.m1_cells as f64));
    cg.set("m2_replaced", num(r.cg.m2_replaced as f64));
    cg.set("ddcg_groups", num(r.cg.ddcg_groups as f64));
    cg.set("ddcg_gated", num(r.cg.ddcg_gated as f64));
    o.set("cg", cg);
    o.set("convert_seconds", num(r.convert_seconds));
    o.set("equiv_ms", r.equiv_ms.map_or(Json::Null, Json::Bool));
    o.set("equiv_3p", r.equiv_3p.map_or(Json::Null, Json::Bool));
    o.set(
        "lint",
        Json::Arr(
            r.lint
                .iter()
                .map(|rep| {
                    let mut l = Json::obj();
                    l.set(
                        "stage",
                        rep.stage
                            .map_or(Json::Null, |s| Json::Str(format!("{s:?}").to_lowercase())),
                    );
                    l.set("clean", Json::Bool(rep.is_clean()));
                    l.set("errors", num(rep.errors().len() as f64));
                    l.set("warnings", num(rep.warnings().len() as f64));
                    l
                })
                .collect(),
        ),
    );
    o.set(
        "equiv_formal",
        Json::Arr(
            r.equiv_formal
                .iter()
                .map(|(stage, outcome)| {
                    let mut e = Json::obj();
                    e.set("stage", Json::Str(stage.clone()));
                    e.set("equivalent", Json::Bool(outcome.verdict.is_equivalent()));
                    e.set("groups", num(outcome.groups as f64));
                    e
                })
                .collect(),
        ),
    );
    o.set(
        "dfa",
        Json::Arr(
            r.dfa
                .iter()
                .map(|rep| {
                    let mut d = Json::obj();
                    d.set("analysis", Json::Str(rep.analysis.into()));
                    d.set(
                        "stage",
                        rep.stage
                            .as_deref()
                            .map_or(Json::Null, |s| Json::Str(s.into())),
                    );
                    d.set("clean", Json::Bool(rep.is_clean()));
                    d.set("findings", num(rep.diagnostics.len() as f64));
                    d
                })
                .collect(),
        ),
    );
    o.set("reg_saving_vs_2ff_pct", num(r.reg_saving_vs_2ff()));
    o.set("reg_saving_vs_ms_pct", num(r.reg_saving_vs_ms()));
    o.set("power_saving_vs_ff_pct", num(r.power_saving_vs_ff()));
    o.set("power_saving_vs_ms_pct", num(r.power_saving_vs_ms()));
    o
}

/// Recursively remove wall-clock fields (`seconds` / `*_seconds` keys)
/// so two report trees can be compared for bit-exactness: timings are
/// the one part of a replayed flow that legitimately differs.
pub fn strip_timings(v: &mut Json) {
    match v {
        Json::Obj(fields) => {
            fields.retain(|(k, _)| k != "seconds" && !k.ends_with("_seconds"));
            for (_, v) in fields {
                strip_timings(v);
            }
        }
        Json::Arr(items) => {
            for item in items {
                strip_timings(item);
            }
        }
        _ => {}
    }
}

/// `ack` event: the server-assigned ids for one submit batch, in job
/// order.
pub fn ack_event(ids: &[u64]) -> Json {
    let mut e = Json::obj();
    e.set("event", Json::Str("ack".into()));
    e.set("proto", Json::Num(PROTOCOL_VERSION as f64));
    e.set(
        "jobs",
        Json::Arr(ids.iter().map(|&id| Json::Num(id as f64)).collect()),
    );
    e
}

/// `queued` event: the job's current position in the admission queue
/// (0 = next to run). Emitted at admission and re-emitted as the queue
/// drains, so a waiting client watches itself advance.
pub fn queued_event(job: u64, position: usize) -> String {
    let mut e = Json::obj();
    e.set("event", Json::Str("queued".into()));
    e.set("job", Json::Num(job as f64));
    e.set("position", Json::Num(position as f64));
    e.to_pretty()
}

/// `stage` progress event: one flow stage of `job` resolved, with its
/// cache key, hit/miss provenance, and how many memo entries this
/// stage's insert evicted (cache-pressure provenance).
pub fn stage_event(
    job: u64,
    stage: &str,
    key: u64,
    hit: bool,
    millis: u64,
    evictions: u64,
) -> Json {
    let mut e = Json::obj();
    e.set("event", Json::Str("stage".into()));
    e.set("job", Json::Num(job as f64));
    e.set("stage", Json::Str(stage.into()));
    e.set("key", Json::Str(format!("{key:016x}")));
    e.set("cache", Json::Str(if hit { "hit" } else { "miss" }.into()));
    e.set("millis", Json::Num(millis as f64));
    e.set("evictions", Json::Num(evictions as f64));
    e
}

/// `done` event for a successful job: the full report, per-stage cache
/// provenance, and (on request) the final 3-phase netlist snapshot.
pub fn done_ok(
    job: u64,
    name: &str,
    report: &FlowReport,
    prov: &[crate::engine::StageProv],
    netlist: Option<&str>,
) -> Json {
    let mut e = Json::obj();
    e.set("event", Json::Str("done".into()));
    e.set("job", Json::Num(job as f64));
    e.set("name", Json::Str(name.into()));
    e.set("ok", Json::Bool(true));
    e.set(
        "cached_report",
        Json::Bool(prov.first().is_some_and(|p| p.stage == "report" && p.hit)),
    );
    e.set(
        "provenance",
        Json::Arr(
            prov.iter()
                .map(|p| {
                    let mut o = Json::obj();
                    o.set("stage", Json::Str(p.stage.into()));
                    o.set("key", Json::Str(format!("{:016x}", p.key)));
                    o.set(
                        "cache",
                        Json::Str(if p.hit { "hit" } else { "miss" }.into()),
                    );
                    o.set("millis", Json::Num(p.millis as f64));
                    o
                })
                .collect(),
        ),
    );
    e.set("report", report_json(report));
    if let Some(text) = netlist {
        e.set("netlist", Json::Str(text.into()));
    }
    e
}

/// `done` event for a failed job: the stable error code plus detail.
pub fn done_err(job: u64, name: &str, code: &str, message: &str) -> Json {
    let mut e = Json::obj();
    e.set("event", Json::Str("done".into()));
    e.set("job", Json::Num(job as f64));
    e.set("name", Json::Str(name.into()));
    e.set("ok", Json::Bool(false));
    e.set("code", Json::Str(code.into()));
    e.set("message", Json::Str(message.into()));
    e
}

/// `done` event for a job shed at admission: code `overloaded` plus the
/// queue depth at shed time and a backoff hint a well-behaved client
/// honors before resubmitting.
pub fn done_overloaded(job: u64, name: &str, queued: usize, retry_after_ms: u64) -> Json {
    let mut e = done_err(
        job,
        name,
        "overloaded",
        &format!("queue full ({queued} jobs waiting); retry after the hinted backoff"),
    );
    e.set("queued", Json::Num(queued as f64));
    e.set("retry_after_ms", Json::Num(retry_after_ms as f64));
    e
}

/// `cancelled` event: answer to a `cancel` request, naming what the
/// cancel actually hit (`queued`, `running`, or `unknown` if the id
/// never existed or already finished).
pub fn cancelled_event(job: u64, state: &str) -> Json {
    let mut e = Json::obj();
    e.set("event", Json::Str("cancelled".into()));
    e.set("job", Json::Num(job as f64));
    e.set("state", Json::Str(state.into()));
    e
}

/// `status` event: queue depth (and parked bytes), worker count,
/// completed-job count, and the two cache tiers'
/// hit/miss/entry/byte/eviction counters.
pub fn status_event(
    queued: usize,
    queued_bytes: usize,
    workers: usize,
    done: u64,
    stage: crate::memo::TierStats,
    report: crate::memo::TierStats,
) -> Json {
    let mut e = Json::obj();
    e.set("event", Json::Str("status".into()));
    e.set("proto", Json::Num(PROTOCOL_VERSION as f64));
    e.set("queued", Json::Num(queued as f64));
    e.set("queued_bytes", Json::Num(queued_bytes as f64));
    e.set("workers", Json::Num(workers as f64));
    e.set("jobs_done", Json::Num(done as f64));
    for (tier, s) in [("stage_cache", stage), ("report_cache", report)] {
        let mut t = Json::obj();
        t.set("hits", Json::Num(s.hits as f64));
        t.set("misses", Json::Num(s.misses as f64));
        t.set("entries", Json::Num(s.entries as f64));
        t.set("bytes", Json::Num(s.bytes as f64));
        t.set("evictions", Json::Num(s.evictions as f64));
        e.set(tier, t);
    }
    e
}

/// `pong` event.
pub fn pong_event() -> Json {
    let mut e = Json::obj();
    e.set("event", Json::Str("pong".into()));
    e.set("proto", Json::Num(PROTOCOL_VERSION as f64));
    e
}

/// `bye` event, acknowledging a shutdown request and echoing the mode
/// the server will honor (`drain` or `now`).
pub fn bye_event(mode: &str) -> Json {
    let mut e = Json::obj();
    e.set("event", Json::Str("bye".into()));
    e.set("mode", Json::Str(mode.into()));
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trips_through_wire_json() {
        let mut cfg = FlowConfig {
            seed: 7,
            sim_cycles: 96,
            equiv_cycles: 128,
            retime: false,
            ddcg_threshold: 0.11,
            lint: LintPolicy::Deny,
            equiv: EquivPolicy::Warn,
            dfa: DfaPolicy::Off,
            sim_backend: SimBackend::Packed,
            ..FlowConfig::default()
        };
        cfg.pnr.moves_per_cell = 3;
        cfg.activity.cut_budget = 9;
        let back = parse_config(&config_json(&cfg)).expect("round-trip parses");
        assert_eq!(
            triphase_core::flow_fingerprint(&triphase_netlist::Netlist::new("x"), &back),
            triphase_core::flow_fingerprint(&triphase_netlist::Netlist::new("x"), &cfg),
            "fingerprinted fields survive"
        );
        assert_eq!(back.lint, LintPolicy::Deny);
        assert_eq!(back.equiv, EquivPolicy::Warn);
        assert_eq!(back.dfa, DfaPolicy::Off);
        assert_eq!(back.equiv_cycles, 128);
        assert_eq!(back.sim_backend, SimBackend::Packed);
    }

    #[test]
    fn unknown_keys_and_kinds_are_typed_errors() {
        let mut o = Json::obj();
        o.set("frobnicate", Json::Num(3.0));
        assert_eq!(parse_config(&o).expect_err("rejects").code, "bad_config");
        assert_eq!(
            parse_request("{\"kind\":\"warp\"}")
                .expect_err("rejects")
                .code,
            "unknown_kind"
        );
        assert_eq!(
            parse_request("[1,2]").expect_err("rejects").code,
            "bad_request"
        );
        assert_eq!(
            parse_request("{nope").expect_err("rejects").code,
            "bad_json"
        );
    }

    #[test]
    fn protocol_mismatch_is_a_typed_bad_request_naming_the_version() {
        let err = parse_request("{\"proto\": 1, \"kind\": \"ping\"}").expect_err("v1 rejected");
        assert_eq!(err.code, "bad_request");
        assert!(
            err.message.contains("version 1") && err.message.contains("version 2"),
            "names both versions: {}",
            err.message
        );
        // The current version, and no version at all, both pass.
        assert!(parse_request("{\"proto\": 2, \"kind\": \"ping\"}").is_ok());
        assert!(parse_request("{\"kind\": \"ping\"}").is_ok());
        // A non-numeric version is still a typed error.
        let err = parse_request("{\"proto\": \"two\", \"kind\": \"ping\"}").expect_err("rejected");
        assert_eq!(err.code, "bad_request");
    }

    #[test]
    fn shutdown_modes_and_cancel_parse() {
        assert!(matches!(
            parse_request("{\"kind\": \"shutdown\"}"),
            Ok(Request::Shutdown { drain: true })
        ));
        assert!(matches!(
            parse_request("{\"kind\": \"shutdown\", \"mode\": \"now\"}"),
            Ok(Request::Shutdown { drain: false })
        ));
        assert_eq!(
            parse_request("{\"kind\": \"shutdown\", \"mode\": \"later\"}")
                .expect_err("rejects")
                .code,
            "bad_request"
        );
        assert!(matches!(
            parse_request("{\"kind\": \"cancel\", \"job\": 7}"),
            Ok(Request::Cancel { job: 7 })
        ));
        assert_eq!(
            parse_request("{\"kind\": \"cancel\"}")
                .expect_err("rejects")
                .code,
            "bad_request"
        );
    }

    #[test]
    fn deadline_folds_into_the_ilp_budget_at_parse_time() {
        let nl = triphase_netlist::Netlist::new("d");
        let text = triphase_netlist::snapshot::to_text(&nl);
        let mut req = Json::obj();
        req.set("kind", Json::Str("submit".into()));
        let mut job = Json::obj();
        job.set("netlist", Json::Str(text.clone()));
        job.set("deadline_ms", Json::Num(250.0));
        req.set("jobs", Json::Arr(vec![job]));
        let Ok(Request::Submit(jobs)) = parse_request(&req.to_pretty()) else {
            unreachable!("submit parses")
        };
        assert_eq!(jobs[0].deadline_ms, Some(250));
        assert_eq!(
            jobs[0].cfg.phase_cfg.time_limit,
            Some(std::time::Duration::from_millis(250))
        );
        assert_eq!(jobs[0].est_bytes, text.len());
        // A zero deadline is rejected, not silently ignored.
        let mut req0 = Json::obj();
        req0.set("kind", Json::Str("submit".into()));
        let mut job0 = Json::obj();
        job0.set("netlist", Json::Str(text));
        job0.set("deadline_ms", Json::Num(0.0));
        req0.set("jobs", Json::Arr(vec![job0]));
        assert_eq!(
            parse_request(&req0.to_pretty()).expect_err("rejects").code,
            "bad_request"
        );
    }

    #[test]
    fn strip_timings_removes_seconds_fields_recursively() {
        let mut v =
            Json::parse("{\"a_seconds\": 1, \"keep\": 2, \"nest\": [{\"seconds\": 3, \"b\": 4}]}")
                .expect("parses");
        strip_timings(&mut v);
        assert_eq!(v.get("a_seconds"), None);
        assert!(v.get("keep").is_some());
        let Some(Json::Arr(items)) = v.get("nest") else {
            unreachable!("nest survives")
        };
        assert_eq!(items[0].get("seconds"), None);
        assert!(items[0].get("b").is_some());
    }
}
