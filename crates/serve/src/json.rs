//! Minimal JSON value, serializer, and parser (std-only).
//!
//! The perf reports (`results/BENCH_sim.json`) are read-merge-written
//! across binaries, so besides serialization we need a small parser; the
//! offline container has no serde, and the subset below (null, bool,
//! finite numbers, strings, arrays, ordered objects) is all the reports
//! use. Objects preserve insertion order so merged files diff cleanly
//! across PRs.

use std::fmt::Write as _;

/// A JSON value. Objects keep key order (insertion order on build,
/// document order on parse).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (serialized via `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Object field by key (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace an object field, preserving key order.
    /// No-op on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(fields) = self {
            match fields.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => fields.push((key.to_owned(), value)),
            }
        }
    }

    /// Number value, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Pretty-print with 2-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| {
            for _ in 0..n {
                out.push_str("  ");
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable message with a byte offset on malformed input,
    /// including documents nested deeper than [`MAX_DEPTH`] — a typed
    /// error instead of unbounded parser recursion (a hostile
    /// `[[[[…]]]]` frame must not overflow the reader thread's stack).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

/// Maximum container nesting the parser accepts. Every request the
/// schema defines fits in a handful of levels; the cap only exists to
/// bound recursion on hostile input.
pub const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!(
            "nesting deeper than {MAX_DEPTH} levels at byte {pos}",
            pos = *pos
        ));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the full scalar.
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let mut doc = Json::obj();
        doc.set("name", "s5378".into());
        doc.set("speedup", 42.5.into());
        doc.set("ok", true.into());
        doc.set(
            "curve",
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Null]),
        );
        let text = doc.to_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("speedup").and_then(Json::as_f64), Some(42.5));
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some("s5378"));
    }

    #[test]
    fn set_replaces_in_place_preserving_order() {
        let mut doc = Json::obj();
        doc.set("a", 1u64.into());
        doc.set("b", 2u64.into());
        doc.set("a", 3u64.into());
        assert_eq!(
            doc,
            Json::Obj(vec![
                ("a".into(), Json::Num(3.0)),
                ("b".into(), Json::Num(2.0))
            ])
        );
    }

    #[test]
    fn escapes_and_integers() {
        let mut doc = Json::obj();
        doc.set("s", "a\"b\\c\nd".into());
        doc.set("n", 1000000u64.into());
        let text = doc.to_pretty();
        assert!(text.contains("\\\"") && text.contains("\\n"));
        assert!(text.contains("1000000") && !text.contains("1000000.0"));
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn deep_nesting_is_a_typed_error_not_a_stack_overflow() {
        // Well inside the cap: fine.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        // One level past the cap: typed error naming the limit.
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = Json::parse(&over).expect_err("over-deep rejected");
        assert!(err.contains("nesting"), "{err}");
        // Grossly hostile: a quarter-million unclosed brackets must be
        // rejected without recursing past the cap.
        let hostile = "[".repeat(250_000);
        assert!(Json::parse(&hostile).is_err());
        let hostile_obj = "{\"a\":".repeat(250_000);
        assert!(Json::parse(&hostile_obj).is_err());
    }
}
