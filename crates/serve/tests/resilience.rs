//! Overload, deadline, cancellation, and drain behavior over real
//! sockets: the daemon sheds excess load with typed `overloaded` +
//! `retry_after_ms`, aborts past-deadline jobs with the last banked
//! stage named, kills queued and running jobs on `cancel`, and keeps
//! serving after a contained worker panic.

use triphase_circuits::pipeline::linear_pipeline;
use triphase_core::FlowConfig;
use triphase_fault::{Fault, FaultPlan};
use triphase_netlist::{snapshot, Netlist};
use triphase_serve::{Client, Json, Server, ServerOptions};

fn quick_cfg() -> FlowConfig {
    let mut cfg = FlowConfig {
        sim_cycles: 16,
        equiv_cycles: 32,
        ..FlowConfig::default()
    };
    cfg.pnr.moves_per_cell = 2;
    cfg
}

fn tiny_server(queue_depth: usize) -> Server {
    Server::start(ServerOptions {
        workers: 1,
        queue_depth,
        ..ServerOptions::default()
    })
    .expect("bind")
}

/// Build a submit frame with per-job extras (deadline etc.) the plain
/// [`Client::submit_request`] helper does not set.
fn submit_with(name: &str, nl: &Netlist, cfg: &FlowConfig, deadline_ms: Option<u64>) -> Json {
    let mut j = Json::obj();
    j.set("name", Json::Str(name.into()));
    j.set("netlist", Json::Str(snapshot::to_text(nl)));
    j.set("config", triphase_serve::proto::config_json(cfg));
    if let Some(ms) = deadline_ms {
        j.set("deadline_ms", Json::Num(ms as f64));
    }
    let mut req = Json::obj();
    req.set("kind", Json::Str("submit".into()));
    req.set("jobs", Json::Arr(vec![j]));
    req
}

fn recv_done_for(client: &mut Client, id: u64) -> Json {
    loop {
        let ev = client.recv().expect("event");
        if ev.get("event").and_then(Json::as_str) == Some("done")
            && ev.get("job").and_then(Json::as_f64) == Some(id as f64)
        {
            return ev;
        }
    }
}

fn acked_ids(ack: &Json) -> Vec<u64> {
    let Some(Json::Arr(ids)) = ack.get("jobs") else {
        panic!("ack without ids: {}", ack.to_pretty());
    };
    ids.iter()
        .filter_map(Json::as_f64)
        .map(|f| f as u64)
        .collect()
}

#[test]
fn overload_sheds_with_retry_hint_and_recovers_after_drain() {
    let server = tiny_server(1);
    let mut client = Client::connect(server.addr()).expect("connect");
    let cfg = quick_cfg();
    let design = linear_pipeline(3, 4, 1, 900.0);

    // A 6-job batch against a depth-1 queue: every reservation happens
    // before any commit, so exactly one job is admitted and five shed.
    let jobs: Vec<(&str, &Netlist, &FlowConfig)> =
        (0..6).map(|_| ("burst", &design, &cfg)).collect();
    client.send(&Client::submit_request(&jobs)).expect("submit");
    let ack = client.recv().expect("ack");
    assert_eq!(ack.get("event").and_then(Json::as_str), Some("ack"));
    let ids = acked_ids(&ack);
    assert_eq!(ids.len(), 6, "ack names every job, shed or not");

    let (mut served, mut shed) = (Vec::new(), Vec::new());
    while served.len() + shed.len() < 6 {
        let ev = client.recv().expect("event");
        if ev.get("event").and_then(Json::as_str) != Some("done") {
            continue;
        }
        if ev.get("ok") == Some(&Json::Bool(true)) {
            served.push(ev);
        } else {
            assert_eq!(
                ev.get("code").and_then(Json::as_str),
                Some("overloaded"),
                "{}",
                ev.to_pretty()
            );
            let hint = ev
                .get("retry_after_ms")
                .and_then(Json::as_f64)
                .expect("retry hint present") as u64;
            assert!((25..=30_000).contains(&hint), "hint in bounds: {hint}");
            shed.push(ev);
        }
    }
    assert_eq!((served.len(), shed.len()), (1, 5));

    // The queue drained: an immediate resubmit is admitted and served
    // (from the report cache, even).
    let (_, done) = client.convert("retry", &design, &cfg).expect("resubmit");
    assert_eq!(done.get("ok"), Some(&Json::Bool(true)));
    server.stop();
    server.wait();
}

#[test]
fn expired_deadline_is_a_typed_error_naming_the_banked_prefix() {
    let server = tiny_server(8);
    let mut client = Client::connect(server.addr()).expect("connect");
    let cfg = quick_cfg();
    let blocker = linear_pipeline(3, 4, 1, 900.0);
    let hurried = linear_pipeline(2, 5, 1, 900.0);

    // Occupy the single worker, then submit a job whose 1 ms deadline
    // is long gone by the time a worker picks it up.
    client
        .send(&Client::submit_request(&[("blocker", &blocker, &cfg)]))
        .expect("submit blocker");
    client
        .send(&submit_with("hurried", &hurried, &cfg, Some(1)))
        .expect("submit hurried");
    let ack1 = client.recv().expect("ack 1");
    let blocker_id = acked_ids(&ack1)[0];
    let mut hurried_id = None;
    let mut blocker_done = None;
    // The second ack and the blocker's done arrive interleaved with the
    // hurried job's events; collect both while waiting.
    let hurried_done = loop {
        let ev = client.recv().expect("event");
        match ev.get("event").and_then(Json::as_str) {
            Some("ack") => hurried_id = Some(acked_ids(&ev)[0]),
            Some("done") => {
                let job = ev.get("job").and_then(Json::as_f64).map(|f| f as u64);
                if job == Some(blocker_id) {
                    blocker_done = Some(ev);
                } else if job == hurried_id {
                    break ev;
                }
            }
            _ => {}
        }
    };
    assert_eq!(
        hurried_done.get("code").and_then(Json::as_str),
        Some("deadline_exceeded"),
        "{}",
        hurried_done.to_pretty()
    );
    let msg = hurried_done
        .get("message")
        .and_then(Json::as_str)
        .expect("message");
    assert!(
        msg.contains("last banked stage: none"),
        "aborted before any stage banked: {msg}"
    );
    // The blocker itself was unaffected (its done landed first — the
    // single worker ran it to completion before even looking at the
    // hurried job).
    let blocker_done = blocker_done.expect("blocker finished before the hurried job");
    assert_eq!(blocker_done.get("ok"), Some(&Json::Bool(true)));
    server.stop();
    server.wait();
}

#[test]
fn cancel_kills_queued_jobs_and_running_jobs_at_stage_boundaries() {
    let server = tiny_server(8);
    let mut client = Client::connect(server.addr()).expect("connect");
    let cfg = quick_cfg();
    // Big enough that its stage pipeline (ILP, retiming) runs long past
    // the cancel round-trip below.
    let big = linear_pipeline(10, 10, 1, 900.0);
    let small = linear_pipeline(2, 3, 1, 900.0);

    client
        .send(&Client::submit_request(&[("big", &big, &cfg)]))
        .expect("submit big");
    let big_id = acked_ids(&client.recv().expect("ack"))[0];
    client
        .send(&Client::submit_request(&[("small", &small, &cfg)]))
        .expect("submit small");

    // Cancel the queued job: its done is typed `cancelled`, and the
    // canceller hears which state the cancel hit.
    let mut small_id = None;
    let mut cancel_sent = false;
    let mut saw_cancelled_queued = false;
    let mut big_started = false;
    loop {
        let ev = client.recv().expect("event");
        match ev.get("event").and_then(Json::as_str) {
            Some("ack") => {
                small_id = Some(acked_ids(&ev)[0]);
                let mut req = Json::obj();
                req.set("kind", Json::Str("cancel".into()));
                req.set("job", Json::Num(acked_ids(&ev)[0] as f64));
                client.send(&req).expect("cancel queued");
                cancel_sent = true;
            }
            Some("cancelled") => {
                let job = ev.get("job").and_then(Json::as_f64).map(|f| f as u64);
                let state = ev.get("state").and_then(Json::as_str);
                if job == small_id {
                    assert_eq!(state, Some("queued"), "{}", ev.to_pretty());
                    saw_cancelled_queued = true;
                } else {
                    assert_eq!(job, Some(big_id));
                    assert_eq!(state, Some("running"), "{}", ev.to_pretty());
                }
            }
            Some("stage")
                if !big_started && ev.get("job").and_then(Json::as_f64) == Some(big_id as f64) =>
            {
                // The big job is provably on a worker: cancel it too.
                big_started = true;
                let mut req = Json::obj();
                req.set("kind", Json::Str("cancel".into()));
                req.set("job", Json::Num(big_id as f64));
                client.send(&req).expect("cancel running");
            }
            Some("done") => {
                let job = ev.get("job").and_then(Json::as_f64).map(|f| f as u64);
                if job == small_id {
                    assert!(cancel_sent);
                    assert_eq!(
                        ev.get("code").and_then(Json::as_str),
                        Some("cancelled"),
                        "{}",
                        ev.to_pretty()
                    );
                } else if job == Some(big_id) {
                    assert_eq!(
                        ev.get("code").and_then(Json::as_str),
                        Some("cancelled"),
                        "{}",
                        ev.to_pretty()
                    );
                    let msg = ev.get("message").and_then(Json::as_str).expect("msg");
                    assert!(msg.contains("last banked stage"), "{msg}");
                    break;
                }
            }
            _ => {}
        }
    }
    assert!(saw_cancelled_queued);

    // Cancelling an unknown id is answered, not ignored.
    let mut req = Json::obj();
    req.set("kind", Json::Str("cancel".into()));
    req.set("job", Json::Num(99_999.0));
    client.send(&req).expect("cancel unknown");
    let ev = client.recv().expect("cancelled event");
    assert_eq!(ev.get("event").and_then(Json::as_str), Some("cancelled"));
    assert_eq!(ev.get("state").and_then(Json::as_str), Some("unknown"));
    server.stop();
    server.wait();
}

#[test]
fn queue_keeps_serving_after_a_contained_worker_panic() {
    let fault = FaultPlan::new(1)
        .inject("flow.stage.retime", Fault::Panic)
        .shared();
    let server = Server::start(ServerOptions {
        workers: 1,
        fault: Some(fault),
        ..ServerOptions::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let cfg = quick_cfg();
    let design = linear_pipeline(3, 4, 1, 900.0);

    let (_, done) = client.convert("victim", &design, &cfg).expect("first run");
    assert_eq!(done.get("code").and_then(Json::as_str), Some("panic"));

    // The daemon survived its worker's panic: control plane still
    // answers, and the resubmission is served to completion (the banked
    // prefix replays; retime's fault site is skipped on a cache hit).
    client
        .send(&Json::parse("{\"kind\": \"ping\"}").expect("ping"))
        .expect("send ping");
    assert_eq!(
        client
            .recv()
            .expect("pong")
            .get("event")
            .and_then(Json::as_str),
        Some("pong")
    );
    let (_, done2) = client.convert("victim", &design, &cfg).expect("second run");
    assert_eq!(
        done2.get("ok"),
        Some(&Json::Bool(true)),
        "{}",
        done2.to_pretty()
    );
    server.stop();
    server.wait();
}

#[test]
fn drain_shutdown_finishes_queued_work_before_stopping() {
    let server = tiny_server(8);
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    let cfg = quick_cfg();
    let designs = [
        linear_pipeline(3, 4, 1, 900.0),
        linear_pipeline(2, 5, 1, 900.0),
    ];
    let jobs: Vec<(&str, &Netlist, &FlowConfig)> =
        designs.iter().map(|nl| ("drainee", nl, &cfg)).collect();
    client.send(&Client::submit_request(&jobs)).expect("submit");
    let ids = acked_ids(&client.recv().expect("ack"));

    // Shutdown in drain mode from a second connection: the bye echoes
    // the mode, and every already-admitted job still completes.
    let mut admin = Client::connect(addr).expect("admin connect");
    admin
        .send(&Json::parse("{\"kind\": \"shutdown\", \"mode\": \"drain\"}").expect("req"))
        .expect("send shutdown");
    let bye = admin.recv().expect("bye");
    assert_eq!(bye.get("event").and_then(Json::as_str), Some("bye"));
    assert_eq!(bye.get("mode").and_then(Json::as_str), Some("drain"));

    for &id in &ids {
        let done = recv_done_for(&mut client, id);
        assert_eq!(
            done.get("ok"),
            Some(&Json::Bool(true)),
            "{}",
            done.to_pretty()
        );
    }
    server.wait();
}
