//! Property tests for the memoization keys.
//!
//! The cache is only sound if a key collision implies an identical
//! stage result and only useful if irrelevant edits don't shift keys:
//!
//! - keys are invariant under re-serialization and whitespace-
//!   equivalent Verilog (the key hashes the canonical snapshot, not the
//!   bytes the client happened to send);
//! - every config field a stage reads moves that stage's key — and
//!   only that stage's;
//! - any netlist content change moves every key;
//! - over the wire, a config edit re-runs only stages at/after the
//!   first divergent fingerprint, asserted via stage-replay provenance.

use triphase_circuits::pipeline::linear_pipeline;
use triphase_core::{stage_key, FlowConfig, Stage};
use triphase_netlist::{snapshot, verilog, Netlist};
use triphase_serve::{report_key, Client, Json, Server, ServerOptions};

const STAGES: [Stage; 4] = [
    Stage::Preprocess,
    Stage::Convert,
    Stage::Retime,
    Stage::ClockGate,
];

fn all_keys(nl: &Netlist, cfg: &FlowConfig) -> Vec<(Stage, u64)> {
    STAGES
        .iter()
        .map(|&s| (s, stage_key(s, nl, cfg, 0)))
        .collect()
}

#[test]
fn keys_invariant_under_reserialization_and_whitespace() {
    let nl = linear_pipeline(3, 4, 1, 900.0);
    let cfg = FlowConfig::default();

    // Snapshot round-trip: parse(to_text(nl)) is the wire path.
    let rt = snapshot::from_text(&snapshot::to_text(&nl)).expect("snapshot round-trip");
    assert_eq!(all_keys(&nl, &cfg), all_keys(&rt, &cfg));
    assert_eq!(report_key(&nl, &cfg), report_key(&rt, &cfg));

    // Whitespace-equivalent Verilog: same design, different bytes.
    let v = verilog::to_verilog(&nl);
    let spaced = v
        .replace(";\n", ";\n\n")
        .replace(", ", ",  ")
        .replace(" (", "  (");
    assert_ne!(v, spaced, "the reformat must actually change the text");
    let a = verilog::from_verilog(&v).expect("verilog parses");
    let b = verilog::from_verilog(&spaced).expect("spaced verilog parses");
    assert_eq!(all_keys(&a, &cfg), all_keys(&b, &cfg));
}

#[test]
fn each_config_field_moves_exactly_the_stages_that_read_it() {
    let nl = linear_pipeline(3, 4, 1, 900.0);
    let base = FlowConfig::default();
    let base_keys = all_keys(&nl, &base);

    // (edited config, stages whose key must move)
    let cases: Vec<(&str, FlowConfig, Vec<Stage>)> = vec![
        (
            "ddcg_threshold",
            FlowConfig {
                ddcg_threshold: 0.5,
                ..base.clone()
            },
            vec![Stage::ClockGate],
        ),
        (
            "retime_target_ratio",
            FlowConfig {
                retime_target_ratio: 0.75,
                ..base.clone()
            },
            vec![Stage::Retime],
        ),
        (
            "cg_max_fanout",
            FlowConfig {
                cg_max_fanout: 8,
                ..base.clone()
            },
            vec![Stage::Preprocess, Stage::ClockGate],
        ),
        (
            "seed",
            FlowConfig {
                seed: 99,
                ..base.clone()
            },
            vec![Stage::ClockGate],
        ),
        (
            "ilp_max_vars",
            {
                let mut c = base.clone();
                c.phase_cfg.ilp_max_vars = 7;
                c
            },
            vec![Stage::Convert],
        ),
        (
            "activity.cut_budget",
            {
                let mut c = base.clone();
                c.activity.cut_budget += 1;
                c
            },
            vec![Stage::Convert, Stage::ClockGate],
        ),
    ];
    for (field, cfg, moved) in cases {
        let keys = all_keys(&nl, &cfg);
        for ((stage, k0), (_, k1)) in base_keys.iter().zip(&keys) {
            if moved.contains(stage) {
                assert_ne!(k0, k1, "{field} must move the {} key", stage.name());
            } else {
                assert_eq!(k0, k1, "{field} must not move the {} key", stage.name());
            }
        }
    }

    // Policy knobs shape the report but not the netlist artifacts: they
    // move the report key while every stage key stays put.
    let policy = FlowConfig {
        lint: triphase_core::LintPolicy::Deny,
        equiv_cycles: base.equiv_cycles + 8,
        ..base.clone()
    };
    assert_eq!(base_keys, all_keys(&nl, &policy));
    assert_ne!(report_key(&nl, &base), report_key(&nl, &policy));
}

#[test]
fn any_netlist_edit_moves_every_key() {
    let cfg = FlowConfig::default();
    let a = linear_pipeline(3, 4, 1, 900.0);
    let b = linear_pipeline(3, 5, 1, 900.0);
    for ((stage, ka), (_, kb)) in all_keys(&a, &cfg).iter().zip(&all_keys(&b, &cfg)) {
        assert_ne!(ka, kb, "content edit must move the {} key", stage.name());
    }
    assert_ne!(report_key(&a, &cfg), report_key(&b, &cfg));

    // The `extra` discriminator (ClockGate folds in the static-activity
    // health bit) separates otherwise-identical inputs.
    assert_ne!(
        stage_key(Stage::ClockGate, &a, &cfg, 0),
        stage_key(Stage::ClockGate, &a, &cfg, 1)
    );
}

/// Over the wire: a config edit re-runs only stages at/after the first
/// divergent fingerprint; everything before replays from the memo.
#[test]
fn edited_resubmission_reruns_only_from_first_divergent_stage() {
    let design = linear_pipeline(3, 4, 1, 900.0);
    let mut cfg = FlowConfig {
        sim_cycles: 16,
        equiv_cycles: 32,
        ..FlowConfig::default()
    };
    cfg.pnr.moves_per_cell = 2;

    let server = Server::start(ServerOptions::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let provenance = |stages: &[Json]| -> Vec<(String, String)> {
        stages
            .iter()
            .map(|e| {
                (
                    e.get("stage")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_owned(),
                    e.get("cache")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_owned(),
                )
            })
            .collect()
    };
    let hit = |s: &str| (s.to_owned(), "hit".to_owned());
    let miss = |s: &str| (s.to_owned(), "miss".to_owned());

    // Cold run: everything misses.
    let (stages, done) = client.convert("cold", &design, &cfg).expect("cold");
    assert_eq!(done.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        provenance(&stages),
        [
            miss("report"),
            miss("preprocess"),
            miss("convert"),
            miss("retime"),
            miss("clockgate")
        ]
    );

    // Edit a clockgate-only knob: divergence begins at the last stage.
    let late = FlowConfig {
        ddcg_threshold: 0.5,
        ..cfg.clone()
    };
    let (stages, done) = client.convert("late-edit", &design, &late).expect("late");
    assert_eq!(done.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        provenance(&stages),
        [
            miss("report"),
            hit("preprocess"),
            hit("convert"),
            hit("retime"),
            miss("clockgate")
        ]
    );

    // Edit a retime knob: divergence begins one stage earlier; the
    // clockgate verdict depends on what the re-run retime produces, so
    // only the prefix is asserted.
    let mid = FlowConfig {
        retime_target_ratio: 0.75,
        ..cfg.clone()
    };
    let (stages, done) = client.convert("mid-edit", &design, &mid).expect("mid");
    assert_eq!(done.get("ok"), Some(&Json::Bool(true)));
    let p = provenance(&stages);
    assert_eq!(
        p[..4],
        [
            miss("report"),
            hit("preprocess"),
            hit("convert"),
            miss("retime")
        ]
    );

    // Edit the netlist itself: the first fingerprint diverges, nothing
    // replays.
    let edited = linear_pipeline(3, 4, 2, 900.0);
    let (stages, done) = client.convert("nl-edit", &edited, &cfg).expect("edited");
    assert_eq!(done.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        provenance(&stages),
        [
            miss("report"),
            miss("preprocess"),
            miss("convert"),
            miss("retime"),
            miss("clockgate")
        ]
    );

    server.stop();
    server.wait();
}
