//! Journal crash-consistency torture: seeded property tests throwing
//! truncated tails, corrupted checksums, and duplicate replays at the
//! journal parser. The invariant under every mutilation: replay never
//! panics, never invents state, and recovers exactly the records whose
//! frames survived intact.

use triphase_core::{stage_key, FlowConfig, PreprocessReport, Stage, StageData};
use triphase_netlist::{snapshot, Netlist, SplitMix64};
use triphase_serve::{proto, AcceptRecord, Journal};

fn design(tag: u64) -> Netlist {
    triphase_circuits::pipeline::linear_pipeline(2 + (tag % 3) as usize, 3, 1, 900.0)
}

fn accept(id: u64) -> AcceptRecord {
    AcceptRecord {
        id,
        name: format!("job-{id}"),
        netlist_text: snapshot::to_text(&design(id)),
        config: proto::config_json(&FlowConfig::default()),
        return_netlist: id.is_multiple_of(2),
        deadline_ms: id.is_multiple_of(3).then_some(5_000 + id),
    }
}

fn stage_entry(tag: u64) -> (u64, StageData) {
    let nl = design(tag);
    let key = stage_key(Stage::Preprocess, &nl, &FlowConfig::default(), 0);
    (
        key ^ tag, // vary the key even when designs repeat
        StageData::Preprocess(
            nl,
            PreprocessReport {
                converted_ffs: tag as usize,
                icgs_inserted: (tag / 2) as usize,
            },
        ),
    )
}

/// Build a journal on disk with `n` interleaved accept/stage/done
/// records and return its text.
fn seeded_journal(seed: u64, n: u64) -> String {
    let dir = std::env::temp_dir().join(format!("triphase_torture_{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("jobs.journal");
    let j = Journal::open(&path).expect("open");
    let mut rng = SplitMix64::new(seed);
    for i in 1..=n {
        match rng.next_u64() % 3 {
            0 => j.append_accept(&accept(i)).expect("accept"),
            1 => {
                let (key, data) = stage_entry(i);
                j.append_stage(key, &data).expect("stage");
            }
            _ => {
                j.append_accept(&accept(i)).expect("accept");
                j.append_done(i, if i % 2 == 0 { "ok" } else { "panic" })
                    .expect("done");
            }
        }
    }
    let text = std::fs::read_to_string(&path).expect("read");
    let _ = std::fs::remove_dir_all(&dir);
    text
}

#[test]
fn truncated_tails_replay_the_longest_intact_prefix_without_panicking() {
    for seed in 1..=5u64 {
        let text = seeded_journal(seed, 12);
        let full = triphase_serve::journal::replay_text(&text);
        assert!(full.pending.len() + full.stages.len() > 0, "seed {seed}");
        let mut rng = SplitMix64::new(seed ^ 0xdead);
        for _ in 0..25 {
            let cut = rng.below(text.len() + 1);
            let replay = triphase_serve::journal::replay_text(&text[..cut]);
            // Monotonicity: a shorter file never yields *more* state.
            assert!(replay.stages.len() <= full.stages.len());
            assert!(replay.next_id <= full.next_id);
            // Every recovered stage is one the intact journal holds.
            for (key, _) in &replay.stages {
                assert!(
                    full.stages.iter().any(|(k, _)| k == key),
                    "seed {seed} cut {cut}: invented stage key {key:016x}"
                );
            }
            // A truncated `done` may resurrect its accept as pending —
            // that is the safe direction (resume, never lose). But a
            // pending job must always be a journaled accept.
            for rec in &replay.pending {
                assert!(
                    rec.id <= 12,
                    "seed {seed} cut {cut}: invented job id {}",
                    rec.id
                );
            }
        }
    }
}

#[test]
fn corrupted_checksum_mid_file_skips_that_record_and_keeps_the_rest() {
    let text = seeded_journal(7, 10);
    let full = triphase_serve::journal::replay_text(&text);
    assert_eq!(full.skipped, 0);
    // Corrupt one payload byte inside each record in turn (not the
    // header: the length prefix is what preserves framing).
    let headers: Vec<usize> = text
        .lines()
        .scan(0usize, |pos, line| {
            let at = *pos;
            *pos += line.len() + 1;
            Some((at, line))
        })
        .filter(|(_, line)| line.starts_with("rec "))
        .map(|(at, line)| at + line.len() + 1)
        .collect();
    assert!(headers.len() >= 10, "one header per record");
    for &payload_start in &headers {
        let mut bytes = text.clone().into_bytes();
        // Flip a payload byte to a same-length, definitely-different one.
        bytes[payload_start] = if bytes[payload_start] == b'x' {
            b'y'
        } else {
            b'x'
        };
        let mutated = String::from_utf8(bytes).expect("still UTF-8");
        let replay = triphase_serve::journal::replay_text(&mutated);
        assert!(
            replay.skipped >= 1,
            "corruption at byte {payload_start} went unnoticed"
        );
        // Everything after the corrupted record still replays: at most
        // one record's worth of state is lost.
        assert!(replay.stages.len() + 1 >= full.stages.len());
        assert!(
            replay.pending.len() + replay.done as usize + 1
                >= full.pending.len() + full.done as usize
        );
        assert_eq!(replay.next_id, full.next_id, "later ids still seen");
    }
}

#[test]
fn duplicate_replay_is_idempotent() {
    let text = seeded_journal(11, 10);
    let once = triphase_serve::journal::replay_text(&text);
    let twice = triphase_serve::journal::replay_text(&format!("{text}{text}"));
    assert_eq!(once.pending.len(), twice.pending.len());
    assert_eq!(
        once.stages.len(),
        twice.stages.len(),
        "stages dedupe by key"
    );
    assert_eq!(once.next_id, twice.next_id);
    assert_eq!(twice.skipped, 0);
    let ids = |r: &triphase_serve::Replay| {
        let mut v: Vec<u64> = r.pending.iter().map(|a| a.id).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(ids(&once), ids(&twice));
}

/// End-to-end: a mid-file-corrupted journal still boots a daemon, and
/// compaction rewrites it clean (second boot replays with zero skips).
#[test]
fn daemon_boots_and_compacts_a_corrupted_journal() {
    let dir = std::env::temp_dir().join("triphase_torture_boot");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("jobs.journal");
    {
        let j = Journal::open(&path).expect("open");
        j.append_accept(&accept(1)).expect("accept");
        let (key, data) = stage_entry(2);
        j.append_stage(key, &data).expect("stage");
        j.append_accept(&accept(3)).expect("accept");
    }
    let mut bytes = std::fs::read(&path).expect("read");
    // Corrupt the first record's payload (byte right after the header).
    let header_end = bytes.iter().position(|&b| b == b'\n').expect("header line") + 1;
    bytes[header_end] = b'#';
    std::fs::write(&path, &bytes).expect("write corrupted");

    let (_, replay) = Journal::open_replay(&path).expect("boot replay");
    assert_eq!(replay.skipped, 1, "the mangled accept is skipped");
    assert_eq!(replay.pending.len(), 1, "the later accept survives");
    assert_eq!(replay.stages.len(), 1, "the stage record survives");

    let again = triphase_serve::journal::replay_text(
        &std::fs::read_to_string(&path).expect("read compacted"),
    );
    assert_eq!(again.skipped, 0, "compaction wrote a clean journal");
    assert_eq!(again.pending.len(), 1);
    assert_eq!(again.stages.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replayed stage payloads are byte-identical through a
/// journal → replay → re-journal round trip (the compaction path).
#[test]
fn stage_payloads_round_trip_byte_identically_through_compaction() {
    let (key, data) = stage_entry(9);
    let text = triphase_core::stage_data_to_text(&data);
    let back = triphase_core::stage_data_from_text(&text).expect("parses");
    assert_eq!(
        triphase_core::stage_data_to_text(&back),
        text,
        "re-serialization is byte-identical"
    );
    // And via the full journal machinery:
    let dir = std::env::temp_dir().join("triphase_torture_roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("jobs.journal");
    Journal::open(&path)
        .expect("open")
        .append_stage(key, &data)
        .expect("stage");
    let (_, replay) = Journal::open_replay(&path).expect("replay");
    assert_eq!(replay.stages.len(), 1);
    assert_eq!(replay.stages[0].0, key);
    assert_eq!(triphase_core::stage_data_to_text(&replay.stages[0].1), text);
    let _ = std::fs::remove_dir_all(&dir);
}
