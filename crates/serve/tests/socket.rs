//! Socket-level integration tests: a daemon spawned in-process on an
//! ephemeral port, exercised through real TCP connections.
//!
//! Certifies the ISSUE's service contract: served reports bit-match a
//! direct [`run_flow`] call, streamed progress events arrive in stage
//! order with cache provenance, batches shard across the queue, and a
//! job killed mid-flow resumes from its last memoized stage when
//! resubmitted.

use triphase_cells::Library;
use triphase_circuits::pipeline::linear_pipeline;
use triphase_core::{run_flow, FlowConfig};
use triphase_fault::{Fault, FaultPlan};
use triphase_serve::{report_json, strip_timings, Client, Json, Server, ServerOptions};

fn quick_cfg() -> FlowConfig {
    let mut cfg = FlowConfig {
        sim_cycles: 16,
        equiv_cycles: 32,
        ..FlowConfig::default()
    };
    cfg.pnr.moves_per_cell = 2;
    cfg
}

fn stage_names(events: &[Json]) -> Vec<String> {
    events
        .iter()
        .filter_map(|e| e.get("stage").and_then(Json::as_str).map(str::to_owned))
        .collect()
}

fn cache_of(event: &Json) -> &str {
    event.get("cache").and_then(Json::as_str).unwrap_or("?")
}

#[test]
fn served_report_bit_matches_direct_run_flow() {
    let design = linear_pipeline(3, 4, 1, 900.0);
    let cfg = quick_cfg();
    let direct = run_flow(&design, &Library::synthetic_28nm(), &cfg).expect("direct flow");

    let server = Server::start(ServerOptions::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let (stages, done) = client.convert("pipe", &design, &cfg).expect("served flow");

    assert_eq!(done.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(done.get("cached_report"), Some(&Json::Bool(false)));

    // Streamed progress: report-tier miss first, then the four flow
    // stages in pipeline order, all misses on a cold cache.
    assert_eq!(
        stage_names(&stages),
        ["report", "preprocess", "convert", "retime", "clockgate"]
    );
    for ev in &stages {
        assert_eq!(
            cache_of(ev),
            "miss",
            "cold run must miss: {}",
            ev.to_pretty()
        );
    }

    // The served report (modulo wall-clock fields) is bit-identical to
    // the direct in-process run: same JSON tree, f64s and all.
    let mut served = done.get("report").cloned().expect("report in done event");
    let mut expected = report_json(&direct);
    strip_timings(&mut served);
    strip_timings(&mut expected);
    assert_eq!(served, expected);

    // Identical resubmission: answered entirely from the report cache,
    // with single-entry provenance and the same stripped report.
    let (stages2, done2) = client.convert("pipe", &design, &cfg).expect("warm flow");
    assert_eq!(stage_names(&stages2), ["report"]);
    assert_eq!(cache_of(&stages2[0]), "hit");
    assert_eq!(done2.get("cached_report"), Some(&Json::Bool(true)));
    let mut served2 = done2.get("report").cloned().expect("cached report");
    strip_timings(&mut served2);
    assert_eq!(served2, expected);

    server.stop();
    server.wait();
}

#[test]
fn batch_submission_acks_then_completes_every_job() {
    let cfg = quick_cfg();
    let designs = [
        linear_pipeline(3, 4, 1, 900.0),
        linear_pipeline(4, 3, 1, 900.0),
        linear_pipeline(2, 5, 1, 900.0),
    ];
    let server = Server::start(ServerOptions {
        workers: 2,
        ..ServerOptions::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let jobs: Vec<(&str, &triphase_netlist::Netlist, &FlowConfig)> =
        designs.iter().map(|nl| ("batch", nl, &cfg)).collect();
    client.send(&Client::submit_request(&jobs)).expect("submit");

    // First frame is the ack carrying one id per job, in order.
    let ack = client.recv().expect("ack");
    assert_eq!(ack.get("event").and_then(Json::as_str), Some("ack"));
    let Some(Json::Arr(ids)) = ack.get("jobs") else {
        panic!("ack without job ids: {}", ack.to_pretty());
    };
    assert_eq!(ids.len(), designs.len());

    // Then a done event per job (stage events interleave freely across
    // the two workers; per-job ordering is covered elsewhere).
    let mut done_ids = Vec::new();
    while done_ids.len() < designs.len() {
        let ev = client.recv().expect("event");
        if ev.get("event").and_then(Json::as_str) == Some("done") {
            assert_eq!(ev.get("ok"), Some(&Json::Bool(true)), "{}", ev.to_pretty());
            done_ids.push(ev.get("job").and_then(Json::as_f64).expect("job id") as u64);
        }
    }
    let mut acked: Vec<u64> = ids
        .iter()
        .filter_map(Json::as_f64)
        .map(|f| f as u64)
        .collect();
    acked.sort_unstable();
    done_ids.sort_unstable();
    assert_eq!(done_ids, acked);

    server.stop();
    server.wait();
}

#[test]
fn killed_job_resumes_from_last_memoized_stage_on_resubmit() {
    let design = linear_pipeline(3, 4, 1, 900.0);
    let cfg = quick_cfg();

    // Arm a deterministic panic at the retime stage's fault site. The
    // site fires *after* the stage result is recorded in the memo store,
    // so the first run dies having banked preprocess/convert/retime.
    let fault = FaultPlan::new(1)
        .inject("flow.stage.retime", Fault::Panic)
        .shared();
    let server = Server::start(ServerOptions {
        workers: 1,
        fault: Some(fault),
        ..ServerOptions::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let (stages, done) = client.convert("victim", &design, &cfg).expect("frames");
    assert_eq!(done.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(done.get("code").and_then(Json::as_str), Some("panic"));
    // Progress up to and including the killed stage was streamed.
    assert_eq!(
        stage_names(&stages),
        ["report", "preprocess", "convert", "retime"]
    );

    // Resubmission: the banked stages replay from the memo (their fault
    // sites are skipped with the recompute), so the job now completes —
    // resuming at clockgate, the first stage after the kill point.
    let (stages2, done2) = client.convert("victim", &design, &cfg).expect("frames");
    assert_eq!(
        done2.get("ok"),
        Some(&Json::Bool(true)),
        "{}",
        done2.to_pretty()
    );
    let per_stage: Vec<(String, String)> = stages2
        .iter()
        .map(|e| {
            (
                stage_names(std::slice::from_ref(e)).remove(0),
                cache_of(e).to_owned(),
            )
        })
        .collect();
    assert_eq!(
        per_stage,
        [
            ("report".to_owned(), "miss".to_owned()),
            ("preprocess".to_owned(), "hit".to_owned()),
            ("convert".to_owned(), "hit".to_owned()),
            ("retime".to_owned(), "hit".to_owned()),
            ("clockgate".to_owned(), "miss".to_owned()),
        ]
    );

    // And the resumed report is still bit-exact vs a clean direct run.
    let direct = run_flow(&design, &Library::synthetic_28nm(), &cfg).expect("direct flow");
    let mut served = done2.get("report").cloned().expect("report");
    let mut expected = report_json(&direct);
    strip_timings(&mut served);
    strip_timings(&mut expected);
    assert_eq!(served, expected);

    server.stop();
    server.wait();
}
