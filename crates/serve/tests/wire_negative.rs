//! Wire-format negative corpus: malformed, truncated, oversized, and
//! hostile frames must come back as typed protocol errors — and the
//! daemon must survive every one of them.

use std::io::Write;
use std::net::TcpStream;

use triphase_serve::{Client, Json, Server, ServerOptions};

fn expect_error(client: &mut Client, payload: &str, code: &str) {
    client.send_raw(payload).expect("send");
    let ev = client.recv().expect("error frame");
    assert_eq!(
        ev.get("event").and_then(Json::as_str),
        Some("error"),
        "for {payload:?}: {}",
        ev.to_pretty()
    );
    assert_eq!(
        ev.get("code").and_then(Json::as_str),
        Some(code),
        "for {payload:?}: {}",
        ev.to_pretty()
    );
}

fn assert_alive(client: &mut Client) {
    client
        .send(&{
            let mut r = Json::obj();
            r.set("kind", Json::Str("ping".into()));
            r
        })
        .expect("ping");
    let ev = client.recv().expect("pong");
    assert_eq!(ev.get("event").and_then(Json::as_str), Some("pong"));
}

#[test]
fn malformed_request_corpus_returns_typed_errors_and_keeps_serving() {
    let server = Server::start(ServerOptions::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let corpus: &[(&str, &str)] = &[
        ("", "bad_json"),
        ("not json at all", "bad_json"),
        ("{\"kind\": \"submit\"", "bad_json"),
        ("[1, 2, 3]", "bad_request"),
        ("42", "bad_request"),
        ("{}", "bad_request"),
        ("{\"kind\": 7}", "bad_request"),
        ("{\"kind\": \"warp\"}", "unknown_kind"),
        (
            "{\"kind\": \"shutdown\", \"mode\": \"eventually\"}",
            "bad_request",
        ),
        ("{\"kind\": \"submit\"}", "bad_request"),
        ("{\"kind\": \"submit\", \"jobs\": []}", "bad_request"),
        ("{\"kind\": \"submit\", \"jobs\": [{}]}", "bad_request"),
        (
            "{\"kind\": \"submit\", \"jobs\": [{\"netlist\": \"gibberish ][\"}]}",
            "bad_netlist",
        ),
    ];
    // An empty-but-valid snapshot, to reach the config parser.
    let empty = "netlist v1\\nname x\\nnets 0\\ncells 0\\nports 0\\nclock none\\nend\\n";
    let config_corpus = [
        (
            format!(
                "{{\"kind\": \"submit\", \"jobs\": [{{\"netlist\": \"{empty}\", \
                 \"config\": {{\"frobnicate\": 1}}}}]}}"
            ),
            "bad_config",
        ),
        (
            format!(
                "{{\"kind\": \"submit\", \"jobs\": [{{\"netlist\": \"{empty}\", \
                 \"config\": {{\"seed\": \"abc\"}}}}]}}"
            ),
            "bad_config",
        ),
        (
            format!(
                "{{\"kind\": \"submit\", \"jobs\": [{{\"netlist\": \"{empty}\", \
                 \"config\": {{\"sim_backend\": \"quantum\"}}}}]}}"
            ),
            "bad_config",
        ),
    ];
    for (payload, code) in corpus
        .iter()
        .map(|(p, c)| ((*p).to_owned(), *c))
        .chain(config_corpus.iter().map(|(p, c)| (p.clone(), *c)))
    {
        expect_error(&mut client, &payload, code);
        // The error is per-frame: the same connection keeps working.
        assert_alive(&mut client);
    }

    server.stop();
    server.wait();
}

/// A pathologically nested payload trips the parser's depth cap as a
/// typed `bad_json` instead of blowing the reader thread's stack.
#[test]
fn deeply_nested_payload_is_rejected_by_the_depth_cap() {
    let server = Server::start(ServerOptions::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    // 4096 nesting levels — far past the cap of 128, far short of any
    // frame-size limit (8 KiB of brackets).
    let bomb = format!("{}{}", "[".repeat(4096), "]".repeat(4096));
    expect_error(&mut client, &bomb, "bad_json");
    assert_alive(&mut client);

    // The object-form bomb takes the other recursion path.
    let bomb = format!("{}1{}", "{\"a\": ".repeat(4096), "}".repeat(4096));
    expect_error(&mut client, &bomb, "bad_json");
    assert_alive(&mut client);

    server.stop();
    server.wait();
}

/// A client speaking a different protocol version gets a typed
/// `bad_request` that names the version the server does speak, and the
/// connection survives to renegotiate.
#[test]
fn protocol_version_mismatch_names_the_supported_version() {
    let server = Server::start(ServerOptions::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    client
        .send_raw("{\"kind\": \"ping\", \"proto\": 1}")
        .expect("send v1 ping");
    let ev = client.recv().expect("error frame");
    assert_eq!(ev.get("event").and_then(Json::as_str), Some("error"));
    assert_eq!(ev.get("code").and_then(Json::as_str), Some("bad_request"));
    let msg = ev.get("message").and_then(Json::as_str).expect("message");
    assert!(
        msg.contains("version 1") && msg.contains("version 2"),
        "names both versions: {msg}"
    );

    // Matching version (and the implicit no-version form) still served.
    client
        .send_raw("{\"kind\": \"ping\", \"proto\": 2}")
        .expect("send v2 ping");
    let ev = client.recv().expect("pong");
    assert_eq!(ev.get("event").and_then(Json::as_str), Some("pong"));
    assert_alive(&mut client);

    server.stop();
    server.wait();
}

#[test]
fn truncated_frame_drops_connection_but_not_the_server() {
    let server = Server::start(ServerOptions::default()).expect("bind");

    // A header promising 100 bytes, then only 3, then a hangup.
    let mut raw = TcpStream::connect(server.addr()).expect("connect");
    raw.write_all(&100u32.to_be_bytes()).expect("header");
    raw.write_all(b"abc").expect("partial payload");
    drop(raw);

    // And a bare header with no payload at all.
    let mut raw = TcpStream::connect(server.addr()).expect("connect");
    raw.write_all(&[0, 0]).expect("half a header");
    drop(raw);

    let mut client = Client::connect(server.addr()).expect("connect after torn peers");
    assert_alive(&mut client);
    server.stop();
    server.wait();
}

#[test]
fn oversized_frame_is_refused_before_buffering() {
    let server = Server::start(ServerOptions {
        max_frame: 1024,
        ..ServerOptions::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    client.send_raw(&"x".repeat(2048)).expect("send oversized");
    let ev = client.recv().expect("error frame");
    assert_eq!(
        ev.get("code").and_then(Json::as_str),
        Some("frame_too_large")
    );

    // The stream can no longer be framed, so the server hangs up —
    // but a fresh connection works.
    let mut fresh = Client::connect(server.addr()).expect("reconnect");
    assert_alive(&mut fresh);
    server.stop();
    server.wait();
}

#[test]
fn non_utf8_payload_is_typed_and_stream_stays_aligned() {
    let server = Server::start(ServerOptions::default()).expect("bind");
    let mut raw = TcpStream::connect(server.addr()).expect("connect");

    raw.write_all(&2u32.to_be_bytes()).expect("header");
    raw.write_all(&[0xff, 0xfe]).expect("hostile payload");
    raw.flush().expect("flush");

    let ev = Json::parse(
        &triphase_serve::read_frame(&mut raw, triphase_serve::MAX_FRAME_DEFAULT).expect("frame"),
    )
    .expect("error event parses");
    assert_eq!(ev.get("code").and_then(Json::as_str), Some("bad_frame"));

    // Same connection, next frame: still served.
    triphase_serve::write_frame(&mut raw, "{\"kind\": \"ping\"}").expect("ping");
    let ev = Json::parse(
        &triphase_serve::read_frame(&mut raw, triphase_serve::MAX_FRAME_DEFAULT).expect("frame"),
    )
    .expect("pong parses");
    assert_eq!(ev.get("event").and_then(Json::as_str), Some("pong"));

    server.stop();
    server.wait();
}
