//! Crash-recovery integration tests: a daemon with a journal is stopped
//! (or never finishes a job), a second daemon opens the same journal,
//! and the service contract survives the restart — banked stages replay
//! from disk, acknowledged jobs resume, and reports stay bit-exact.

use std::path::PathBuf;

use triphase_cells::Library;
use triphase_circuits::pipeline::linear_pipeline;
use triphase_core::{run_flow, FlowConfig};
use triphase_fault::{Fault, FaultPlan};
use triphase_netlist::snapshot;
use triphase_serve::{
    proto, report_json, strip_timings, AcceptRecord, Client, Journal, Json, Server, ServerOptions,
};

fn quick_cfg() -> FlowConfig {
    let mut cfg = FlowConfig {
        sim_cycles: 16,
        equiv_cycles: 32,
        ..FlowConfig::default()
    };
    cfg.pnr.moves_per_cell = 2;
    cfg
}

fn stage_names(events: &[Json]) -> Vec<String> {
    events
        .iter()
        .filter_map(|e| e.get("stage").and_then(Json::as_str).map(str::to_owned))
        .collect()
}

fn caches(events: &[Json]) -> Vec<String> {
    events
        .iter()
        .filter_map(|e| e.get("cache").and_then(Json::as_str).map(str::to_owned))
        .collect()
}

fn journal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("triphase_restart_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(journal: PathBuf) -> ServerOptions {
    ServerOptions {
        workers: 1,
        journal: Some(journal),
        ..ServerOptions::default()
    }
}

/// The PR-9 kill-resume contract, now across a **full daemon restart**:
/// a job killed mid-flow in daemon #1 resumes from its last journaled
/// stage in daemon #2 — same replayed prefix, same bit-exact report a
/// single live daemon would have produced.
#[test]
fn killed_job_resumes_from_journal_across_daemon_restart() {
    let dir = journal_dir("kill");
    let journal = dir.join("jobs.journal");
    let design = linear_pipeline(3, 4, 1, 900.0);
    let cfg = quick_cfg();

    // Daemon #1: a fault kills the job inside the retime stage's fault
    // site — which fires *after* retime's journal/memo record, so the
    // journal holds preprocess, convert, and retime when the job dies.
    let fault = FaultPlan::new(1)
        .inject("flow.stage.retime", Fault::Panic)
        .shared();
    let server = Server::start(ServerOptions {
        fault: Some(fault),
        ..opts(journal.clone())
    })
    .expect("bind #1");
    let mut client = Client::connect(server.addr()).expect("connect #1");
    let (stages, done) = client.convert("pipe", &design, &cfg).expect("killed flow");
    assert_eq!(done.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(done.get("code").and_then(Json::as_str), Some("panic"));
    assert_eq!(
        stage_names(&stages),
        ["report", "preprocess", "convert", "retime"]
    );
    server.stop();
    server.wait();

    // Daemon #2: fresh process state, same journal, no fault. The
    // resubmission must replay every stage daemon #1 banked before
    // dying and only compute clockgate (and the variants) fresh.
    let server = Server::start(opts(journal)).expect("bind #2");
    assert_eq!(server.resumed_jobs(), 0, "the job completed (as a panic)");
    let mut client = Client::connect(server.addr()).expect("connect #2");
    let (stages, done) = client.convert("pipe", &design, &cfg).expect("resumed flow");
    assert_eq!(
        done.get("ok"),
        Some(&Json::Bool(true)),
        "{}",
        done.to_pretty()
    );
    assert_eq!(
        stage_names(&stages),
        ["report", "preprocess", "convert", "retime", "clockgate"]
    );
    assert_eq!(caches(&stages), ["miss", "hit", "hit", "hit", "miss"]);

    let direct = run_flow(&design, &Library::synthetic_28nm(), &cfg).expect("direct flow");
    let mut served = done.get("report").cloned().expect("report");
    let mut expected = report_json(&direct);
    strip_timings(&mut served);
    strip_timings(&mut expected);
    assert_eq!(served, expected, "resumed report bit-matches a direct run");
    server.stop();
    server.wait();
}

/// An acknowledged job whose daemon died before *any* terminal event is
/// re-enqueued at startup and driven to completion — the journal's
/// accept record alone is enough to reconstruct and finish it.
#[test]
fn acknowledged_pending_job_is_resumed_and_finished_after_restart() {
    let dir = journal_dir("pending");
    let path = dir.join("jobs.journal");
    let design = linear_pipeline(2, 3, 1, 900.0);
    let cfg = quick_cfg();
    // Simulate the instant after `accept` hit the disk and the ack hit
    // the wire, with the daemon SIGKILL'd before the job ran: the
    // journal holds the accept record and nothing else.
    {
        let j = Journal::open(&path).expect("open journal");
        j.append_accept(&AcceptRecord {
            id: 41,
            name: "orphan".into(),
            netlist_text: snapshot::to_text(&design),
            config: proto::config_json(&cfg),
            return_netlist: false,
            deadline_ms: None,
        })
        .expect("journal accept");
    }

    let server = Server::start(opts(path)).expect("bind");
    assert_eq!(server.resumed_jobs(), 1, "the orphan is re-enqueued");
    let mut client = Client::connect(server.addr()).expect("connect");
    // The orphan's submitter is gone; watch it finish through status.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        client
            .send(&Json::parse("{\"kind\": \"status\"}").expect("status req"))
            .expect("send");
        let status = client.recv().expect("status");
        let done = status
            .get("jobs_done")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        if done >= 1.0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "orphan never finished: {}",
            status.to_pretty()
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    // Its report landed in the cache under the same key a resubmission
    // computes — the reconnecting client's retry is a pure cache hit,
    // and new ids keep counting past the journaled one.
    let (stages, done) = client.convert("orphan", &design, &cfg).expect("resubmit");
    assert_eq!(done.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(done.get("cached_report"), Some(&Json::Bool(true)));
    assert_eq!(stage_names(&stages), ["report"]);
    assert!(
        done.get("job").and_then(Json::as_f64).unwrap_or(0.0) as u64 > 41,
        "fresh ids continue past the journaled id space"
    );
    server.stop();
    server.wait();
}
