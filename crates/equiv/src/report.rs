//! JSON rendering of equivalence outcomes (hand-rolled, like the lint
//! reports — the workspace carries no serialization dependency).
//!
//! Schema (one object per checked design):
//!
//! ```json
//! {
//!   "design": "s1423",
//!   "check": "conversion",
//!   "verdict": "equivalent" | "not_equivalent" | "unknown",
//!   "method": "chain_induction" | "signal_correspondence" | null,
//!   "structural": true,
//!   "from_cycle": 0,
//!   "groups": 123,
//!   "stats": {"aig_nodes": 1, "sat_calls": 0, "conflicts": 0, "refinements": 0},
//!   "mismatch": {"cycle": 3, "port": "q", "expected": "1", "actual": "0"} | null,
//!   "reason": "..." | null
//! }
//! ```

use crate::check::{EquivOutcome, Method, Verdict};

/// Render one outcome as a JSON object.
pub fn to_json(design: &str, check: &str, outcome: &EquivOutcome) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"design\":{},", json_str(design)));
    out.push_str(&format!("\"check\":{},", json_str(check)));
    let (verdict, method, structural, from_cycle, mismatch, reason) = match &outcome.verdict {
        Verdict::Equivalent {
            method,
            structural,
            from_cycle,
        } => (
            "equivalent",
            Some(*method),
            *structural,
            Some(*from_cycle),
            None,
            None,
        ),
        Verdict::NotEquivalent { mismatch, .. } => {
            ("not_equivalent", None, false, None, Some(mismatch), None)
        }
        Verdict::Unknown { reason, .. } => ("unknown", None, false, None, None, Some(reason)),
    };
    out.push_str(&format!("\"verdict\":{},", json_str(verdict)));
    out.push_str(&format!(
        "\"method\":{},",
        match method {
            Some(Method::ChainInduction) => json_str("chain_induction"),
            Some(Method::SignalCorrespondence) => json_str("signal_correspondence"),
            None => "null".to_owned(),
        }
    ));
    out.push_str(&format!("\"structural\":{structural},"));
    out.push_str(&format!(
        "\"from_cycle\":{},",
        from_cycle.map_or("null".to_owned(), |c| c.to_string())
    ));
    out.push_str(&format!("\"groups\":{},", outcome.groups));
    out.push_str(&format!(
        "\"stats\":{{\"aig_nodes\":{},\"sat_calls\":{},\"conflicts\":{},\"refinements\":{}}},",
        outcome.stats.aig_nodes,
        outcome.stats.sat_calls,
        outcome.stats.conflicts,
        outcome.stats.refinements
    ));
    match mismatch {
        Some(m) => out.push_str(&format!(
            "\"mismatch\":{{\"cycle\":{},\"port\":{},\"expected\":{},\"actual\":{}}},",
            m.cycle,
            json_str(&m.port),
            json_str(&format!("{:?}", m.expected)),
            json_str(&format!("{:?}", m.actual))
        )),
        None => out.push_str("\"mismatch\":null,"),
    }
    out.push_str(&format!(
        "\"reason\":{}",
        reason.map_or("null".to_owned(), |r| json_str(r))
    ));
    out.push('}');
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
