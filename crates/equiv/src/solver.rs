//! A from-scratch CDCL SAT solver and a lazy Tseitin encoder for AIG cones.
//!
//! Features: two-literal watches, first-UIP conflict learning, VSIDS-style
//! activity with an indexed max-heap, phase saving, and Luby restarts.
//! There is no clause-database reduction: the instances produced by the
//! equivalence engines are miter-shaped and either fold away structurally
//! or stay small enough that deletion is not worth the bookkeeping.

use crate::aig::{Aig, Lit as ALit, Node, FALSE, TRUE};

/// Solver literal: `var << 1 | negated`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SLit(pub u32);

impl SLit {
    pub fn pos(v: u32) -> SLit {
        SLit(v << 1)
    }
    pub fn neg(v: u32) -> SLit {
        SLit(v << 1 | 1)
    }
    fn var(self) -> u32 {
        self.0 >> 1
    }
    fn sign(self) -> bool {
        self.0 & 1 == 1
    }
    fn not(self) -> SLit {
        SLit(self.0 ^ 1)
    }
    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    Sat,
    Unsat,
}

const UNASSIGNED: i8 = 2;

struct Clause {
    lits: Vec<SLit>,
}

/// Indexed max-heap ordering variables by activity.
struct VarHeap {
    heap: Vec<u32>,
    pos: Vec<i32>,
}

impl VarHeap {
    fn new(n: usize) -> Self {
        VarHeap {
            heap: (0..n as u32).collect(),
            pos: (0..n as i32).collect(),
        }
    }

    fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] >= 0
    }

    fn up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let p = (i - 1) / 2;
            if act[self.heap[i] as usize] <= act[self.heap[p] as usize] {
                break;
            }
            self.swap(i, p);
            i = p;
        }
    }

    fn down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            if l >= self.heap.len() {
                break;
            }
            let r = l + 1;
            let c =
                if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[l] as usize] {
                    r
                } else {
                    l
                };
            if act[self.heap[c] as usize] <= act[self.heap[i] as usize] {
                break;
            }
            self.swap(i, c);
            i = c;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a as i32;
        self.pos[self.heap[b] as usize] = b as i32;
    }

    fn push(&mut self, v: u32, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.up(self.heap.len() - 1, act);
    }

    fn pop(&mut self, act: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().unwrap();
        self.pos[top as usize] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.down(0, act);
        }
        Some(top)
    }

    fn bumped(&mut self, v: u32, act: &[f64]) {
        let p = self.pos[v as usize];
        if p >= 0 {
            self.up(p as usize, act);
        }
    }

    /// Register a new variable (initial activity zero → appended as a leaf).
    fn add_var(&mut self) {
        let v = self.pos.len() as u32;
        self.pos.push(self.heap.len() as i32);
        self.heap.push(v);
    }
}

pub struct Solver {
    clauses: Vec<Clause>,
    /// Watch lists: clause indices watching each literal.
    watches: Vec<Vec<u32>>,
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<i32>,
    trail: Vec<SLit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: VarHeap,
    saved_phase: Vec<bool>,
    /// Set when an added clause is empty or conflicts at level 0.
    unsat: bool,
    pub conflicts: u64,
    pub decisions: u64,
    pub propagations: u64,
}

impl Solver {
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: VarHeap::new(0),
            saved_phase: Vec::new(),
            unsat: false,
            conflicts: 0,
            decisions: 0,
            propagations: 0,
        }
    }

    pub fn new_var(&mut self) -> u32 {
        let v = self.assign.len() as u32;
        self.assign.push(UNASSIGNED);
        self.level.push(0);
        self.reason.push(-1);
        self.activity.push(0.0);
        self.saved_phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.add_var();
        v
    }

    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    fn value(&self, l: SLit) -> i8 {
        let a = self.assign[l.var() as usize];
        if a == UNASSIGNED {
            UNASSIGNED
        } else {
            a ^ i8::from(l.sign())
        }
    }

    /// Add a clause. Literals must refer to existing variables.
    pub fn add_clause(&mut self, lits: &[SLit]) {
        if self.unsat {
            return;
        }
        debug_assert!(self.trail_lim.is_empty());
        // Deduplicate and drop clauses that are trivially true.
        let mut c: Vec<SLit> = Vec::with_capacity(lits.len());
        for &l in lits {
            if self.value(l) == 1 {
                return;
            }
            if self.value(l) == 0 {
                continue; // falsified at level 0
            }
            if c.contains(&l.not()) {
                return;
            }
            if !c.contains(&l) {
                c.push(l);
            }
        }
        match c.len() {
            0 => self.unsat = true,
            1 => {
                self.enqueue(c[0], -1);
                if self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[c[0].not().index()].push(idx);
                self.watches[c[1].not().index()].push(idx);
                self.clauses.push(Clause { lits: c });
            }
        }
    }

    fn enqueue(&mut self, l: SLit, reason: i32) {
        debug_assert_eq!(self.value(l), UNASSIGNED);
        let v = l.var() as usize;
        self.assign[v] = i8::from(!l.sign());
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.saved_phase[v] = !l.sign();
        self.trail.push(l);
    }

    /// Unit propagation; returns a conflicting clause index if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.prop_head < self.trail.len() {
            let l = self.trail[self.prop_head];
            self.prop_head += 1;
            self.propagations += 1;
            // Clauses watching ¬l may become unit or conflicting.
            let mut ws = std::mem::take(&mut self.watches[l.index()]);
            let mut keep = 0;
            'clauses: for wi in 0..ws.len() {
                let ci = ws[wi];
                let falsified = l.not();
                // Ensure falsified literal sits at position 1.
                {
                    let cl = &mut self.clauses[ci as usize];
                    if cl.lits[0] == falsified {
                        cl.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[ci as usize].lits[0];
                if self.value(first) == 1 {
                    ws[keep] = ci;
                    keep += 1;
                    continue;
                }
                // Look for a replacement watch.
                let len = self.clauses[ci as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci as usize].lits[k];
                    if self.value(lk) != 0 {
                        self.clauses[ci as usize].lits.swap(1, k);
                        self.watches[lk.not().index()].push(ci);
                        continue 'clauses;
                    }
                }
                // No replacement: clause is unit or conflicting.
                ws[keep] = ci;
                keep += 1;
                if self.value(first) == 0 {
                    for j in wi + 1..ws.len() {
                        ws[keep] = ws[j];
                        keep += 1;
                    }
                    ws.truncate(keep);
                    self.watches[l.index()] = ws;
                    return Some(ci);
                }
                self.enqueue(first, ci as i32);
            }
            ws.truncate(keep);
            self.watches[l.index()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: u32) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.bumped(v, &self.activity);
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backtrack level).
    fn analyze(&mut self, confl: u32) -> (Vec<SLit>, usize) {
        let mut seen = vec![false; self.assign.len()];
        let mut learnt: Vec<SLit> = vec![SLit(0)]; // slot 0 for the UIP
        let mut counter = 0usize;
        let mut clause = confl as i32;
        let mut trail_idx = self.trail.len();
        let cur_level = self.trail_lim.len() as u32;
        let mut uip = None;
        loop {
            debug_assert!(clause >= 0);
            let start = usize::from(uip.is_some());
            let lits: Vec<SLit> = self.clauses[clause as usize].lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if !seen[v as usize] && self.level[v as usize] > 0 {
                    seen[v as usize] = true;
                    self.bump_var(v);
                    if self.level[v as usize] == cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail back to the next marked literal.
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if seen[l.var() as usize] {
                    uip = Some(l);
                    seen[l.var() as usize] = false;
                    clause = self.reason[l.var() as usize];
                    break;
                }
            }
            counter -= 1;
            if counter == 0 {
                break;
            }
        }
        learnt[0] = uip.unwrap().not();
        // Backtrack to the second-highest level in the learnt clause.
        let bt = learnt[1..]
            .iter()
            .map(|l| self.level[l.var() as usize] as usize)
            .max()
            .unwrap_or(0);
        // Move a literal of the backtrack level into watch position 1.
        if learnt.len() > 1 {
            let pos = learnt[1..]
                .iter()
                .position(|l| self.level[l.var() as usize] as usize == bt)
                .unwrap()
                + 1;
            learnt.swap(1, pos);
        }
        (learnt, bt)
    }

    fn backtrack(&mut self, level: usize) {
        while self.trail_lim.len() > level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = l.var();
                self.assign[v as usize] = UNASSIGNED;
                self.reason[v as usize] = -1;
                self.heap.push(v, &self.activity);
            }
        }
        self.prop_head = self.trail.len();
    }

    fn decide(&mut self) -> bool {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assign[v as usize] == UNASSIGNED {
                self.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let phase = self.saved_phase[v as usize];
                let l = if phase { SLit::pos(v) } else { SLit::neg(v) };
                self.enqueue(l, -1);
                return true;
            }
        }
        false
    }

    /// Luby sequence value (1-indexed).
    fn luby(mut i: u64) -> u64 {
        loop {
            let mut k = 1u32;
            while (1u64 << k) - 1 < i {
                k += 1;
            }
            if (1u64 << k) - 1 == i {
                return 1 << (k - 1);
            }
            i -= (1 << (k - 1)) - 1;
        }
    }

    pub fn solve(&mut self) -> Verdict {
        if self.unsat {
            return Verdict::Unsat;
        }
        if self.propagate().is_some() {
            self.unsat = true;
            return Verdict::Unsat;
        }
        let mut restart_num = 1u64;
        let mut budget = 64 * Self::luby(restart_num);
        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    return Verdict::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack(bt);
                self.var_inc *= 1.0 / 0.95;
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], -1);
                } else {
                    let idx = self.clauses.len() as u32;
                    self.watches[learnt[0].not().index()].push(idx);
                    self.watches[learnt[1].not().index()].push(idx);
                    let unit = learnt[0];
                    self.clauses.push(Clause { lits: learnt });
                    self.enqueue(unit, idx as i32);
                }
                if budget > 0 {
                    budget -= 1;
                    if budget == 0 {
                        restart_num += 1;
                        budget = 64 * Self::luby(restart_num);
                        self.backtrack(0);
                    }
                }
            } else if !self.decide() {
                return Verdict::Sat;
            }
        }
    }

    /// Model value of a variable after a `Sat` verdict.
    pub fn model(&self, v: u32) -> bool {
        self.assign[v as usize] == 1
    }
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

/// Lazy Tseitin encoder: maps only the AIG nodes reachable from asserted
/// or constrained literals into solver variables.
pub struct CnfBuilder {
    pub solver: Solver,
    node_var: Vec<i32>,
}

impl CnfBuilder {
    pub fn new(aig: &Aig) -> Self {
        CnfBuilder {
            solver: Solver::new(),
            node_var: vec![-1; aig.len()],
        }
    }

    fn lit(&mut self, aig: &Aig, l: ALit) -> SLit {
        let v = self.encode_node(aig, l.node());
        if l.neg() {
            SLit::neg(v)
        } else {
            SLit::pos(v)
        }
    }

    fn encode_node(&mut self, aig: &Aig, root: u32) -> u32 {
        if self.node_var[root as usize] >= 0 {
            return self.node_var[root as usize] as u32;
        }
        // Iterative DFS so deep BMC unrollings cannot overflow the stack.
        let mut stack = vec![(root, false)];
        while let Some((n, expanded)) = stack.pop() {
            if self.node_var[n as usize] >= 0 {
                continue;
            }
            match aig.node(n) {
                Node::Const => {
                    let v = self.solver.new_var();
                    self.node_var[n as usize] = v as i32;
                    self.solver.add_clause(&[SLit::neg(v)]);
                }
                Node::Var => {
                    let v = self.solver.new_var();
                    self.node_var[n as usize] = v as i32;
                }
                Node::And(a, b) => {
                    if expanded {
                        let v = self.solver.new_var();
                        self.node_var[n as usize] = v as i32;
                        let la = self.slit_of(a);
                        let lb = self.slit_of(b);
                        self.solver.add_clause(&[SLit::neg(v), la]);
                        self.solver.add_clause(&[SLit::neg(v), lb]);
                        self.solver.add_clause(&[SLit::pos(v), la.not(), lb.not()]);
                    } else {
                        stack.push((n, true));
                        stack.push((a.node(), false));
                        stack.push((b.node(), false));
                    }
                }
            }
        }
        self.node_var[root as usize] as u32
    }

    fn slit_of(&self, l: ALit) -> SLit {
        let v = self.node_var[l.node() as usize] as u32;
        if l.neg() {
            SLit::neg(v)
        } else {
            SLit::pos(v)
        }
    }

    /// Assert that `l` holds.
    pub fn assert_true(&mut self, aig: &Aig, l: ALit) {
        if l == TRUE {
            return;
        }
        if l == FALSE {
            self.solver.add_clause(&[]);
            return;
        }
        let sl = self.lit(aig, l);
        self.solver.add_clause(&[sl]);
    }

    /// Constrain `a == b` (used for entry-state equality assumptions).
    pub fn assert_equal(&mut self, aig: &Aig, a: ALit, b: ALit) {
        if a == b {
            return;
        }
        if a == b.not() {
            self.solver.add_clause(&[]);
            return;
        }
        if a.is_const() {
            let l = if a == TRUE { b } else { b.not() };
            self.assert_true(aig, l);
            return;
        }
        if b.is_const() {
            let l = if b == TRUE { a } else { a.not() };
            self.assert_true(aig, l);
            return;
        }
        let sa = self.lit(aig, a);
        let sb = self.lit(aig, b);
        self.solver.add_clause(&[sa.not(), sb]);
        self.solver.add_clause(&[sa, sb.not()]);
    }

    pub fn solve(&mut self) -> Verdict {
        self.solver.solve()
    }

    /// Model value of an AIG literal; unmapped nodes default to false.
    pub fn model_lit(&self, l: ALit) -> bool {
        let mv = self.node_var[l.node() as usize];
        // Unmapped nodes (including the constant node 0) default to false.
        let base = mv >= 0 && self.solver.model(mv as u32);
        base ^ l.neg()
    }

    /// Whether an AIG node was pulled into the CNF.
    pub fn is_mapped(&self, node: u32) -> bool {
        self.node_var[node as usize] >= 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triphase_netlist::SplitMix64;

    fn lits(spec: &[i32]) -> Vec<SLit> {
        spec.iter()
            .map(|&x| {
                let v = x.unsigned_abs() - 1;
                if x > 0 {
                    SLit::pos(v)
                } else {
                    SLit::neg(v)
                }
            })
            .collect()
    }

    fn solver_with(nvars: usize, cls: &[&[i32]]) -> Solver {
        let mut s = Solver::new();
        for _ in 0..nvars {
            s.new_var();
        }
        for c in cls {
            let c = lits(c);
            s.add_clause(&c);
        }
        s
    }

    #[test]
    fn trivial_sat_unsat() {
        let mut s = solver_with(1, &[&[1]]);
        assert_eq!(s.solve(), Verdict::Sat);
        assert!(s.model(0));
        let mut s = solver_with(1, &[&[1], &[-1]]);
        assert_eq!(s.solve(), Verdict::Unsat);
    }

    #[test]
    fn chain_implication() {
        // x1 & (x1 -> x2) & ... & (x9 -> x10) & !x10 is UNSAT.
        let mut s = Solver::new();
        for _ in 0..10 {
            s.new_var();
        }
        s.add_clause(&lits(&[1]));
        for i in 1..10 {
            s.add_clause(&lits(&[-i, i + 1]));
        }
        s.add_clause(&lits(&[-10]));
        assert_eq!(s.solve(), Verdict::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // Pigeon i in hole j is var p(i,j); 3 pigeons, 2 holes.
        let p = |i: i32, j: i32| i * 2 + j + 1;
        let mut cls: Vec<Vec<i32>> = (0..3).map(|i| vec![p(i, 0), p(i, 1)]).collect();
        for j in 0..2 {
            for a in 0..3 {
                for b in a + 1..3 {
                    cls.push(vec![-p(a, j), -p(b, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = cls.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(6, &refs);
        assert_eq!(s.solve(), Verdict::Unsat);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        let mut rng = SplitMix64(7);
        for case in 0..40 {
            let nvars = 3 + rng.range(0, 8);
            let ncls = rng.range(1, 30);
            let cls: Vec<Vec<i32>> = (0..ncls)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = rng.range(0, nvars) as i32 + 1;
                            if rng.next_bit() {
                                v
                            } else {
                                -v
                            }
                        })
                        .collect()
                })
                .collect();
            let brute = (0..1u64 << nvars).any(|m| {
                cls.iter().all(|c| {
                    c.iter()
                        .any(|&l| ((m >> (l.unsigned_abs() - 1)) & 1 == 1) == (l > 0))
                })
            });
            let refs: Vec<&[i32]> = cls.iter().map(|c| c.as_slice()).collect();
            let mut s = solver_with(nvars, &refs);
            let got = s.solve() == Verdict::Sat;
            assert_eq!(got, brute, "case {case}: {cls:?}");
            if got {
                // The reported model must satisfy every clause.
                for c in &cls {
                    assert!(
                        c.iter().any(|&l| s.model(l.unsigned_abs() - 1) == (l > 0)),
                        "case {case}: model violates {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn tseitin_encodes_aig_miters() {
        // xor(a,b) built two ways must be provably equivalent: miter UNSAT.
        let mut g = Aig::new();
        let a = g.var();
        let b = g.var();
        let x1 = g.xor(a, b);
        let t0 = g.or(a, b);
        let t1 = g.and(a, b);
        let x2 = g.and(t0, t1.not());
        let miter = g.xor(x1, x2);
        // Structural hashing may already fold this; force the SAT path by
        // asserting the miter when non-constant.
        if miter != FALSE {
            let mut c = CnfBuilder::new(&g);
            c.assert_true(&g, miter);
            assert_eq!(c.solve(), Verdict::Unsat);
        }
        // A genuinely satisfiable miter: xor(a,b) vs or(a,b) differ at a=b=1.
        let bad = g.xor(x1, t0);
        let mut c = CnfBuilder::new(&g);
        c.assert_true(&g, bad);
        assert_eq!(c.solve(), Verdict::Sat);
        let va = c.model_lit(a);
        let vb = c.model_lit(b);
        assert_ne!(va ^ vb, va || vb);
    }

    #[test]
    fn equality_assumptions_constrain_models() {
        let mut g = Aig::new();
        let a = g.var();
        let b = g.var();
        let c_var = g.var();
        let f = g.and(a, b);
        let mut c = CnfBuilder::new(&g);
        // Assume a == c and assert f && !c: forces b=1, a=1, c=1 conflict? No:
        // f=a&b true means a=1; a==c means c=1; !c contradicts. UNSAT.
        c.assert_equal(&g, a, c_var);
        c.assert_true(&g, f);
        c.assert_true(&g, c_var.not());
        assert_eq!(c.solve(), Verdict::Unsat);
    }
}
