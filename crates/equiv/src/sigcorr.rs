//! Simulation-seeded signal correspondence (van Eijk) for designs with
//! no structural chain map — chiefly the converted design against its
//! retimed version, where moved registers correspond to *combinational*
//! nets of the other design at cycle boundaries.
//!
//! Candidate classes are seeded by concrete lockstep simulation: both
//! designs are driven with identical pseudo-random input streams and
//! every net (plus every clock-gate enable state) is sampled at each
//! cycle boundary. Signals with identical sample vectors — up to
//! complementation — form a candidate class; the constant-false signal
//! participates, so stuck nets class with it. The induction engine then
//! refines classes on SAT counterexamples until the invariant is
//! inductive, and a bounded base check anchors it at the warmup boundary.

use crate::engine::{Group, Member, Side, Sig};
use crate::error::Result;
use std::collections::HashMap;
use triphase_cells::CellKind;
use triphase_netlist::Netlist;
use triphase_sim::{data_inputs, CompiledSim, Logic, Stream};

/// Seeding parameters.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SeedOptions {
    /// Independent pseudo-random runs.
    pub seeds: u64,
    /// Cycles per run.
    pub cycles: usize,
    /// Boundary index from which samples feed class construction;
    /// earlier cycles only probe the flush depth `W`.
    pub warmup_cap: usize,
}

impl Default for SeedOptions {
    fn default() -> Self {
        SeedOptions {
            seeds: 4,
            cycles: 96,
            warmup_cap: 16,
        }
    }
}

fn sample_bool(v: Logic) -> bool {
    v == Logic::One
}

/// Run lockstep simulations and build candidate classes plus the flush
/// depth `W`: the first boundary from which every class held concretely
/// in all runs.
pub(crate) fn seed_classes(
    a_nl: &Netlist,
    b_nl: &Netlist,
    opts: &SeedOptions,
) -> Result<(Vec<Group>, usize)> {
    let in_a = data_inputs(a_nl);
    let in_b = data_inputs(b_nl);

    // Atoms: the constant, every net, every stateful clock gate.
    let mut atoms: Vec<Sig> = vec![Sig::Const];
    for (side, nl) in [(Side::A, a_nl), (Side::B, b_nl)] {
        for (id, _) in nl.nets() {
            atoms.push(Sig::Net(side, id));
        }
        for (id, c) in nl.cells() {
            if matches!(c.kind, CellKind::Icg | CellKind::IcgM1) {
                atoms.push(Sig::Icg(side, id));
            }
        }
    }

    let samples_per_run = opts.cycles;
    let total = samples_per_run * opts.seeds as usize;
    let mut traces: Vec<Vec<bool>> = vec![vec![false; total]; atoms.len()];

    // All runs advance in lockstep as lanes of one compiled simulation
    // per design (chunked at the 64-lane width); lane `r` draws from the
    // same per-run stream the old scalar loop used, so traces — indexed
    // `run * cycles + cycle` — are unchanged bit for bit.
    for chunk in (0..opts.seeds).step_by(64) {
        let lanes = (opts.seeds - chunk).min(64) as usize;
        let mut sa = CompiledSim::<1>::new(a_nl, lanes)?;
        let mut sb = CompiledSim::<1>::new(b_nl, lanes)?;
        sa.reset_zero();
        sb.reset_zero();
        let mut streams: Vec<Stream> = (0..lanes)
            .map(|l| Stream::new(0xE9_u64.wrapping_mul(chunk + l as u64 + 1) ^ 42))
            .collect();
        for cycle in 0..samples_per_run {
            for (&pa, &pb) in in_a.iter().zip(&in_b) {
                let mut bits = 0u64;
                for (l, s) in streams.iter_mut().enumerate() {
                    bits |= u64::from(s.next_bit()) << l;
                }
                let v = triphase_sim::Lanes::from_bits([bits]);
                sa.set_input(pa, v);
                sb.set_input(pb, v);
            }
            sa.step_cycle();
            sb.step_cycle();
            for (t, &sig) in traces.iter_mut().zip(&atoms) {
                let v = match sig {
                    Sig::Const => triphase_sim::Lanes::ZERO,
                    Sig::Net(Side::A, n) => sa.net_value(n),
                    Sig::Net(Side::B, n) => sb.net_value(n),
                    Sig::Icg(Side::A, c) => sa.icg_state(c),
                    Sig::Icg(Side::B, c) => sb.icg_state(c),
                };
                for l in 0..lanes {
                    let run = chunk as usize + l;
                    t[run * samples_per_run + cycle] = sample_bool(v.get(l));
                }
            }
        }
    }

    // Class key: the post-warmup sample subvector, complemented to start
    // with `false` so complementary signals share a class.
    let post: Vec<usize> = (0..total)
        .filter(|i| i % samples_per_run >= opts.warmup_cap.min(samples_per_run))
        .collect();
    let mut classes: HashMap<Vec<bool>, Vec<(Sig, bool)>> = HashMap::new();
    for (t, &sig) in traces.iter().zip(&atoms) {
        let invert = post.first().map(|&i| t[i]).unwrap_or(false);
        let key: Vec<bool> = post.iter().map(|&i| t[i] ^ invert).collect();
        classes.entry(key).or_default().push((sig, invert));
    }

    let sig_index: HashMap<Sig, usize> = atoms.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut groups: Vec<Group> = classes
        .into_values()
        .filter(|ms| ms.len() >= 2)
        .map(|ms| Group {
            members: ms
                .into_iter()
                .map(|(sig, inv)| Member::with_invert(sig, inv))
                .collect(),
        })
        .collect();
    // Deterministic order regardless of hash iteration.
    groups.sort_by_key(|g| g.members.iter().map(|m| sig_index[&m.sig]).min());

    // Flush depth: the earliest boundary from which no class was ever
    // violated concretely.
    let mut w = 0usize;
    for g in &groups {
        // `s` indexes a sample column across several trace rows, so a
        // plain index loop is the natural shape here.
        #[allow(clippy::needless_range_loop)]
        for s in 0..total {
            let c = s % samples_per_run;
            if c >= opts.warmup_cap || c < w {
                continue;
            }
            let first = &g.members[0];
            let v0 = traces[sig_index[&first.sig]][s] ^ first.invert;
            if g.members
                .iter()
                .any(|m| traces[sig_index[&m.sig]][s] ^ m.invert != v0)
            {
                w = w.max(c + 1);
            }
        }
    }
    Ok((groups, w))
}

/// Refine classes against one counterexample: split every group by its
/// members' normalised exit values under the model. Returns `true` if
/// any group actually split (progress).
pub(crate) fn refine(groups: &mut Vec<Group>, exit_values: &[Vec<bool>]) -> bool {
    let mut next: Vec<Group> = Vec::with_capacity(groups.len());
    let mut split = false;
    for (g, vals) in groups.iter().zip(exit_values) {
        let mut zero = Group::default();
        let mut one = Group::default();
        for (m, &v) in g.members.iter().zip(vals) {
            if v {
                one.members.push(*m);
            } else {
                zero.members.push(*m);
            }
        }
        if !zero.members.is_empty() && !one.members.is_empty() {
            split = true;
        }
        for part in [zero, one] {
            if part.members.len() >= 2 {
                next.push(part);
            }
        }
    }
    *groups = next;
    split
}
