//! The phase-collapsing model: structural correspondence between an
//! FF-based golden design and its 3-phase latch-based conversion.
//!
//! Every original flip-flop maps to a latch chain in the converted
//! design: a lead latch on `p1` (K=1) or `p3` (K=0) — possibly behind a
//! re-rooted or duplicated clock gate — plus, for back-to-back (G=1)
//! FFs, a trailing `p2` latch that drives the FF's original output net.
//! Flagged primary inputs grow a `p2` sampling latch. The model collapses
//! each chain to a single state variable equal to the FF's `q`, which is
//! exactly the induction invariant under which one symbolic cycle of the
//! converted design must reproduce the FF design's next-state and output
//! functions:
//!
//! * the chain's externally visible `q` net equals the golden FF's `q`
//!   at every cycle boundary;
//! * a `p1` lead's intermediate `q_pre` net also equals `q` at
//!   boundaries (its `p2` trail is always transparent mid-cycle, so a
//!   stale `q_pre` would leak into `q`);
//! * a `p3` lead is transparent at the boundary itself, so its `q_pre`
//!   holds the *next* state `F(s, x)`; its held value matters only while
//!   its clock gate is disabled, where it must equal `q` — a guarded
//!   obligation;
//! * each converted clock gate's enable latch agrees with the golden
//!   gate's enable latch at boundaries;
//! * each flagged PI's `p2` latch holds the previous input value, which
//!   is what the raw PI net still carries at the boundary.

use crate::engine::{CopyInit, Group, GuardedCheck, Member, Side, Sig, Spec};
use crate::error::{Error, Result};
use std::collections::{HashMap, HashSet};
use triphase_cells::CellKind;
use triphase_netlist::{graph, CellId, Netlist, PortDir};

/// Summary of the structural correspondence (for reports).
#[derive(Debug, Clone, Copy, Default)]
pub struct ChainInfo {
    /// Original FFs matched to latch chains.
    pub ffs: usize,
    /// Chains with a single lead latch (G=0, `p1`).
    pub singles: usize,
    /// Chains with a `p2` trail latch.
    pub trailed: usize,
    /// `p3`-lead chains (always trailed).
    pub p3_leads: usize,
    /// Primary-input sampling latches.
    pub pi_latches: usize,
    /// Clock-gate pairs (including duplicated gates).
    pub icg_pairs: usize,
}

fn unsupported(msg: impl Into<String>) -> Error {
    Error::Unsupported(msg.into())
}

/// Build the induction [`Spec`] encoding the phase-collapsing model.
///
/// Side `A` is the golden FF design, side `B` the converted design. A
/// structural mismatch (a latch that fits no chain role, a missing trail,
/// nested gating, a non-`Dff` golden cell) yields
/// [`Error::Unsupported`] — callers fall back to bounded refutation,
/// since such designs are not valid conversions in the first place.
///
/// # Errors
///
/// [`Error::Unsupported`] as described; [`Error::Timing`] if the
/// converted design's latch phases cannot be classified.
pub fn build_conversion_spec(golden: &Netlist, dut: &Netlist) -> Result<(Spec, ChainInfo)> {
    let d_idx = dut.index();
    let phases = triphase_timing::storage_phases(dut, &d_idx)?;

    // Golden storage must be plain FFs (preprocessing lowers DffEn).
    for (_, cell) in golden.cells() {
        if cell.kind.is_storage() && cell.kind != CellKind::Dff {
            return Err(unsupported(format!(
                "golden storage {} is {:?}, expected Dff",
                cell.name, cell.kind
            )));
        }
    }
    // Converted storage must be transparent-high latches.
    for (_, cell) in dut.cells() {
        if cell.kind.is_storage() && cell.kind != CellKind::LatchH {
            return Err(unsupported(format!(
                "converted storage {} is {:?}, expected LatchH",
                cell.name, cell.kind
            )));
        }
    }

    let dut_by_name: HashMap<&str, CellId> =
        dut.cells().map(|(id, c)| (c.name.as_str(), id)).collect();

    let mut spec = Spec::default();
    let mut info = ChainInfo::default();
    let mut used_p2: HashSet<CellId> = HashSet::new();

    // 1. FF chains.
    for (_, cell) in golden.cells().filter(|(_, c)| c.kind.is_ff()) {
        let golden_q = cell.output();
        let &lead = dut_by_name
            .get(cell.name.as_str())
            .ok_or_else(|| unsupported(format!("FF {} has no converted latch", cell.name)))?;
        let lead_cell = dut.cell(lead);
        let phase = *phases
            .get(&lead)
            .ok_or_else(|| unsupported(format!("lead {} has no phase", lead_cell.name)))?;
        if phase == 1 {
            return Err(unsupported(format!(
                "lead {} sits on p2; conversion places leads on p1/p3 only",
                lead_cell.name
            )));
        }
        let lead_q = lead_cell.output();

        // A trailing p2 latch, if any, loads the lead's output at pin 0.
        let mut trail = None;
        for load in d_idx.loads(lead_q) {
            let lc = dut.cell(load.cell);
            if lc.kind == CellKind::LatchH && phases.get(&load.cell) == Some(&1) && load.pin == 0 {
                if trail.is_some() {
                    return Err(unsupported(format!(
                        "lead {} feeds two p2 latches",
                        lead_cell.name
                    )));
                }
                trail = Some(load.cell);
            }
        }
        if phase == 2 && trail.is_none() {
            return Err(unsupported(format!(
                "p3 lead {} has no p2 trail latch",
                lead_cell.name
            )));
        }
        if let Some(t) = trail {
            used_p2.insert(t);
        }
        let dut_q = trail.map_or(lead_q, |t| dut.cell(t).output());

        // The clock gate (if any) driving the lead's transparency window.
        let trace = graph::trace_clock_root(dut, &d_idx, lead_cell.pin(1))
            .map_err(|e| unsupported(format!("lead {} clock untraceable: {e}", lead_cell.name)))?;
        if trace.gates.len() > 1 {
            return Err(unsupported(format!(
                "nested clock gating on lead {}",
                lead_cell.name
            )));
        }
        let guard = trace.gates.first().copied();

        let mut group = Group::default();
        group
            .members
            .push(Member::full(Sig::Net(Side::A, golden_q)));
        group.members.push(Member::full(Sig::Net(Side::B, dut_q)));
        if trail.is_some() {
            info.trailed += 1;
            if phase == 0 {
                // p1 lead: q_pre is opaque at boundaries and must equal q.
                group.members.push(Member::full(Sig::Net(Side::B, lead_q)));
            } else {
                info.p3_leads += 1;
                // p3 lead: transparent at the boundary. Substitute its held
                // value with the chain state but neither assume nor check
                // the settled literal (it computes F(s, x), not s).
                group
                    .members
                    .push(Member::substitute_only(Sig::Net(Side::B, lead_q)));
                if let Some(g) = guard {
                    spec.guarded.push(GuardedCheck {
                        unless: Sig::Icg(Side::B, g),
                        a: Sig::Net(Side::B, lead_q),
                        b: Sig::Net(Side::A, golden_q),
                    });
                }
            }
        } else {
            info.singles += 1;
        }
        spec.groups.push(group);
        info.ffs += 1;
    }

    // 2. Remaining p2 latches: primary-input samplers (or junk).
    for (id, cell) in dut.cells() {
        if cell.kind != CellKind::LatchH || phases.get(&id) != Some(&1) || used_p2.contains(&id) {
            continue;
        }
        let d_net = cell.pin(0);
        let port = d_idx
            .driving_port(d_net)
            .filter(|&p| dut.port(p).dir == PortDir::Input)
            .ok_or_else(|| {
                unsupported(format!(
                    "p2 latch {} is neither trail nor PI sampler",
                    cell.name
                ))
            })?;
        let name = &dut.port(port).name;
        let g_port = golden
            .find_port(name)
            .filter(|&p| golden.port(p).dir == PortDir::Input)
            .ok_or_else(|| {
                unsupported(format!(
                    "PI latch {} samples unknown port {name}",
                    cell.name
                ))
            })?;
        let mut group = Group::default();
        group
            .members
            .push(Member::full(Sig::Net(Side::A, golden.port(g_port).net)));
        group
            .members
            .push(Member::full(Sig::Net(Side::B, cell.output())));
        spec.groups.push(group);
        info.pi_latches += 1;
    }

    // 3. Clock-gate pairs: every converted gate (including `_dupN`
    // duplicates) mirrors a golden gate's enable latch.
    for (id, cell) in dut.cells() {
        match cell.kind {
            CellKind::Icg => {}
            CellKind::IcgM1 | CellKind::IcgM2 => {
                return Err(unsupported(format!(
                    "converted gate {} is {:?}; conversion-time checking expects plain Icg",
                    cell.name, cell.kind
                )))
            }
            _ => continue,
        }
        let base = match cell.name.rfind("_dup") {
            Some(i)
                if cell.name[i + 4..].chars().all(|c| c.is_ascii_digit())
                    && !cell.name[i + 4..].is_empty() =>
            {
                &cell.name[..i]
            }
            _ => cell.name.as_str(),
        };
        let golden_icg = golden
            .cells()
            .find(|(_, c)| c.kind == CellKind::Icg && c.name == base)
            .map(|(gid, _)| gid)
            .ok_or_else(|| {
                unsupported(format!("converted gate {} has no golden gate", cell.name))
            })?;
        let mut group = Group::default();
        group
            .members
            .push(Member::full(Sig::Icg(Side::A, golden_icg)));
        group.members.push(Member::full(Sig::Icg(Side::B, id)));
        spec.groups.push(group);
        spec.copies.push(CopyInit {
            from_a: Sig::Icg(Side::A, golden_icg),
            to_b: Sig::Icg(Side::B, id),
        });
        info.icg_pairs += 1;
    }

    // 4. Output pairs by port name.
    let g_out = triphase_sim::data_outputs(golden);
    let d_out = triphase_sim::data_outputs(dut);
    if g_out.len() != d_out.len() {
        return Err(unsupported("output port counts differ"));
    }
    for (&gp, &dp) in g_out.iter().zip(&d_out) {
        if golden.port(gp).name != dut.port(dp).name {
            return Err(unsupported("output port names differ"));
        }
        let mut group = Group::default();
        group
            .members
            .push(Member::full(Sig::Net(Side::A, golden.port(gp).net)));
        group
            .members
            .push(Member::full(Sig::Net(Side::B, dut.port(dp).net)));
        spec.po_pairs.push((golden.port(gp).net, dut.port(dp).net));
        spec.groups.push(group);
    }

    Ok((spec, info))
}
