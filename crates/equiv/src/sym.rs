//! Symbolic twin of the concrete cycle simulator.
//!
//! [`SymSim`] replays the exact event sequence of
//! `triphase_sim::Simulator::step_cycle` — sub-cycle clock events in
//! ascending time order, up to four gated-clock hazard rounds per event,
//! FF capture on symbolic rising edges, and fixpoint settling of the
//! combinational fabric and transparent latches — but over AIG literals
//! instead of 3-valued logic. A cycle step therefore computes, for every
//! net, the Boolean function of the entry state and inputs that the
//! concrete simulator would evaluate pointwise. That function-level match
//! is what lets SAT counterexamples found on the symbolic model be
//! replayed and confirmed on the concrete simulator.
//!
//! The one structural liberty taken is latch settling: a transparent
//! latch's output is expressed as `mux(gate, data, q_entry)` anchored at
//! the value the latch held when the settle began, re-derived only when
//! the gate or data literal changes. Without the anchor, each settle pass
//! would wrap another mux around the last, and symbolic settling would
//! never reach a structural fixpoint.

use crate::aig::{Aig, Lit, FALSE, TRUE};
use crate::error::{Error, Result};
use triphase_cells::CellKind;
use triphase_netlist::{graph, CellId, ConnIndex, NetId, Netlist, PortId};

const MAX_SETTLE_PASSES: usize = 64;

/// Symbolic state over one netlist: a literal per net plus a literal per
/// clock-gate enable latch.
pub struct SymSim<'a> {
    nl: &'a Netlist,
    comb_order: Vec<CellId>,
    clock_order: Vec<CellId>,
    storage: Vec<CellId>,
    /// Enable-latch literal per clock-gate cell (indexed by cell index).
    icg: Vec<Lit>,
    /// Current literal per net (indexed by net index).
    values: Vec<Lit>,
    events: Vec<f64>,
    clock_ports: Vec<(PortId, NetId, usize)>,
    /// Latch output anchor for the current settle (indexed by cell index).
    latch_entry: Vec<Lit>,
    /// Memoised `(gate, data)` pair per latch for anchor re-derivation.
    latch_memo: Vec<(Lit, Lit)>,
}

impl<'a> SymSim<'a> {
    pub fn new(nl: &'a Netlist) -> Result<SymSim<'a>> {
        let clock = nl.clock.as_ref().ok_or(Error::NoClock)?;
        let idx = nl.index();
        let comb_order = graph::comb_topo_order(nl, &idx).map_err(Error::Netlist)?;
        let clock_order = clock_network_order(nl, &idx)?;
        let storage: Vec<CellId> = nl
            .cells()
            .filter(|(_, c)| c.kind.is_storage())
            .map(|(id, _)| id)
            .collect();
        let mut times: Vec<f64> = Vec::new();
        for p in &clock.phases {
            for t in [
                p.rise_ps.rem_euclid(clock.period_ps),
                p.fall_ps.rem_euclid(clock.period_ps),
            ] {
                if !times.iter().any(|&x| (x - t).abs() < 1e-9) {
                    times.push(t);
                }
            }
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let clock_ports = clock
            .phases
            .iter()
            .enumerate()
            .map(|(i, p)| (p.port, nl.port(p.port).net, i))
            .collect();
        Ok(SymSim {
            nl,
            comb_order,
            clock_order,
            storage,
            icg: vec![FALSE; nl.cell_capacity()],
            values: vec![FALSE; nl.net_capacity()],
            events: times,
            clock_ports,
            latch_entry: vec![FALSE; nl.cell_capacity()],
            latch_memo: vec![(FALSE, FALSE); nl.cell_capacity()],
        })
    }

    pub fn netlist(&self) -> &Netlist {
        self.nl
    }

    /// Storage cells (FFs and latches) of the design.
    pub fn storage_cells(&self) -> &[CellId] {
        &self.storage
    }

    /// Clock-gate cells with internal enable-latch state.
    pub fn icg_cells(&self) -> Vec<CellId> {
        self.clock_order
            .iter()
            .copied()
            .filter(|&c| {
                matches!(
                    self.nl.cell(c).kind,
                    CellKind::Icg | CellKind::IcgM1 | CellKind::IcgM2
                )
            })
            .collect()
    }

    pub fn net_lit(&self, net: NetId) -> Lit {
        self.values[net.index()]
    }

    pub fn set_net_raw(&mut self, net: NetId, l: Lit) {
        self.values[net.index()] = l;
    }

    pub fn icg_lit(&self, cell: CellId) -> Lit {
        self.icg[cell.index()]
    }

    pub fn set_icg_raw(&mut self, cell: CellId, l: Lit) {
        self.icg[cell.index()] = l;
    }

    /// Mirror of `Simulator::reset_zero`: all nets to constant false,
    /// clock roots at end-of-cycle levels, and every `Icg`/`IcgM1` enable
    /// latch loaded with its enable cone settled over the reset state (the
    /// clocks ran during reset, so even a gate opaque at the release
    /// boundary — e.g. `p3`-rooted — holds the settled enable, not zero).
    pub fn reset_zero(&mut self, aig: &mut Aig) {
        self.values.fill(FALSE);
        self.icg.fill(FALSE);
        self.drive_clock_roots_end_of_cycle();
        self.eval_clock_network(aig);
        self.settle_data(aig);
        for c in self.icg_cells() {
            let cell = self.nl.cell(c);
            if matches!(cell.kind, CellKind::Icg | CellKind::IcgM1) {
                self.icg[c.index()] = self.values[cell.pin(0).index()];
            }
        }
        self.eval_clock_network(aig);
        self.settle_data(aig);
    }

    /// Initialise every storage element (latch/FF output net) and enable
    /// latch to a fresh AIG variable; combinational nets stay false until
    /// the first settle. Clock roots are driven to end-of-cycle levels.
    /// Returns nothing; callers override individual literals afterwards
    /// via [`SymSim::set_net_raw`] / [`SymSim::set_icg_raw`].
    pub fn init_free(&mut self, aig: &mut Aig) {
        self.values.fill(FALSE);
        self.icg.fill(FALSE);
        for i in 0..self.storage.len() {
            let c = self.storage[i];
            let q = self.nl.cell(c).output();
            let v = aig.var();
            self.values[q.index()] = v;
        }
        for c in self.icg_cells() {
            let v = aig.var();
            self.icg[c.index()] = v;
        }
        self.drive_clock_roots_end_of_cycle();
        // The clock network is evaluated during the pre-step settle, after
        // callers finish overriding state literals.
    }

    fn drive_clock_roots_end_of_cycle(&mut self) {
        let period = self.nl.clock.as_ref().expect("checked in new").period_ps;
        for i in 0..self.clock_ports.len() {
            let (_, net, phase) = self.clock_ports[i];
            self.values[net.index()] = lit_of(self.clock_level(phase, period - 1e-6));
        }
    }

    /// The initial `settle_data` of `step_cycle`: brings combinational
    /// nets, clock network, and transparent latches to a fixpoint over the
    /// raw entry state. Call once before reading "entry" literals.
    pub fn presettle(&mut self, aig: &mut Aig) {
        self.drive_clock_roots_end_of_cycle();
        self.eval_clock_network(aig);
        self.settle_data(aig);
    }

    /// Advance one full clock cycle. `inputs` are applied just after the
    /// first clock event, exactly like `Simulator::set_input` +
    /// `step_cycle` (so edge-triggered state captures the previous cycle's
    /// values). [`SymSim::presettle`] must have run since the last state
    /// override.
    pub fn step(&mut self, aig: &mut Aig, inputs: &[(NetId, Lit)]) {
        let events = self.events.clone();
        for (i, &t) in events.iter().enumerate() {
            self.process_clock_event(aig, t);
            if i == 0 {
                for &(net, l) in inputs {
                    self.values[net.index()] = l;
                }
                self.settle_data(aig);
            }
        }
    }

    fn clock_level(&self, phase: usize, t: f64) -> bool {
        let clock = self.nl.clock.as_ref().expect("checked in new");
        let p = &clock.phases[phase];
        let period = clock.period_ps;
        let (r, f) = (p.rise_ps.rem_euclid(period), p.fall_ps.rem_euclid(period));
        if r < f {
            t >= r - 1e-9 && t < f - 1e-9
        } else {
            t >= r - 1e-9 || t < f - 1e-9
        }
    }

    fn process_clock_event(&mut self, aig: &mut Aig, t: f64) {
        for _ in 0..4 {
            let before_ck: Vec<Lit> = self
                .storage
                .iter()
                .map(|&c| {
                    let cell = self.nl.cell(c);
                    self.values[cell.pin(cell.kind.clock_pin().unwrap()).index()]
                })
                .collect();
            for i in 0..self.clock_ports.len() {
                let (_, net, phase) = self.clock_ports[i];
                self.values[net.index()] = lit_of(self.clock_level(phase, t));
            }
            self.eval_clock_network(aig);

            // Capture: FFs with a (possibly symbolic) rising edge.
            let mut updates: Vec<(NetId, Lit)> = Vec::new();
            for (si, &c) in self.storage.iter().enumerate() {
                let cell = self.nl.cell(c);
                if !cell.kind.is_ff() {
                    continue;
                }
                let ck = self.values[cell.pin(cell.kind.clock_pin().unwrap()).index()];
                let rose = aig.and(before_ck[si].not(), ck);
                if rose == FALSE {
                    continue;
                }
                let d = self.values[cell.pin(0).index()];
                let q_net = cell.output();
                let q = self.values[q_net.index()];
                let captured = match cell.kind {
                    CellKind::Dff => d,
                    CellKind::DffEn => {
                        let en = self.values[cell.pin(1).index()];
                        aig.mux(en, d, q)
                    }
                    _ => unreachable!(),
                };
                updates.push((q_net, aig.mux(rose, captured, q)));
            }
            for (net, l) in updates {
                self.values[net.index()] = l;
            }
            if !self.settle_data(aig) {
                break;
            }
        }
    }

    fn eval_clock_network(&mut self, aig: &mut Aig) {
        let order = std::mem::take(&mut self.clock_order);
        for &c in &order {
            self.eval_clock_cell(aig, c);
        }
        self.clock_order = order;
    }

    fn eval_clock_cell(&mut self, aig: &mut Aig, c: CellId) {
        let cell = self.nl.cell(c);
        let out = cell.output();
        let v = match cell.kind {
            CellKind::ClkBuf | CellKind::Buf => self.values[cell.pin(0).index()],
            CellKind::Icg => {
                let en = self.values[cell.pin(0).index()];
                let ck = self.values[cell.pin(1).index()];
                // Enable latch transparent while CK low.
                let state = self.icg[c.index()];
                let new_state = aig.mux(ck, state, en);
                self.icg[c.index()] = new_state;
                aig.and(ck, new_state)
            }
            CellKind::IcgM1 => {
                let en = self.values[cell.pin(0).index()];
                let p3 = self.values[cell.pin(1).index()];
                let ck = self.values[cell.pin(2).index()];
                let state = self.icg[c.index()];
                let new_state = aig.mux(p3, en, state);
                self.icg[c.index()] = new_state;
                aig.and(ck, new_state)
            }
            CellKind::IcgM2 => {
                let en = self.values[cell.pin(0).index()];
                let ck = self.values[cell.pin(1).index()];
                aig.and(ck, en)
            }
            _ => unreachable!("non-clock cell in clock order"),
        };
        self.values[out.index()] = v;
    }

    /// Settle combinational logic, clock gates, and transparent latches.
    /// Returns `true` if any storage clock literal changed (the M2-style
    /// hazard signal that triggers another capture round).
    fn settle_data(&mut self, aig: &mut Aig) -> bool {
        // Anchor every latch at the value it holds on entry to this settle.
        let storage = std::mem::take(&mut self.storage);
        for &c in &storage {
            let cell = self.nl.cell(c);
            if cell.kind.is_latch() {
                self.latch_entry[c.index()] = self.values[cell.output().index()];
                self.latch_memo[c.index()] = (FALSE, FALSE);
            }
        }
        self.storage = storage;

        let mut clock_changed = false;
        let mut scratch: Vec<Lit> = Vec::with_capacity(8);
        for _pass in 0..MAX_SETTLE_PASSES {
            let mut changed = false;
            let order = std::mem::take(&mut self.comb_order);
            for &c in &order {
                let cell = self.nl.cell(c);
                scratch.clear();
                scratch.extend(cell.inputs().iter().map(|&n| self.values[n.index()]));
                let v = eval_lits(aig, cell.kind, &scratch);
                let out = cell.output();
                if self.values[out.index()] != v {
                    changed = true;
                    self.values[out.index()] = v;
                }
            }
            self.comb_order = order;

            let clk_snapshot: Vec<Lit> = self
                .storage
                .iter()
                .map(|&c| {
                    let cell = self.nl.cell(c);
                    self.values[cell.pin(cell.kind.clock_pin().unwrap()).index()]
                })
                .collect();
            self.eval_clock_network(aig);
            for (si, &c) in self.storage.iter().enumerate() {
                let cell = self.nl.cell(c);
                let now = self.values[cell.pin(cell.kind.clock_pin().unwrap()).index()];
                if clk_snapshot[si] != now {
                    clock_changed = true;
                    changed = true;
                }
            }

            let storage = std::mem::take(&mut self.storage);
            for &c in &storage {
                let cell = self.nl.cell(c);
                if !cell.kind.is_latch() {
                    continue;
                }
                let g = self.values[cell.pin(1).index()];
                let transparent = match cell.kind {
                    CellKind::LatchH => g,
                    CellKind::LatchL => g.not(),
                    _ => unreachable!(),
                };
                let d = self.values[cell.pin(0).index()];
                if self.latch_memo[c.index()] == (transparent, d) {
                    continue;
                }
                self.latch_memo[c.index()] = (transparent, d);
                let next = aig.mux(transparent, d, self.latch_entry[c.index()]);
                let q_net = cell.output();
                if self.values[q_net.index()] != next {
                    changed = true;
                    self.values[q_net.index()] = next;
                }
            }
            self.storage = storage;
            if !changed {
                return clock_changed;
            }
        }
        clock_changed
    }
}

fn lit_of(b: bool) -> Lit {
    if b {
        TRUE
    } else {
        FALSE
    }
}

/// Evaluate a combinational [`CellKind`] over literals; mirrors
/// `triphase_sim::eval_kind` on the Boolean subdomain.
fn eval_lits(aig: &mut Aig, kind: CellKind, ins: &[Lit]) -> Lit {
    match kind {
        CellKind::Const0 => FALSE,
        CellKind::Const1 => TRUE,
        CellKind::Buf | CellKind::ClkBuf => ins[0],
        CellKind::Inv => ins[0].not(),
        CellKind::And(_) => aig.and_many(ins),
        CellKind::Or(_) => aig.or_many(ins),
        CellKind::Nand(_) => aig.and_many(ins).not(),
        CellKind::Nor(_) => aig.or_many(ins).not(),
        CellKind::Xor(_) => aig.xor_many(ins),
        CellKind::Xnor(_) => aig.xor_many(ins).not(),
        CellKind::Mux2 => aig.mux(ins[2], ins[1], ins[0]),
        _ => unreachable!("eval_lits on non-combinational {kind:?}"),
    }
}

/// Topological order of the clock network; mirrors the concrete
/// simulator's ordering exactly.
fn clock_network_order(nl: &Netlist, idx: &ConnIndex) -> Result<Vec<CellId>> {
    let is_clock_cell = |k: CellKind| k.is_clock_gate() || k == CellKind::ClkBuf;
    let mut order = Vec::new();
    let mut state: std::collections::HashMap<CellId, u8> = std::collections::HashMap::new();
    let mut stack: Vec<(CellId, bool)> = nl
        .cells()
        .filter(|(_, c)| is_clock_cell(c.kind))
        .map(|(id, _)| (id, false))
        .collect();
    while let Some((c, processed)) = stack.pop() {
        if processed {
            state.insert(c, 2);
            order.push(c);
            continue;
        }
        match state.get(&c) {
            Some(2) => continue,
            Some(1) => {
                return Err(Error::Unsupported(format!(
                    "clock network cycle at {}",
                    nl.cell(c).name
                )))
            }
            _ => {}
        }
        state.insert(c, 1);
        stack.push((c, true));
        let cell = nl.cell(c);
        let dep_pins: Vec<usize> = match cell.kind {
            CellKind::ClkBuf => vec![0],
            CellKind::Icg | CellKind::IcgM2 => vec![1],
            CellKind::IcgM1 => vec![1, 2],
            _ => unreachable!(),
        };
        for pin in dep_pins {
            if let Some(drv) = idx.driver(cell.pin(pin)) {
                if is_clock_cell(nl.cell(drv.cell).kind) {
                    match state.get(&drv.cell).copied() {
                        Some(2) => {}
                        Some(_) => {
                            return Err(Error::Unsupported(format!(
                                "clock network cycle at {}",
                                nl.cell(drv.cell).name
                            )))
                        }
                        None => stack.push((drv.cell, false)),
                    }
                }
            }
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;
    use triphase_netlist::{Builder, ClockSpec};
    use triphase_sim::{Logic, Simulator};

    /// Cross-check: symbolic step from a concrete state must equal the
    /// concrete simulator on a 3-bit FF counter.
    #[test]
    fn symbolic_step_matches_concrete_ff() {
        let mut nl = Netlist::new("cnt");
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let q0 = b.net("q0");
        let q1 = b.net("q1");
        let q2 = b.net("q2");
        let one = b.const1();
        let q = triphase_netlist::Word(vec![q0, q1, q2]);
        let one_w = triphase_netlist::Word(vec![one, b.const0(), b.const0()]);
        let (next, _) = b.add(&q, &one_w, None);
        for (i, (&qn, d)) in [q0, q1, q2].iter().zip(next.bits()).enumerate() {
            let name = format!("ff{i}");
            b.netlist().add_cell(name, CellKind::Dff, vec![*d, ck, qn]);
        }
        b.word_output("q", &q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));

        let mut aig = Aig::new();
        let mut sym = SymSim::new(&nl).unwrap();
        sym.reset_zero(&mut aig);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.reset_zero();
        for cycle in 0..10 {
            sym.presettle(&mut aig);
            sym.step(&mut aig, &[]);
            sim.step_cycle();
            for (_, port) in nl
                .output_ports()
                .iter()
                .map(|&p| (p, p))
                .collect::<Vec<_>>()
            {
                let net = nl.port(port).net;
                let want = sim.output(port);
                let got = sym.net_lit(net);
                assert!(got.is_const(), "cycle {cycle}: symbolic output not const");
                let got_b = got == TRUE;
                assert_eq!(Logic::from_bool(got_b), want, "cycle {cycle}");
            }
        }
    }

    /// Symbolic step with free input variables evaluates, under every
    /// assignment, to what the concrete simulator produces for that input.
    #[test]
    fn symbolic_input_functions_match_concrete() {
        // q <= d xor q, through a LatchH 3-phase-ish pipeline is overkill
        // here; a single Dff with feedback exercises capture + settle.
        let mut nl = Netlist::new("fb");
        let (ckp, ck) = nl.add_input("ck");
        let (dp, d) = nl.add_input("d");
        let q = nl.add_net("q");
        let x = nl.add_net("x");
        nl.add_cell("g", CellKind::Xor(2), vec![d, q, x]);
        nl.add_cell("ff", CellKind::Dff, vec![x, ck, q]);
        nl.add_output("q", q);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        let qp = nl.find_port("q").unwrap();

        for d0 in [false, true] {
            for d1 in [false, true] {
                // Concrete run.
                let mut sim = Simulator::new(&nl).unwrap();
                sim.reset_zero();
                sim.set_input(dp, Logic::from_bool(d0));
                sim.step_cycle();
                sim.set_input(dp, Logic::from_bool(d1));
                sim.step_cycle();
                sim.step_cycle();
                let want = sim.output(qp);

                // Symbolic run with two free input variables.
                let mut aig = Aig::new();
                let mut sym = SymSim::new(&nl).unwrap();
                sym.reset_zero(&mut aig);
                let v0 = aig.var();
                let v1 = aig.var();
                sym.presettle(&mut aig);
                sym.step(&mut aig, &[(d, v0)]);
                sym.presettle(&mut aig);
                sym.step(&mut aig, &[(d, v1)]);
                sym.presettle(&mut aig);
                sym.step(&mut aig, &[]);
                let out = sym.net_lit(q);
                let vals = aig.eval_all(&|n| (n == v0.node() && d0) || (n == v1.node() && d1));
                let got = Aig::lit_value(&vals, out);
                assert_eq!(Logic::from_bool(got), want, "d0={d0} d1={d1}");
            }
        }
    }
}
