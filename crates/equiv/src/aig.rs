//! And-Inverter Graph with structural hashing and constant folding.
//!
//! All symbolic reasoning in this crate — the symbolic cycle stepper, the
//! induction miters, and BMC unrollings — is expressed over one shared AIG.
//! Structural hashing is what makes the "hash-identical cone" fast path
//! work: when the golden and converted design compute the same function
//! over shared entry variables, both sides reduce to the *same* literal and
//! the equivalence miter folds to constant false without any SAT call.

use std::collections::HashMap;

/// A literal: AIG node index shifted left once, LSB = negation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Lit(pub u32);

/// Constant false (node 0, positive).
pub const FALSE: Lit = Lit(0);
/// Constant true (node 0, negated).
pub const TRUE: Lit = Lit(1);

impl Lit {
    /// Node index this literal refers to.
    pub fn node(self) -> u32 {
        self.0 >> 1
    }
    /// Whether the literal is negated.
    #[allow(clippy::should_implement_trait)] // predicate, not arithmetic negation
    pub fn neg(self) -> bool {
        self.0 & 1 == 1
    }
    /// The complemented literal.
    #[allow(clippy::should_implement_trait)] // kept as a method so call sites chain
    pub fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
    /// True if this is one of the two constant literals.
    pub fn is_const(self) -> bool {
        self.node() == 0
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Node {
    /// The constant-false node (index 0 only).
    Const,
    /// A free variable.
    Var,
    /// Conjunction of two literals.
    And(Lit, Lit),
}

/// The AIG manager.
pub struct Aig {
    nodes: Vec<Node>,
    strash: HashMap<(Lit, Lit), u32>,
}

impl Default for Aig {
    fn default() -> Self {
        Self::new()
    }
}

impl Aig {
    pub fn new() -> Self {
        Aig {
            nodes: vec![Node::Const],
            strash: HashMap::new(),
        }
    }

    /// Number of nodes, including the constant node.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    pub fn node(&self, idx: u32) -> Node {
        self.nodes[idx as usize]
    }

    /// Create a fresh free variable and return its positive literal.
    pub fn var(&mut self) -> Lit {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node::Var);
        Lit(idx << 1)
    }

    /// Conjunction with constant folding, idempotence/complement rules,
    /// and structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        if a == FALSE || b == FALSE || a == b.not() {
            return FALSE;
        }
        if a == TRUE || a == b {
            return b;
        }
        if b == TRUE {
            return a;
        }
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if let Some(&idx) = self.strash.get(&key) {
            return Lit(idx << 1);
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node::And(key.0, key.1));
        self.strash.insert(key, idx);
        Lit(idx << 1)
    }

    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(a.not(), b.not()).not()
    }

    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let n0 = self.and(a, b.not());
        let n1 = self.and(a.not(), b);
        self.or(n0, n1)
    }

    /// `if s then d1 else d0`.
    pub fn mux(&mut self, s: Lit, d1: Lit, d0: Lit) -> Lit {
        if d1 == d0 {
            return d1;
        }
        let hi = self.and(s, d1);
        let lo = self.and(s.not(), d0);
        self.or(hi, lo)
    }

    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        lits.iter().fold(TRUE, |acc, &l| self.and(acc, l))
    }

    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        lits.iter().fold(FALSE, |acc, &l| self.or(acc, l))
    }

    pub fn xor_many(&mut self, lits: &[Lit]) -> Lit {
        lits.iter().fold(FALSE, |acc, &l| self.xor(acc, l))
    }

    /// Evaluate every node under a variable assignment (`var_value` is
    /// consulted for `Var` nodes by node index). Returns one bool per node.
    pub fn eval_all(&self, var_value: &dyn Fn(u32) -> bool) -> Vec<bool> {
        let mut out = vec![false; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            out[i] = match *n {
                Node::Const => false,
                Node::Var => var_value(i as u32),
                Node::And(a, b) => {
                    (out[a.node() as usize] ^ a.neg()) && (out[b.node() as usize] ^ b.neg())
                }
            };
        }
        out
    }

    /// Value of a literal given a node-value table from [`Aig::eval_all`].
    pub fn lit_value(values: &[bool], l: Lit) -> bool {
        values[l.node() as usize] ^ l.neg()
    }

    /// Collect the transitive fanin node set of `roots` (excluding the
    /// constant node), in ascending node order.
    pub fn cone(&self, roots: &[Lit]) -> Vec<u32> {
        let mut mark = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = roots.iter().map(|l| l.node()).collect();
        while let Some(n) = stack.pop() {
            if n == 0 || mark[n as usize] {
                continue;
            }
            mark[n as usize] = true;
            if let Node::And(a, b) = self.nodes[n as usize] {
                stack.push(a.node());
                stack.push(b.node());
            }
        }
        (1..self.nodes.len() as u32)
            .filter(|&n| mark[n as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut g = Aig::new();
        let a = g.var();
        assert_eq!(g.and(a, FALSE), FALSE);
        assert_eq!(g.and(TRUE, a), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, a.not()), FALSE);
        assert_eq!(g.or(a, TRUE), TRUE);
        assert_eq!(g.xor(a, a), FALSE);
        assert_eq!(g.xor(a, a.not()), TRUE);
        assert_eq!(g.mux(a, TRUE, TRUE), TRUE);
    }

    #[test]
    fn structural_hashing_dedups() {
        let mut g = Aig::new();
        let a = g.var();
        let b = g.var();
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y);
        let before = g.len();
        let _ = g.and(a, b);
        assert_eq!(g.len(), before);
        // XOR built twice collapses to the same literal.
        let x1 = g.xor(a, b);
        let x2 = g.xor(a, b);
        assert_eq!(x1, x2);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut g = Aig::new();
        let a = g.var();
        let b = g.var();
        let c = g.var();
        let f = g.mux(a, b, c); // a ? b : c
        let x = g.xor(b, c);
        for bits in 0..8u32 {
            let va = bits & 1 == 1;
            let vb = bits & 2 == 2;
            let vc = bits & 4 == 4;
            let vals = g.eval_all(&|n| {
                if n == a.node() {
                    va
                } else if n == b.node() {
                    vb
                } else {
                    vc
                }
            });
            assert_eq!(Aig::lit_value(&vals, f), if va { vb } else { vc });
            assert_eq!(Aig::lit_value(&vals, x), vb ^ vc);
            assert!(!Aig::lit_value(&vals, FALSE));
            assert!(Aig::lit_value(&vals, TRUE));
        }
    }

    #[test]
    fn cone_collects_fanin() {
        let mut g = Aig::new();
        let a = g.var();
        let b = g.var();
        let c = g.var();
        let ab = g.and(a, b);
        let _unused = g.and(b, c);
        let cone = g.cone(&[ab]);
        assert!(cone.contains(&a.node()));
        assert!(cone.contains(&b.node()));
        assert!(cone.contains(&ab.node()));
        assert!(!cone.contains(&c.node()));
    }
}
