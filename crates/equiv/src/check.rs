//! Public entry points: prove or refute equivalence of a design pair.

use crate::chain;
use crate::engine::{self, Base, EngineStats, Induction, Spec};
use crate::error::{Error, Result};
use crate::sigcorr::{self, SeedOptions};
use triphase_netlist::{NetId, Netlist};
use triphase_sim::Mismatch;

/// Tunables for the equivalence engines.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// BMC unroll depth for refutation (extended to cover warmup).
    pub refute_depth: usize,
    /// Maximum class-refinement rounds for signal correspondence.
    pub max_refinements: u32,
    /// Lockstep simulation runs used to seed candidate classes.
    pub sim_seeds: u64,
    /// Cycles per seeding run.
    pub sim_cycles: usize,
    /// Boundary from which seeding samples count (earlier cycles probe
    /// the post-retiming flush depth).
    pub warmup_cap: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            refute_depth: 10,
            max_refinements: 4096,
            sim_seeds: 4,
            sim_cycles: 96,
            warmup_cap: 16,
        }
    }
}

/// How an equivalence was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Structural chain map + 1-step induction (FF vs converted).
    ChainInduction,
    /// Simulation-seeded signal correspondence (converted vs retimed).
    SignalCorrespondence,
}

/// Final verdict of an equivalence check.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Outputs proven equal for every cycle `>= from_cycle` under any
    /// input sequence. `structural` means the proof closed without any
    /// SAT call (every miter folded in the hashed AIG).
    Equivalent {
        method: Method,
        structural: bool,
        from_cycle: usize,
    },
    /// A concrete counterexample, confirmed by replaying `vectors`
    /// through the cycle-accurate simulator.
    NotEquivalent {
        mismatch: Mismatch,
        vectors: Vec<Vec<bool>>,
        frames: usize,
    },
    /// Neither proven nor refuted within the configured bounds.
    Unknown { reason: String, depth: usize },
}

impl Verdict {
    /// `true` only for a completed equivalence proof.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Verdict::Equivalent { .. })
    }
}

/// Verdict plus engine statistics.
#[derive(Debug, Clone)]
pub struct EquivOutcome {
    pub verdict: Verdict,
    pub stats: EngineStats,
    /// Correspondence classes in the final invariant attempt.
    pub groups: usize,
}

fn po_pairs(a: &Netlist, b: &Netlist) -> Result<Vec<(NetId, NetId)>> {
    let pa = triphase_sim::data_outputs(a);
    let pb = triphase_sim::data_outputs(b);
    if pa.len() != pb.len()
        || pa
            .iter()
            .zip(&pb)
            .any(|(&x, &y)| a.port(x).name != b.port(y).name)
    {
        return Err(Error::Unsupported("output ports differ".into()));
    }
    Ok(pa
        .iter()
        .zip(&pb)
        .map(|(&x, &y)| (a.port(x).net, b.port(y).net))
        .collect())
}

fn refute(
    a: &Netlist,
    b: &Netlist,
    opts: &Options,
    warmup: usize,
    reason: &str,
    mut stats: EngineStats,
    groups: usize,
) -> Result<EquivOutcome> {
    let po = po_pairs(a, b)?;
    let depth = opts.refute_depth.max(warmup + 4);
    let verdict = match engine::bmc_refute(a, b, &po, depth, warmup, &mut stats)? {
        Some(r) => {
            let rep = triphase_sim::replay_vectors(a, b, &r.vectors, warmup as u64)?;
            match rep.mismatch {
                Some(mismatch) => Verdict::NotEquivalent {
                    mismatch,
                    vectors: r.vectors,
                    frames: r.frames,
                },
                None => Verdict::Unknown {
                    reason: format!("{reason}; symbolic counterexample did not replay concretely"),
                    depth,
                },
            }
        }
        None => Verdict::Unknown {
            reason: format!("{reason}; no output mismatch within {depth} cycles"),
            depth,
        },
    };
    Ok(EquivOutcome {
        verdict,
        stats,
        groups,
    })
}

/// Check an FF design against its 3-phase conversion.
///
/// The phase-collapsing chain map supplies the invariant; 1-step
/// induction plus a reset base case proves cycle-exact equivalence from
/// cycle 0. If the converted design does not structurally fit a
/// conversion (corruption) or the induction fails, bounded model
/// checking searches for a concrete, simulator-confirmed counterexample.
///
/// # Errors
///
/// Simulator/netlist construction failures and mismatched data ports;
/// an inequivalent-but-well-formed pair is a [`Verdict`], not an error.
pub fn check_conversion(golden: &Netlist, dut: &Netlist, opts: &Options) -> Result<EquivOutcome> {
    let mut stats = EngineStats::default();
    let spec = match chain::build_conversion_spec(golden, dut) {
        Ok((spec, _info)) => spec,
        Err(Error::Unsupported(msg)) => {
            return refute(
                golden,
                dut,
                opts,
                0,
                &format!("no chain map ({msg})"),
                stats,
                0,
            )
        }
        Err(Error::Timing(e)) => {
            return refute(
                golden,
                dut,
                opts,
                0,
                &format!("no chain map ({e})"),
                stats,
                0,
            )
        }
        Err(e) => return Err(e),
    };
    let groups = spec.groups.len();
    match engine::induction_step(golden, dut, &spec, &mut stats)? {
        Induction::Proven { structural } => {
            match engine::bmc_base(golden, dut, &spec, 0, &mut stats)? {
                Base::Holds => Ok(EquivOutcome {
                    verdict: Verdict::Equivalent {
                        method: Method::ChainInduction,
                        structural,
                        from_cycle: 0,
                    },
                    stats,
                    groups,
                }),
                Base::Fails { .. } => {
                    refute(golden, dut, opts, 0, "base case failed", stats, groups)
                }
            }
        }
        Induction::Violated { .. } => refute(
            golden,
            dut,
            opts,
            0,
            "induction step violated",
            stats,
            groups,
        ),
    }
}

/// Check two sequential designs (typically the converted design against
/// its retimed version) by simulation-seeded signal correspondence.
///
/// Outputs are proven equal from the flush depth `W` onward — retimed
/// registers start from reset values that flush through feed-forward
/// logic, so the designs may legitimately differ for the first few
/// cycles (the same allowance the flow's streaming validation makes).
///
/// # Errors
///
/// As [`check_conversion`].
pub fn check_sequential(a: &Netlist, b: &Netlist, opts: &Options) -> Result<EquivOutcome> {
    let mut stats = EngineStats::default();
    let seed_opts = SeedOptions {
        seeds: opts.sim_seeds.max(1),
        cycles: opts.sim_cycles.max(opts.warmup_cap + 8),
        warmup_cap: opts.warmup_cap,
    };
    let (mut groups, w) = sigcorr::seed_classes(a, b, &seed_opts)?;
    let po = po_pairs(a, b)?;

    for _ in 0..=opts.max_refinements {
        if !po_classed(&groups, &po) {
            return refute(
                a,
                b,
                opts,
                w,
                "outputs fell out of correspondence",
                stats,
                groups.len(),
            );
        }
        let spec = Spec {
            groups: groups.clone(),
            guarded: Vec::new(),
            copies: Vec::new(),
            po_pairs: po.clone(),
        };
        let exit_values = match engine::induction_step(a, b, &spec, &mut stats)? {
            Induction::Proven { structural } => {
                match engine::bmc_base(a, b, &spec, w, &mut stats)? {
                    Base::Holds => {
                        return Ok(EquivOutcome {
                            verdict: Verdict::Equivalent {
                                method: Method::SignalCorrespondence,
                                structural,
                                from_cycle: w,
                            },
                            stats,
                            groups: groups.len(),
                        })
                    }
                    Base::Fails { exit_values } => exit_values,
                }
            }
            Induction::Violated { exit_values } => exit_values,
        };
        stats.refinements += 1;
        if !sigcorr::refine(&mut groups, &exit_values) {
            break;
        }
    }
    refute(
        a,
        b,
        opts,
        w,
        "no inductive signal correspondence",
        stats,
        groups.len(),
    )
}

fn po_classed(groups: &[crate::engine::Group], po: &[(NetId, NetId)]) -> bool {
    use crate::engine::{Side, Sig};
    po.iter().all(|&(na, nb)| {
        groups.iter().any(|g| {
            let find = |sig: Sig| g.members.iter().find(|m| m.sig == sig).map(|m| m.invert);
            match (find(Sig::Net(Side::A, na)), find(Sig::Net(Side::B, nb))) {
                (Some(ia), Some(ib)) => ia == ib,
                _ => false,
            }
        })
    })
}
