//! `triphase-equiv`: SAT-based formal equivalence checking of flip-flop
//! designs against their 3-phase latch-based conversions.
//!
//! The flow's streaming validation ([`triphase_sim::equiv_stream`])
//! compares two designs on pseudo-random stimulus; this crate proves the
//! property for *all* input sequences:
//!
//! 1. both designs are compiled into one shared, structurally hashed
//!    And-Inverter Graph ([`aig`]) by a symbolic twin of the cycle
//!    simulator ([`sym`]) — one symbolic step yields, per net, the exact
//!    Boolean next-state/output function the simulator evaluates;
//! 2. a **phase-collapsing chain map** ([`chain`]) maps each original FF
//!    to its `p1`/`p2`/`p3` latch chain and each clock gate to its
//!    converted twin, producing an induction invariant; for designs with
//!    no chain map (retimed ones), candidate invariants are seeded from
//!    lockstep simulation and refined van Eijk-style ([`sigcorr`]);
//! 3. 1-step induction plus a reset-anchored base case discharge the
//!    invariant; miters that fold to constant false in the hashed AIG
//!    are proven *structurally*, with no SAT call — which is the common
//!    case for correct conversions;
//! 4. residual miters go to a from-scratch CDCL solver ([`solver`]:
//!    watched literals, first-UIP learning, Luby restarts); a SAT answer
//!    is decoded into concrete per-cycle input vectors and only reported
//!    after [`triphase_sim::replay_vectors`] reproduces the mismatch on
//!    the concrete simulator.
//!
//! Entry points: [`check_conversion`] (FF vs converted) and
//! [`check_sequential`] (converted vs retimed); [`report::to_json`]
//! renders outcomes for the `equiv` CLI.

pub mod aig;
pub mod chain;
pub mod check;
pub mod engine;
pub mod error;
pub mod report;
pub mod sigcorr;
pub mod solver;
pub mod sym;

pub use chain::{build_conversion_spec, ChainInfo};
pub use check::{check_conversion, check_sequential, EquivOutcome, Method, Options, Verdict};
pub use engine::EngineStats;
pub use error::{Error, Result};
