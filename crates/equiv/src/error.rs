//! Error type for the equivalence engines.

use std::fmt;

#[derive(Debug)]
pub enum Error {
    /// The design has no clock specification.
    NoClock,
    /// Structural netlist error (e.g. combinational loop).
    Netlist(triphase_netlist::Error),
    /// Concrete simulation error during seeding or replay.
    Sim(triphase_sim::Error),
    /// Timing analysis error (phase classification).
    Timing(triphase_timing::Error),
    /// The designs cannot be compared (port mismatch, unsupported cell).
    Unsupported(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoClock => write!(f, "design has no clock specification"),
            Error::Netlist(e) => write!(f, "netlist error: {e}"),
            Error::Sim(e) => write!(f, "simulation error: {e}"),
            Error::Timing(e) => write!(f, "timing error: {e}"),
            Error::Unsupported(m) => write!(f, "unsupported comparison: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Netlist(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Timing(e) => Some(e),
            _ => None,
        }
    }
}

impl From<triphase_netlist::Error> for Error {
    fn from(e: triphase_netlist::Error) -> Self {
        Error::Netlist(e)
    }
}

impl From<triphase_sim::Error> for Error {
    fn from(e: triphase_sim::Error) -> Self {
        Error::Sim(e)
    }
}

impl From<triphase_timing::Error> for Error {
    fn from(e: triphase_timing::Error) -> Self {
        Error::Timing(e)
    }
}

pub type Result<T> = std::result::Result<T, Error>;
