//! The induction/BMC engine over a product of two symbolic designs.
//!
//! One engine serves both equivalence checks in the flow:
//!
//! * **conversion** (FF vs 3-phase): candidate state correspondences come
//!   from the structural chain map ([`crate::chain`]) and the invariant is
//!   proven by 1-step induction — assume the correspondence classes at a
//!   cycle boundary, step both designs symbolically through one full
//!   clock cycle with shared fresh inputs, and show every class (and
//!   every output pair) still holds at the next boundary;
//! * **retiming** (3-phase vs retimed 3-phase): candidate classes come
//!   from concrete lockstep simulation ([`crate::sigcorr`]), refined van
//!   Eijk-style on SAT counterexamples.
//!
//! Because both designs are expressed over one structurally hashed AIG
//! with shared entry variables, a correct conversion collapses: golden
//! and converted next-state/output functions reduce to the *same*
//! literals, the violation miter folds to constant false, and the proof
//! finishes without a single SAT call. The CDCL solver only runs on
//! designs that genuinely differ (or on retimed designs, where logic is
//! restructured around moved registers).

use crate::aig::{Aig, Lit, FALSE};
use crate::error::{Error, Result};
use crate::solver::{CnfBuilder, Verdict as SatVerdict};
use crate::sym::SymSim;
use std::collections::HashSet;
use triphase_netlist::{CellId, NetId, Netlist};

/// Per-side input assignments handed to [`SymSim::step`].
type NetAssigns = Vec<(NetId, Lit)>;

/// Which of the two product designs a signal lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The reference design (golden / pre-retime).
    A,
    /// The design under verification.
    B,
}

/// An atom of the correspondence invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sig {
    /// The constant-false signal.
    Const,
    /// A net's settled value at a cycle boundary.
    Net(Side, NetId),
    /// A clock gate's internal enable-latch state.
    Icg(Side, CellId),
}

/// One signal inside an equivalence [`Group`].
#[derive(Debug, Clone, Copy)]
pub struct Member {
    pub sig: Sig,
    /// Signal corresponds to the complement of the group value.
    pub invert: bool,
    /// Assume equality at the entry boundary (part of the invariant).
    pub assume: bool,
    /// Check equality at the exit boundary (proof obligation).
    pub check: bool,
}

impl Member {
    /// An ordinary member: assumed at entry, checked at exit.
    pub fn full(sig: Sig) -> Member {
        Member {
            sig,
            invert: false,
            assume: true,
            check: true,
        }
    }

    /// [`Member::full`] with an explicit polarity.
    pub fn with_invert(sig: Sig, invert: bool) -> Member {
        Member {
            sig,
            invert,
            assume: true,
            check: true,
        }
    }

    /// A member whose raw state is substituted with the group variable
    /// but that carries no entry assumption or exit obligation — used for
    /// boundary-transparent `p3` leads, whose settled boundary value is
    /// the *next* state, not the current one.
    pub fn substitute_only(sig: Sig) -> Member {
        Member {
            sig,
            invert: false,
            assume: false,
            check: false,
        }
    }
}

/// A candidate equivalence class of signals.
#[derive(Debug, Clone, Default)]
pub struct Group {
    pub members: Vec<Member>,
}

/// A conditional exit obligation: unless `unless` holds at the exit
/// boundary, `a` and `b` must agree there. Encodes the held value of a
/// gated `p3` lead latch, which is only observable while its gate is off.
#[derive(Debug, Clone, Copy)]
pub struct GuardedCheck {
    pub unless: Sig,
    pub a: Sig,
    pub b: Sig,
}

/// Initialise a B-side state element from an A-side *settled* entry
/// literal instead of a fresh variable. Used for converted clock gates,
/// whose enable state at a boundary is definitionally the golden gate's
/// (recomputed) enable — substituting the very literal makes the two
/// fabrics collapse structurally.
#[derive(Debug, Clone, Copy)]
pub struct CopyInit {
    pub from_a: Sig,
    pub to_b: Sig,
}

/// Everything the engine needs for one induction check.
#[derive(Debug, Clone, Default)]
pub struct Spec {
    pub groups: Vec<Group>,
    pub guarded: Vec<GuardedCheck>,
    pub copies: Vec<CopyInit>,
    /// Output-net pairs `(A, B)`, used for BMC refutation miters.
    pub po_pairs: Vec<(NetId, NetId)>,
}

/// Cumulative solver/AIG statistics across an engine run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    pub aig_nodes: usize,
    pub sat_calls: u32,
    pub conflicts: u64,
    pub refinements: u32,
}

/// Outcome of a 1-step induction check.
pub(crate) enum Induction {
    /// Every obligation holds; `structural` means the miter folded to
    /// constant false and no SAT call was needed.
    Proven { structural: bool },
    /// A class (or guarded obligation) can be violated in one step from
    /// some state satisfying the invariant. `exit_values` holds every
    /// member's normalised exit value under the counterexample model,
    /// parallel to `spec.groups`, for class refinement.
    Violated { exit_values: Vec<Vec<bool>> },
}

/// Outcome of a base-case BMC check.
pub(crate) enum Base {
    Holds,
    /// As [`Induction::Violated`], evaluated at the final frame.
    Fails {
        exit_values: Vec<Vec<bool>>,
    },
}

/// A concrete refutation candidate from bounded model checking.
pub(crate) struct Refutation {
    /// Per-cycle input vectors in `data_inputs` (name-sorted) order.
    pub vectors: Vec<Vec<bool>>,
    pub frames: usize,
}

fn norm(l: Lit, invert: bool) -> Lit {
    if invert {
        l.not()
    } else {
        l
    }
}

/// The symbolic product machine: both designs stepped over one shared AIG
/// with shared input variables.
pub(crate) struct Product<'n> {
    pub aig: Aig,
    pub a: SymSim<'n>,
    pub b: SymSim<'n>,
    /// Data-input net pairs, name-sorted (the shared-variable order).
    in_pairs: Vec<(NetId, NetId)>,
    state_nets_a: HashSet<NetId>,
    state_nets_b: HashSet<NetId>,
    input_nets_a: HashSet<NetId>,
    input_nets_b: HashSet<NetId>,
}

impl<'n> Product<'n> {
    pub fn new(a_nl: &'n Netlist, b_nl: &'n Netlist) -> Result<Product<'n>> {
        let ia = triphase_sim::data_inputs(a_nl);
        let ib = triphase_sim::data_inputs(b_nl);
        let names = |nl: &Netlist, ps: &[triphase_netlist::PortId]| -> Vec<String> {
            ps.iter().map(|&p| nl.port(p).name.clone()).collect()
        };
        if names(a_nl, &ia) != names(b_nl, &ib) {
            return Err(Error::Unsupported("data input ports differ".into()));
        }
        let in_pairs = ia
            .iter()
            .zip(&ib)
            .map(|(&pa, &pb)| (a_nl.port(pa).net, b_nl.port(pb).net))
            .collect();
        let storage_outs = |nl: &Netlist| -> HashSet<NetId> {
            nl.cells()
                .filter(|(_, c)| c.kind.is_storage())
                .map(|(_, c)| c.output())
                .collect()
        };
        Ok(Product {
            aig: Aig::new(),
            a: SymSim::new(a_nl)?,
            b: SymSim::new(b_nl)?,
            state_nets_a: storage_outs(a_nl),
            state_nets_b: storage_outs(b_nl),
            input_nets_a: ia.iter().map(|&p| a_nl.port(p).net).collect(),
            input_nets_b: ib.iter().map(|&p| b_nl.port(p).net).collect(),
            in_pairs,
        })
    }

    pub fn lit(&self, s: Sig) -> Lit {
        match s {
            Sig::Const => FALSE,
            Sig::Net(Side::A, n) => self.a.net_lit(n),
            Sig::Net(Side::B, n) => self.b.net_lit(n),
            Sig::Icg(Side::A, c) => self.a.icg_lit(c),
            Sig::Icg(Side::B, c) => self.b.icg_lit(c),
        }
    }

    fn set_raw(&mut self, s: Sig, l: Lit) {
        match s {
            Sig::Const => {}
            Sig::Net(Side::A, n) => self.a.set_net_raw(n, l),
            Sig::Net(Side::B, n) => self.b.set_net_raw(n, l),
            Sig::Icg(Side::A, c) => self.a.set_icg_raw(c, l),
            Sig::Icg(Side::B, c) => self.b.set_icg_raw(c, l),
        }
    }

    /// A state element whose raw entry literal may be overwritten.
    fn is_state(&self, s: Sig) -> bool {
        match s {
            Sig::Const => false,
            Sig::Icg(..) => true,
            Sig::Net(Side::A, n) => self.state_nets_a.contains(&n),
            Sig::Net(Side::B, n) => self.state_nets_b.contains(&n),
        }
    }

    /// A net whose raw literal is externally fixed (shared input var).
    fn is_input(&self, s: Sig) -> bool {
        match s {
            Sig::Net(Side::A, n) => self.input_nets_a.contains(&n),
            Sig::Net(Side::B, n) => self.input_nets_b.contains(&n),
            _ => false,
        }
    }

    /// One shared fresh variable per data-input pair; returns the
    /// per-side `(net, literal)` assignments for [`SymSim::step`] and the
    /// shared literals in name order.
    fn fresh_inputs(&mut self) -> (NetAssigns, NetAssigns, Vec<Lit>) {
        let mut ins_a = Vec::with_capacity(self.in_pairs.len());
        let mut ins_b = Vec::with_capacity(self.in_pairs.len());
        let mut vars = Vec::with_capacity(self.in_pairs.len());
        for &(na, nb) in &self.in_pairs {
            let v = self.aig.var();
            ins_a.push((na, v));
            ins_b.push((nb, v));
            vars.push(v);
        }
        (ins_a, ins_b, vars)
    }

    /// Share one state variable across each group's state members (the
    /// collapsing step): the group value comes from an input/const member
    /// if present, else from the first state member's fresh variable;
    /// every other state member's raw literal is overwritten with it.
    fn apply_group_vars(&mut self, groups: &[Group]) {
        for g in groups {
            let mut val: Option<Lit> = None;
            for m in &g.members {
                if m.sig == Sig::Const || self.is_input(m.sig) {
                    val = Some(norm(self.lit(m.sig), m.invert));
                    break;
                }
            }
            if val.is_none() {
                for m in &g.members {
                    if self.is_state(m.sig) {
                        val = Some(norm(self.lit(m.sig), m.invert));
                        break;
                    }
                }
            }
            let Some(val) = val else { continue };
            for m in &g.members {
                if self.is_state(m.sig) {
                    let want = norm(val, m.invert);
                    if self.lit(m.sig) != want {
                        self.set_raw(m.sig, want);
                    }
                }
            }
        }
    }

    /// Entry-equality pairs for assumed members whose settled literals
    /// did not already collapse.
    fn entry_assumptions(&self, groups: &[Group]) -> Vec<(Lit, Lit)> {
        let mut pairs = Vec::new();
        for g in groups {
            let mut rep: Option<Lit> = None;
            for m in &g.members {
                if !m.assume {
                    continue;
                }
                let l = norm(self.lit(m.sig), m.invert);
                match rep {
                    None => rep = Some(l),
                    Some(r) if r != l => pairs.push((r, l)),
                    Some(_) => {}
                }
            }
        }
        pairs
    }

    /// Per-member normalised exit literals, parallel to `groups`.
    fn member_exit_lits(&self, groups: &[Group]) -> Vec<Vec<Lit>> {
        groups
            .iter()
            .map(|g| {
                g.members
                    .iter()
                    .map(|m| norm(self.lit(m.sig), m.invert))
                    .collect()
            })
            .collect()
    }

    /// OR of all exit-boundary violations: checked members differing from
    /// their group plus triggered guarded obligations.
    fn violation_miter(&mut self, spec: &Spec) -> Lit {
        let mut miter = FALSE;
        for g in &spec.groups {
            let mut rep: Option<Lit> = None;
            for m in &g.members {
                if !m.check {
                    continue;
                }
                let l = norm(self.lit(m.sig), m.invert);
                match rep {
                    None => rep = Some(l),
                    Some(r) => {
                        let x = self.aig.xor(r, l);
                        miter = self.aig.or(miter, x);
                    }
                }
            }
        }
        for gc in &spec.guarded {
            let u = self.lit(gc.unless);
            let x = {
                let (la, lb) = (self.lit(gc.a), self.lit(gc.b));
                self.aig.xor(la, lb)
            };
            let t = self.aig.and(u.not(), x);
            miter = self.aig.or(miter, t);
        }
        miter
    }
}

/// Decode normalised member exit values from a SAT model by evaluating
/// the whole AIG under the model's variable assignment (unmapped
/// variables default to false, a consistent extension).
fn decode_exit_values(aig: &Aig, cnf: &CnfBuilder, exit_lits: &[Vec<Lit>]) -> Vec<Vec<bool>> {
    let vals = aig.eval_all(&|n| cnf.model_lit(Lit(n << 1)));
    exit_lits
        .iter()
        .map(|ls| ls.iter().map(|&l| Aig::lit_value(&vals, l)).collect())
        .collect()
}

/// One-step induction: assume the invariant at an arbitrary boundary,
/// step one cycle with shared fresh inputs, check every obligation.
pub(crate) fn induction_step(
    a_nl: &Netlist,
    b_nl: &Netlist,
    spec: &Spec,
    stats: &mut EngineStats,
) -> Result<Induction> {
    let mut p = Product::new(a_nl, b_nl)?;
    p.a.init_free(&mut p.aig);
    p.b.init_free(&mut p.aig);
    // Entry inputs: one shared variable per pair (the previous cycle's
    // still-driven values).
    let (ins_a, ins_b, _) = p.fresh_inputs();
    for &(n, l) in &ins_a {
        p.a.set_net_raw(n, l);
    }
    for &(n, l) in &ins_b {
        p.b.set_net_raw(n, l);
    }
    p.apply_group_vars(&spec.groups);
    p.a.presettle(&mut p.aig);
    for c in &spec.copies {
        let l = p.lit(c.from_a);
        p.set_raw(c.to_b, l);
    }
    p.b.presettle(&mut p.aig);
    let assumptions = p.entry_assumptions(&spec.groups);
    let (step_a, step_b, _) = p.fresh_inputs();
    p.a.step(&mut p.aig, &step_a);
    p.b.step(&mut p.aig, &step_b);
    let miter = p.violation_miter(spec);
    stats.aig_nodes = stats.aig_nodes.max(p.aig.len());
    if miter == FALSE {
        return Ok(Induction::Proven { structural: true });
    }
    let mut cnf = CnfBuilder::new(&p.aig);
    for &(x, y) in &assumptions {
        cnf.assert_equal(&p.aig, x, y);
    }
    cnf.assert_true(&p.aig, miter);
    stats.sat_calls += 1;
    let verdict = cnf.solve();
    stats.conflicts += cnf.solver.conflicts;
    match verdict {
        SatVerdict::Unsat => Ok(Induction::Proven { structural: false }),
        SatVerdict::Sat => {
            let exit_lits = p.member_exit_lits(&spec.groups);
            Ok(Induction::Violated {
                exit_values: decode_exit_values(&p.aig, &cnf, &exit_lits),
            })
        }
    }
}

/// Base case: unroll `w + 1` cycles from the concrete all-zero reset
/// with shared symbolic inputs and check every obligation at the final
/// boundary (cycle `w`).
pub(crate) fn bmc_base(
    a_nl: &Netlist,
    b_nl: &Netlist,
    spec: &Spec,
    w: usize,
    stats: &mut EngineStats,
) -> Result<Base> {
    let mut p = Product::new(a_nl, b_nl)?;
    p.a.reset_zero(&mut p.aig);
    p.b.reset_zero(&mut p.aig);
    for _ in 0..=w {
        p.a.presettle(&mut p.aig);
        p.b.presettle(&mut p.aig);
        let (ins_a, ins_b, _) = p.fresh_inputs();
        p.a.step(&mut p.aig, &ins_a);
        p.b.step(&mut p.aig, &ins_b);
    }
    let miter = p.violation_miter(spec);
    stats.aig_nodes = stats.aig_nodes.max(p.aig.len());
    if miter == FALSE {
        return Ok(Base::Holds);
    }
    let mut cnf = CnfBuilder::new(&p.aig);
    cnf.assert_true(&p.aig, miter);
    stats.sat_calls += 1;
    let verdict = cnf.solve();
    stats.conflicts += cnf.solver.conflicts;
    match verdict {
        SatVerdict::Unsat => Ok(Base::Holds),
        SatVerdict::Sat => {
            let exit_lits = p.member_exit_lits(&spec.groups);
            Ok(Base::Fails {
                exit_values: decode_exit_values(&p.aig, &cnf, &exit_lits),
            })
        }
    }
}

/// Bounded refutation: unroll `depth` cycles from reset and ask SAT for
/// any output mismatch at a cycle `>= warmup`. A model is decoded into
/// concrete per-cycle input vectors for confirmation on the concrete
/// simulator.
pub(crate) fn bmc_refute(
    a_nl: &Netlist,
    b_nl: &Netlist,
    po_pairs: &[(NetId, NetId)],
    depth: usize,
    warmup: usize,
    stats: &mut EngineStats,
) -> Result<Option<Refutation>> {
    let mut p = Product::new(a_nl, b_nl)?;
    p.a.reset_zero(&mut p.aig);
    p.b.reset_zero(&mut p.aig);
    let mut frame_vars: Vec<Vec<Lit>> = Vec::with_capacity(depth);
    let mut miter = FALSE;
    for frame in 0..depth {
        p.a.presettle(&mut p.aig);
        p.b.presettle(&mut p.aig);
        let (ins_a, ins_b, vars) = p.fresh_inputs();
        frame_vars.push(vars);
        p.a.step(&mut p.aig, &ins_a);
        p.b.step(&mut p.aig, &ins_b);
        if frame < warmup {
            continue;
        }
        for &(na, nb) in po_pairs {
            let x = {
                let (la, lb) = (p.a.net_lit(na), p.b.net_lit(nb));
                p.aig.xor(la, lb)
            };
            miter = p.aig.or(miter, x);
        }
    }
    stats.aig_nodes = stats.aig_nodes.max(p.aig.len());
    if miter == FALSE {
        return Ok(None);
    }
    let mut cnf = CnfBuilder::new(&p.aig);
    cnf.assert_true(&p.aig, miter);
    stats.sat_calls += 1;
    let verdict = cnf.solve();
    stats.conflicts += cnf.solver.conflicts;
    match verdict {
        SatVerdict::Unsat => Ok(None),
        SatVerdict::Sat => {
            let vectors = frame_vars
                .iter()
                .map(|vs| vs.iter().map(|&v| cnf.model_lit(v)).collect())
                .collect();
            Ok(Some(Refutation {
                vectors,
                frames: depth,
            }))
        }
    }
}
