//! End-to-end certification tests: the real conversion pipeline from
//! `triphase-core` against the formal engines, plus deliberate
//! corruptions that must be refuted with simulator-confirmed
//! counterexamples.

use triphase_cells::CellKind;
use triphase_circuits::iscas::{generate_iscas, iscas_profiles, s27};
use triphase_circuits::pipeline::linear_pipeline;
use triphase_core::{
    assign_phases, extract_ff_graph, gated_clock_style, retime_three_phase, to_three_phase,
};
use triphase_equiv::{check_conversion, check_sequential, Method, Options, Verdict};
use triphase_ilp::PhaseConfig;
use triphase_netlist::{Builder, ClockSpec, Netlist};

/// The flow's preprocessing: lower enable FFs to ICG + plain DFF.
fn preprocess(nl: &Netlist) -> Netlist {
    let mut pre = nl.clone();
    gated_clock_style(&mut pre, 32).unwrap();
    pre.compact()
}

/// The flow's conversion step.
fn convert(pre: &Netlist) -> Netlist {
    let idx = pre.index();
    let g = extract_ff_graph(pre, &idx).unwrap();
    let a = assign_phases(&g, &PhaseConfig::default());
    to_three_phase(pre, &a).unwrap().0
}

fn assert_proven_conversion(pre: &Netlist, tp: &Netlist) {
    let out = check_conversion(pre, tp, &Options::default()).unwrap();
    match out.verdict {
        Verdict::Equivalent {
            method, from_cycle, ..
        } => {
            assert_eq!(method, Method::ChainInduction);
            assert_eq!(from_cycle, 0, "conversion must be cycle-exact");
        }
        other => panic!("expected proof, got {other:?}"),
    }
}

#[test]
fn pipeline_conversion_proven_structurally() {
    let nl = linear_pipeline(3, 5, 1, 1000.0);
    let pre = preprocess(&nl);
    let tp = convert(&pre);
    let out = check_conversion(&pre, &tp, &Options::default()).unwrap();
    match out.verdict {
        Verdict::Equivalent {
            method, structural, ..
        } => {
            assert_eq!(method, Method::ChainInduction);
            assert!(structural, "pipeline miters should fold in the AIG");
            assert_eq!(out.stats.sat_calls, 0);
        }
        other => panic!("expected structural proof, got {other:?}"),
    }
}

#[test]
fn s27_conversion_proven() {
    let nl = s27(1000.0);
    let pre = preprocess(&nl);
    let tp = convert(&pre);
    assert_proven_conversion(&pre, &tp);
}

#[test]
fn gated_iscas_conversion_proven() {
    // A generated ISCAS circuit with enable FFs: preprocessing inserts
    // real ICGs, exercising the clock-gate pairing and the guarded-p3
    // obligations of the chain map.
    let profile = iscas_profiles()
        .into_iter()
        .find(|p| p.name == "s1196")
        .unwrap();
    let nl = generate_iscas(&profile, 42);
    let pre = preprocess(&nl);
    assert!(
        pre.cells().any(|(_, c)| c.kind == CellKind::Icg),
        "test premise: the preprocessed design must contain clock gates"
    );
    let tp = convert(&pre);
    assert_proven_conversion(&pre, &tp);
}

/// Swap one lead latch onto the wrong phase (`p1` -> `p2`): it becomes
/// transparent in the same window as its producer's `p2` trail latch, so
/// new data races through one stage early.
#[test]
fn swapped_latch_phase_is_refuted() {
    let nl = linear_pipeline(3, 5, 1, 1000.0);
    let pre = preprocess(&nl);
    let mut tp = convert(&pre);
    let p1 = tp.port(tp.find_port("p1").unwrap()).net;
    let p2 = tp.port(tp.find_port("p2").unwrap()).net;
    let victim = tp
        .cells()
        .find(|(_, c)| c.kind == CellKind::LatchH && !c.name.starts_with("lat_p") && c.pin(1) == p1)
        .map(|(id, _)| id)
        .expect("a p1 lead latch to corrupt");
    tp.set_pin(victim, 1, p2);
    let out = check_conversion(&pre, &tp, &Options::default()).unwrap();
    match out.verdict {
        Verdict::NotEquivalent {
            mismatch, vectors, ..
        } => {
            // The counterexample was replayed through the cycle-accurate
            // simulator and reproduced concretely.
            assert!(!vectors.is_empty());
            assert!(mismatch.port.starts_with("dout"), "{mismatch:?}");
        }
        other => panic!("expected refutation, got {other:?}"),
    }
}

/// Corrupt one combinational gate (XOR -> AND): the chain map still
/// matches, so the refutation comes from the induction engine via BMC.
#[test]
fn dropped_gate_is_refuted() {
    let nl = linear_pipeline(2, 5, 1, 1000.0);
    let pre = preprocess(&nl);
    let mut tp = convert(&pre);
    let victim = tp
        .cells()
        .find(|(_, c)| c.kind == CellKind::Xor(2))
        .map(|(id, c)| (id, c.pins().to_vec()))
        .expect("an XOR gate to corrupt");
    tp.replace_cell(victim.0, CellKind::And(2), victim.1);
    let out = check_conversion(&pre, &tp, &Options::default()).unwrap();
    match out.verdict {
        Verdict::NotEquivalent { mismatch, .. } => {
            assert!(mismatch.port.starts_with("dout"), "{mismatch:?}");
        }
        other => panic!("expected refutation, got {other:?}"),
    }
}

/// An unbalanced FF pipeline (deep stage 1, empty stage 2) whose
/// converted form has movable p2 latches — the retiming benchmark shape.
fn unbalanced_pipeline(depth1: usize) -> Netlist {
    let mut nl = Netlist::new("unb");
    let mut b = Builder::new(&mut nl, "u");
    let (ckp, ck) = b.netlist().add_input("ck");
    let d = b.word_input("d", 4);
    let s0 = b.dff_word(&d, ck);
    let mut x = s0;
    for _ in 0..depth1 {
        let r = x.rotl(1);
        x = b.xor_word(&x, &r);
    }
    let s1 = b.dff_word(&x, ck);
    let s2 = b.dff_word(&s1, ck);
    b.word_output("q", &s2);
    nl.clock = Some(ClockSpec::single(ckp, 900.0));
    nl
}

#[test]
fn retimed_design_proven_by_signal_correspondence() {
    let lib = triphase_cells::Library::synthetic_28nm();
    let nl = unbalanced_pipeline(8);
    let pre = preprocess(&nl);
    let tp = convert(&pre);
    let (rt, report) = retime_three_phase(&tp, &lib, 0.5).unwrap();
    assert!(report.ran, "test premise: retiming must actually run");
    let out = check_sequential(&tp, &rt, &Options::default()).unwrap();
    match out.verdict {
        Verdict::Equivalent {
            method, from_cycle, ..
        } => {
            assert_eq!(method, Method::SignalCorrespondence);
            assert!(from_cycle <= 16, "flush depth bounded by warmup cap");
        }
        other => panic!("expected proof, got {other:?}"),
    }
    assert!(out.groups > 0);
}

#[test]
fn json_report_round_trips_the_verdict() {
    let nl = linear_pipeline(2, 5, 1, 1000.0);
    let pre = preprocess(&nl);
    let tp = convert(&pre);
    let out = check_conversion(&pre, &tp, &Options::default()).unwrap();
    let json = triphase_equiv::report::to_json("pipe", "conversion", &out);
    assert!(json.contains("\"design\":\"pipe\""));
    assert!(json.contains("\"verdict\":\"equivalent\""));
    assert!(json.contains("\"method\":\"chain_induction\""));
    assert!(json.contains("\"mismatch\":null"));
}
