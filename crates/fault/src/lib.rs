//! `triphase-fault` — deterministic fault injection for flow hardening.
//!
//! The conversion flow is a long pipeline (phase-assignment ILP → convert
//! → retime → clock gating → P&R → power) running batches of designs on a
//! work-stealing pool. Any stage can fail in the field: the branch-and-
//! bound solver exhausts its node or wall-clock budget, the simplex hits
//! a numeric edge, a malformed netlist slips in, a task panics. This
//! crate provides the *controlled* version of those failures so the rest
//! of the workspace can prove it degrades instead of crashing.
//!
//! # Design
//!
//! - [`Fault`] is the closed taxonomy of injectable failures.
//! - [`Injector`] is the hook trait threaded (as `Option<SharedInjector>`)
//!   through `IlpConfig`, `PhaseConfig`, and `FlowConfig`. Production
//!   code consults it at named **sites** (`"ilp.solve"`, `"phase.exact"`,
//!   `"flow.variant.3p"`, …) via [`fault_at`]; with no injector installed
//!   the check is a single `Option` match.
//! - [`FaultPlan`] is the standard implementation: an ordered list of
//!   site-prefix rules plus a seed. Whether a rule fires at a site is a
//!   pure function of `(seed, site, rule)` — never of thread count,
//!   scheduling, or wall-clock — so campaigns are reproducible under any
//!   `TRIPHASE_THREADS`.
//!
//! # Example
//!
//! ```
//! use triphase_fault::{Fault, FaultPlan, Injector};
//!
//! let plan = FaultPlan::new(42).inject("phase.", Fault::ExhaustNodes);
//! assert_eq!(plan.fault_at("phase.exact"), Some(Fault::ExhaustNodes));
//! assert_eq!(plan.fault_at("flow.drive"), None);
//! ```

use std::fmt;
use std::sync::Arc;

/// The closed taxonomy of injectable failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Force the solver's node budget to zero: the search must stop
    /// immediately and report a node-limit outcome (with or without an
    /// incumbent).
    ExhaustNodes,
    /// Force the wall-clock deadline into the past: the search must stop
    /// at its next deadline check and report a time-limit outcome.
    ExpireDeadline,
    /// Simulate simplex cycling / numeric instability: the solver must
    /// surface a typed numeric error, triggering the next fallback rung.
    Numeric,
    /// Panic at the site. Exercises `catch_unwind` containment around
    /// pool tasks and flow stages.
    Panic,
    /// Make the simulation driver produce zero cycles of activity, the
    /// `NoCycles` failure mode of toggle-rate estimation.
    EmptyActivity,
}

impl Fault {
    /// Stable lower-case name, used in campaign reports.
    pub fn name(self) -> &'static str {
        match self {
            Fault::ExhaustNodes => "exhaust-nodes",
            Fault::ExpireDeadline => "expire-deadline",
            Fault::Numeric => "numeric",
            Fault::Panic => "panic",
            Fault::EmptyActivity => "empty-activity",
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Injection hook consulted by production code at named sites.
///
/// Implementations must be deterministic: the answer for a given site
/// must not depend on thread scheduling or time.
pub trait Injector: Send + Sync + fmt::Debug {
    /// The fault (if any) to inject at `site`.
    fn fault_at(&self, site: &str) -> Option<Fault>;
}

/// Shareable injector handle, cheap to clone into configs.
pub type SharedInjector = Arc<dyn Injector>;

/// Consult an optional hook at a site. The no-injector fast path is a
/// single `Option` discriminant check.
pub fn fault_at(hook: &Option<SharedInjector>, site: &str) -> Option<Fault> {
    hook.as_ref().and_then(|h| h.fault_at(site))
}

/// Panic with the canonical injected-fault message. Call sites that
/// receive [`Fault::Panic`] use this so contained panics are
/// recognizable in reports.
pub fn injected_panic(site: &str) -> ! {
    panic!("injected fault: panic at {site}")
}

#[derive(Debug, Clone)]
struct Rule {
    prefix: String,
    fault: Fault,
    /// Firing rate out of 1000. 1000 = always.
    permille: u16,
}

/// Seeded, ordered site-prefix fault plan (first matching rule wins).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
}

impl FaultPlan {
    /// Empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Always inject `fault` at every site starting with `prefix`.
    pub fn inject(self, prefix: &str, fault: Fault) -> Self {
        self.inject_permille(prefix, fault, 1000)
    }

    /// Inject `fault` at sites starting with `prefix` with probability
    /// `permille / 1000`, decided by hashing `(seed, site)` — i.e. a
    /// fixed site either always or never fires for a given plan.
    pub fn inject_permille(mut self, prefix: &str, fault: Fault, permille: u16) -> Self {
        self.rules.push(Rule {
            prefix: prefix.to_string(),
            fault,
            permille: permille.min(1000),
        });
        self
    }

    /// Wrap into the shared handle configs carry.
    pub fn shared(self) -> SharedInjector {
        Arc::new(self)
    }

    fn fires(&self, rule: &Rule, site: &str) -> bool {
        if rule.permille >= 1000 {
            return true;
        }
        let mut h = fnv1a64(site.as_bytes());
        h = mix64(h ^ self.seed ^ fnv1a64(rule.prefix.as_bytes()));
        (h % 1000) < u64::from(rule.permille)
    }
}

impl Injector for FaultPlan {
    fn fault_at(&self, site: &str) -> Option<Fault> {
        self.rules
            .iter()
            .find(|r| site.starts_with(&r.prefix) && self.fires(r, site))
            .map(|r| r.fault)
    }
}

/// FNV-1a 64-bit hash. Also used by the flow checkpoint store to
/// fingerprint configurations.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: bijective avalanche mix.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new(7);
        assert_eq!(plan.fault_at("ilp.solve"), None);
        assert_eq!(plan.fault_at(""), None);
    }

    #[test]
    fn prefix_match_first_rule_wins() {
        let plan = FaultPlan::new(1)
            .inject("phase.exact", Fault::Numeric)
            .inject("phase.", Fault::ExhaustNodes);
        assert_eq!(plan.fault_at("phase.exact"), Some(Fault::Numeric));
        assert_eq!(plan.fault_at("phase.ilp"), Some(Fault::ExhaustNodes));
        assert_eq!(plan.fault_at("flow.drive"), None);
    }

    #[test]
    fn permille_is_deterministic_per_site() {
        let plan = FaultPlan::new(99).inject_permille("s.", Fault::Panic, 500);
        let sites: Vec<String> = (0..64).map(|i| format!("s.{i}")).collect();
        let first: Vec<_> = sites.iter().map(|s| plan.fault_at(s)).collect();
        for _ in 0..4 {
            let again: Vec<_> = sites.iter().map(|s| plan.fault_at(s)).collect();
            assert_eq!(first, again);
        }
        let hits = first.iter().filter(|f| f.is_some()).count();
        assert!(
            hits > 0 && hits < 64,
            "rate 500/1000 should hit some but not all: {hits}"
        );
    }

    #[test]
    fn permille_zero_never_fires() {
        let plan = FaultPlan::new(3).inject_permille("x", Fault::Numeric, 0);
        for i in 0..32 {
            assert_eq!(plan.fault_at(&format!("x{i}")), None);
        }
    }

    #[test]
    fn fnv_and_mix_are_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn shared_handle_works_through_trait_object() {
        let hook: Option<SharedInjector> = Some(
            FaultPlan::new(0)
                .inject("a", Fault::ExpireDeadline)
                .shared(),
        );
        assert_eq!(fault_at(&hook, "a.b"), Some(Fault::ExpireDeadline));
        assert_eq!(fault_at(&None, "a.b"), None);
    }
}
