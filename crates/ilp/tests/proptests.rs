//! Property tests: the specialized phase solver agrees with brute force
//! and with the literal ILP on arbitrary small instances.

use proptest::prelude::*;
use triphase_ilp::{IlpConfig, PhaseConfig, PhaseProblem};

fn brute_force(p: &PhaseProblem) -> usize {
    let n = p.num_nodes();
    assert!(n <= 12);
    (0..1u32 << n)
        .map(|mask| {
            let k: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
            p.cost_of(&k)
        })
        .min()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn specialized_solver_is_exact(
        n in 1usize..10,
        edges in prop::collection::vec((0usize..10, 0usize..10), 0..24),
        pis in prop::collection::vec(prop::collection::vec(0usize..10, 1..5), 0..3),
    ) {
        let mut p = PhaseProblem::new(n);
        for (u, v) in edges {
            if u < n && v < n {
                p.add_fanout(u, v);
            }
        }
        for fo in pis {
            let fo: Vec<usize> = fo.into_iter().filter(|&v| v < n).collect();
            if !fo.is_empty() {
                p.add_pi(fo);
            }
        }
        let want = brute_force(&p);
        let sol = p.solve(&PhaseConfig::default());
        prop_assert!(sol.optimal);
        prop_assert_eq!(sol.cost, want);
        // The decoded assignment must evaluate to its claimed cost.
        prop_assert_eq!(p.cost_of(&sol.k), sol.cost);
    }

    #[test]
    fn literal_ilp_agrees(
        n in 1usize..7,
        edges in prop::collection::vec((0usize..7, 0usize..7), 0..12),
    ) {
        let mut p = PhaseProblem::new(n);
        for (u, v) in edges {
            if u < n && v < n {
                p.add_fanout(u, v);
            }
        }
        let want = brute_force(&p);
        let ilp = p.solve_via_ilp(&IlpConfig::default()).expect("solvable");
        prop_assert_eq!(ilp.cost, want);
    }

    #[test]
    fn solution_satisfies_paper_constraints(
        n in 1usize..10,
        edges in prop::collection::vec((0usize..10, 0usize..10), 0..20),
    ) {
        let mut p = PhaseProblem::new(n);
        let mut fo = vec![vec![]; n];
        for (u, v) in edges {
            if u < n && v < n {
                p.add_fanout(u, v);
                if !fo[u].contains(&v) {
                    fo[u].push(v);
                }
            }
        }
        let sol = p.solve(&PhaseConfig::default());
        for u in 0..n {
            // G(u) + K(u) >= 1
            prop_assert!(sol.g[u] || sol.k[u]);
            // G(u) >= K(u) + K(v) - 1
            for &v in &fo[u] {
                if sol.k[u] && sol.k[v] {
                    prop_assert!(sol.g[u], "u={u} v={v}");
                }
            }
        }
    }
}
