//! Property-style tests: the specialized phase solver agrees with brute
//! force and with the literal ILP on randomized small instances drawn
//! from a deterministic stream.

use triphase_ilp::{IlpConfig, PhaseConfig, PhaseProblem};
use triphase_netlist::SplitMix64 as Rng;

fn brute_force(p: &PhaseProblem) -> usize {
    let n = p.num_nodes();
    assert!(n <= 12);
    (0..1u32 << n)
        .map(|mask| {
            let k: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
            p.cost_of(&k)
        })
        .min()
        .unwrap()
}

/// Random instance: `n` nodes, up to `max_edges` fan-out entries, up to
/// `max_pis` primary inputs with small fan-out sets.
fn random_problem(rng: &mut Rng, max_n: usize, max_edges: usize, max_pis: usize) -> PhaseProblem {
    let n = rng.range(1, max_n);
    let mut p = PhaseProblem::new(n);
    for _ in 0..rng.range(0, max_edges) {
        p.add_fanout(rng.range(0, n), rng.range(0, n));
    }
    for _ in 0..rng.range(0, max_pis + 1) {
        let fo: Vec<usize> = (0..rng.range(1, 5)).map(|_| rng.range(0, n)).collect();
        if !fo.is_empty() {
            p.add_pi(fo);
        }
    }
    p
}

#[test]
fn specialized_solver_is_exact() {
    let mut rng = Rng(101);
    for case in 0..32 {
        let p = random_problem(&mut rng, 10, 24, 3);
        let want = brute_force(&p);
        let sol = p.solve(&PhaseConfig::default());
        assert!(sol.optimal, "case {case}");
        assert_eq!(sol.cost, want, "case {case}");
        // The decoded assignment must evaluate to its claimed cost.
        assert_eq!(p.cost_of(&sol.k), sol.cost, "case {case}");
    }
}

#[test]
fn literal_ilp_agrees() {
    let mut rng = Rng(202);
    for case in 0..16 {
        let p = random_problem(&mut rng, 7, 12, 0);
        let want = brute_force(&p);
        let ilp = p.solve_via_ilp(&IlpConfig::default()).expect("solvable");
        assert_eq!(ilp.cost, want, "case {case}");
    }
}

#[test]
fn solution_satisfies_paper_constraints() {
    let mut rng = Rng(303);
    for case in 0..32 {
        let n = rng.range(1, 10);
        let mut p = PhaseProblem::new(n);
        let mut fo = vec![vec![]; n];
        for _ in 0..rng.range(0, 20) {
            let (u, v) = (rng.range(0, n), rng.range(0, n));
            p.add_fanout(u, v);
            if !fo[u].contains(&v) {
                fo[u].push(v);
            }
        }
        let sol = p.solve(&PhaseConfig::default());
        for (u, fo_u) in fo.iter().enumerate() {
            // G(u) + K(u) >= 1
            assert!(sol.g[u] || sol.k[u], "case {case} u={u}");
            // G(u) >= K(u) + K(v) - 1
            for &v in fo_u {
                if sol.k[u] && sol.k[v] {
                    assert!(sol.g[u], "case {case} u={u} v={v}");
                }
            }
        }
    }
}
