//! Linear/integer program model builder.

use std::fmt;

/// Identifier of a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Raw index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Comparison sense of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// A linear expression: `Σ coeff·var`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    /// `(variable, coefficient)` terms; duplicates are summed on use.
    pub terms: Vec<(VarId, f64)>,
}

impl LinExpr {
    /// Empty expression.
    pub fn new() -> LinExpr {
        LinExpr::default()
    }

    /// Add `coeff·var`, returning `self` for chaining.
    pub fn plus(mut self, var: VarId, coeff: f64) -> LinExpr {
        self.terms.push((var, coeff));
        self
    }

    /// Evaluate the expression for an assignment indexed by variable.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.terms.iter().map(|&(v, c)| c * values[v.index()]).sum()
    }
}

impl FromIterator<(VarId, f64)> for LinExpr {
    fn from_iter<T: IntoIterator<Item = (VarId, f64)>>(iter: T) -> Self {
        LinExpr {
            terms: iter.into_iter().collect(),
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    pub integer: bool,
}

/// One linear constraint.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Comparison sense.
    pub sense: Sense,
    /// Right-hand side constant.
    pub rhs: f64,
}

/// A minimization (M)ILP: variables with bounds and optional integrality,
/// linear constraints, and a linear objective.
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: LinExpr,
}

impl Model {
    /// Empty model (minimization).
    pub fn new() -> Model {
        Model::default()
    }

    /// Add a continuous variable with bounds `[lb, ub]`.
    pub fn add_var(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        assert!(lb <= ub, "lb > ub");
        let id = VarId(self.vars.len() as u32);
        self.vars.push(Variable {
            name: name.into(),
            lb,
            ub,
            integer: false,
        });
        id
    }

    /// Add a 0-1 variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        let id = self.add_var(name, 0.0, 1.0);
        self.vars[id.index()].integer = true;
        id
    }

    /// Add a constraint `expr sense rhs`.
    pub fn add_constraint(&mut self, expr: LinExpr, sense: Sense, rhs: f64) {
        self.constraints.push(Constraint { expr, sense, rhs });
    }

    /// Set the minimization objective.
    pub fn set_objective(&mut self, obj: LinExpr) {
        self.objective = obj;
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable (for diagnostics).
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// Check a candidate assignment against all constraints and bounds.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (i, var) in self.vars.iter().enumerate() {
            let x = values[i];
            if x < var.lb - tol || x > var.ub + tol {
                return false;
            }
            if var.integer && (x - x.round()).abs() > tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs = c.expr.eval(values);
            match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

/// Why a solve ended.
///
/// Budget-style outcomes ([`Status::NodeLimit`], [`Status::TimeLimit`])
/// are distinct from [`Status::Feasible`]: a limit status says exactly
/// which budget stopped the search, while `Feasible` is reserved for
/// searches that ended early for a non-budget reason (e.g. a fallback
/// rung that performs no optimality proof at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// Proven optimal: the search space was exhausted.
    Optimal,
    /// A feasible incumbent with no optimality proof and no budget hit
    /// (early termination for a non-budget reason, or a heuristic rung).
    Feasible,
    /// The node budget ran out. An incumbent may or may not exist — check
    /// `Solution::values` (or use [`crate::try_solve`], which turns the
    /// no-incumbent case into a typed error).
    NodeLimit,
    /// The wall-clock deadline expired. Incumbent presence as for
    /// [`Status::NodeLimit`].
    TimeLimit,
    /// No feasible point exists.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
    /// The search aborted on numeric instability (or an injected numeric
    /// fault) before producing a trustworthy answer.
    Aborted,
}

impl Status {
    /// `true` for the budget-exhaustion outcomes.
    pub fn is_limit(self) -> bool {
        matches!(self, Status::NodeLimit | Status::TimeLimit)
    }

    /// Stable lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Status::Optimal => "optimal",
            Status::Feasible => "feasible",
            Status::NodeLimit => "node-limit",
            Status::TimeLimit => "time-limit",
            Status::Infeasible => "infeasible",
            Status::Unbounded => "unbounded",
            Status::Aborted => "aborted",
        }
    }
}

/// Result of an (M)ILP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Termination status.
    pub status: Status,
    /// Variable values (empty when infeasible/unbounded).
    pub values: Vec<f64>,
    /// Objective value of `values`.
    pub objective: f64,
    /// Best proven lower bound on the optimum.
    pub bound: f64,
    /// Branch-and-bound nodes explored (0 for pure LPs).
    pub nodes: usize,
}

impl Solution {
    /// Value of `v` rounded to the nearest integer.
    pub fn int_value(&self, v: VarId) -> i64 {
        self.values[v.index()].round() as i64
    }

    /// Value of a 0-1 variable as a bool.
    pub fn bool_value(&self, v: VarId) -> bool {
        self.int_value(v) == 1
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} obj={:.6} bound={:.6} nodes={}",
            self.status, self.objective, self.bound, self.nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_eval() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 10.0);
        let y = m.add_binary("y");
        m.add_constraint(LinExpr::new().plus(x, 1.0).plus(y, 2.0), Sense::Le, 5.0);
        m.set_objective(LinExpr::new().plus(x, -1.0));
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.var_name(y), "y");
        assert!(m.is_feasible(&[3.0, 1.0], 1e-9));
        assert!(!m.is_feasible(&[4.0, 1.0], 1e-9), "constraint violated");
        assert!(!m.is_feasible(&[1.0, 0.5], 1e-9), "y must be integral");
        assert!(!m.is_feasible(&[-1.0, 0.0], 1e-9), "bound violated");
    }

    #[test]
    fn expr_eval() {
        let e = LinExpr::new().plus(VarId(0), 2.0).plus(VarId(1), -1.0);
        assert_eq!(e.eval(&[3.0, 4.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "lb > ub")]
    fn bad_bounds_panic() {
        Model::new().add_var("x", 1.0, 0.0);
    }
}
