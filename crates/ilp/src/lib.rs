//! Integer linear programming for the `triphase` toolkit.
//!
//! The paper formulates FF phase assignment as a 0-1 ILP and solves it with
//! Gurobi. This crate provides the from-scratch substitute:
//!
//! - [`Model`]/[`solve`]: a generic minimization (M)ILP — two-phase primal
//!   simplex ([`simplex`]) under branch-and-bound ([`solve`]);
//! - [`PhaseProblem`]: the paper's specific ILP, both as a literal model
//!   ([`PhaseProblem::to_ilp_model`]) and via an exact combinatorial
//!   solver ([`PhaseProblem::solve`]) that scales to the benchmark sizes.
//!
//! Robustness: solves take node *and* wall-clock budgets and report
//! budget hits as distinguishable statuses ([`Status::NodeLimit`],
//! [`Status::TimeLimit`]); [`try_solve`] and
//! [`PhaseProblem::solve_via_ilp`] surface failures as typed
//! [`SolveError`]s instead of panicking; and
//! [`PhaseProblem::solve_chain`] degrades ILP → exact combinatorial →
//! greedy feasible, recording the answering rung in a [`PhaseOutcome`].
//!
//! # Examples
//!
//! ```
//! use triphase_ilp::{Model, LinExpr, Sense, IlpConfig, solve, Status};
//!
//! // max x + y  s.t.  x + 2y <= 3, binaries.
//! let mut m = Model::new();
//! let x = m.add_binary("x");
//! let y = m.add_binary("y");
//! m.add_constraint(LinExpr::new().plus(x, 1.0).plus(y, 2.0), Sense::Le, 3.0);
//! m.set_objective(LinExpr::new().plus(x, -1.0).plus(y, -1.0));
//! let sol = solve(&m, &IlpConfig::default());
//! assert_eq!(sol.status, Status::Optimal);
//! assert_eq!(sol.objective, -2.0);
//! ```

mod branch;
mod error;
mod model;
mod phase;
pub mod simplex;

pub use branch::{solve, try_solve, IlpConfig};
pub use error::SolveError;
pub use model::{Constraint, LinExpr, Model, Sense, Solution, Status, VarId};
pub use phase::{PhaseConfig, PhaseOutcome, PhaseProblem, PhaseSolution, SolveRung};
