//! Integer linear programming for the `triphase` toolkit.
//!
//! The paper formulates FF phase assignment as a 0-1 ILP and solves it with
//! Gurobi. This crate provides the from-scratch substitute:
//!
//! - [`Model`]/[`solve`]: a generic minimization (M)ILP — two-phase primal
//!   simplex ([`simplex`]) under branch-and-bound ([`solve`]);
//! - [`PhaseProblem`]: the paper's specific ILP, both as a literal model
//!   ([`PhaseProblem::to_ilp_model`]) and via an exact combinatorial
//!   solver ([`PhaseProblem::solve`]) that scales to the benchmark sizes.
//!
//! # Examples
//!
//! ```
//! use triphase_ilp::{Model, LinExpr, Sense, IlpConfig, solve, Status};
//!
//! // max x + y  s.t.  x + 2y <= 3, binaries.
//! let mut m = Model::new();
//! let x = m.add_binary("x");
//! let y = m.add_binary("y");
//! m.add_constraint(LinExpr::new().plus(x, 1.0).plus(y, 2.0), Sense::Le, 3.0);
//! m.set_objective(LinExpr::new().plus(x, -1.0).plus(y, -1.0));
//! let sol = solve(&m, &IlpConfig::default());
//! assert_eq!(sol.status, Status::Optimal);
//! assert_eq!(sol.objective, -2.0);
//! ```

mod branch;
mod model;
mod phase;
pub mod simplex;

pub use branch::{solve, IlpConfig};
pub use model::{Constraint, LinExpr, Model, Sense, Solution, Status, VarId};
pub use phase::{PhaseConfig, PhaseProblem, PhaseSolution};
