//! Specialized exact solver for the paper's phase-assignment ILP.
//!
//! The ILP of §IV-A assigns every FF `u` a phase bit `K(u)` (1 = `p1`,
//! 0 = `p3`) and a group bit `G(u)` (1 = back-to-back, i.e. a `p2` latch is
//! inserted at its output), minimizing `Σ G` subject to
//!
//! ```text
//! G(u) + K(u) ≥ 1                      ∀u ∈ V
//! G(u) ≥ K(u) + K(v) − 1              ∀u ∈ V, v ∈ FO(u)
//! G(p) ≥ K(v)                          ∀p ∈ PI, v ∈ FO(p)
//! ```
//!
//! At any optimum, the set `T = {u : G(u) = 0}` of single-latch FFs is an
//! independent set of the *undirected* FF fan-out graph (self-loop FFs can
//! never be in `T`), and the cost is `|V| − |T|` plus one per primary input
//! whose fan-out intersects `T`. [`PhaseProblem::solve`] exploits this:
//! connected components are solved independently by branch-and-bound with a
//! greedy-matching upper bound, warm-started by a greedy + local-search
//! incumbent. [`PhaseProblem::to_ilp_model`] emits the literal ILP instead,
//! for cross-checking against the generic solver (our stand-in for Gurobi).
//!
//! The objective generalizes to weighted form `Σ w(u)·G(u)` via
//! [`PhaseProblem::set_node_weights`] / [`PhaseProblem::set_pi_weights`]
//! (the activity-weighted flow uses `1 + density/2`, biasing `p2`
//! insertion away from high-activity nets); the unweighted default is
//! bit-identical to the historical count objective.

use crate::error::SolveError;
use crate::model::{LinExpr, Model, Sense, Status, VarId};
use crate::{try_solve, IlpConfig};
use std::time::{Duration, Instant};
use triphase_fault::{fault_at, injected_panic, Fault, SharedInjector};

/// Instance of the phase-assignment problem.
#[derive(Debug, Clone, Default)]
pub struct PhaseProblem {
    n: usize,
    /// Undirected adjacency (deduplicated, no self entries).
    adj: Vec<Vec<usize>>,
    /// Directed fan-out (the literal `FO(u)` relation, self entries kept).
    fo: Vec<Vec<usize>>,
    self_loop: Vec<bool>,
    /// Per primary input: FF nodes in its combinational fan-out.
    pi_fanout: Vec<Vec<usize>>,
    /// Optional per-node objective weights (cost of `G(u) = 1`). Empty
    /// means uniform 1.0 — the paper's latch-count objective.
    node_weight: Vec<f64>,
    /// Optional per-PI objective weights, parallel to `pi_fanout`.
    pi_weight: Vec<f64>,
}

/// Weights below this are clamped so dominance reductions stay sound.
const MIN_WEIGHT: f64 = 1e-9;

/// Result of a phase-assignment solve.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSolution {
    /// Phase bit per FF: `true` = `p1`, `false` = `p3`.
    pub k: Vec<bool>,
    /// Group bit per FF: `true` = back-to-back (a `p2` latch is inserted).
    pub g: Vec<bool>,
    /// Group bit per primary input: `true` = a `p2` latch is inserted on
    /// the input's fan-out boundary.
    pub pi_g: Vec<bool>,
    /// Objective value `Σ G` (FFs plus PI insertions), always the plain
    /// *count* regardless of attached weights, so it stays comparable to
    /// [`PhaseProblem::cost_of`].
    pub cost: usize,
    /// Weighted objective `Σ w·G` under the problem's attached weights.
    /// Equal to `cost as f64` on unweighted problems.
    pub weighted_cost: f64,
    /// Whether optimality was proven within the node budget.
    pub optimal: bool,
}

/// Search budget and fallback-chain knobs.
#[derive(Debug, Clone)]
pub struct PhaseConfig {
    /// Maximum branch-and-bound nodes across all components. Hitting the
    /// budget degrades to the greedy incumbent (never fails): the result
    /// carries `optimal = false` and [`Status::NodeLimit`].
    pub max_nodes: usize,
    /// Optional wall-clock budget for the whole solve. Checked at every
    /// search node; expiry degrades to the incumbent under
    /// [`Status::TimeLimit`].
    pub time_limit: Option<Duration>,
    /// [`PhaseProblem::solve_chain`] first tries the literal-ILP rung
    /// (the "Gurobi path") when the instance has at most this many ILP
    /// variables (`2·|V| + |PI|`). `0` (the default) skips straight to
    /// the exact combinatorial solver, which is bit-identical on every
    /// instance the ILP rung can close.
    pub ilp_max_vars: usize,
    /// Fault-injection hook (sites `"phase.ilp"`, `"phase.exact"`,
    /// `"phase.greedy"`). `None` in production.
    pub hook: Option<SharedInjector>,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        PhaseConfig {
            max_nodes: 2_000_000,
            time_limit: None,
            ilp_max_vars: 0,
            hook: None,
        }
    }
}

/// Which rung of the fallback chain produced an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveRung {
    /// The literal §IV-A ILP through the generic branch-and-bound (the
    /// paper's Gurobi path).
    Ilp,
    /// The exact combinatorial solver ([`PhaseProblem::solve`]).
    Exact,
    /// Greedy feasible assignment — always succeeds, no optimality
    /// claim.
    Greedy,
}

impl SolveRung {
    /// Stable lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SolveRung::Ilp => "ilp",
            SolveRung::Exact => "exact",
            SolveRung::Greedy => "greedy",
        }
    }
}

impl std::fmt::Display for SolveRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of [`PhaseProblem::solve_chain`]: the solution plus provenance
/// (which rung answered, with what status, and which rungs failed first).
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// The (possibly degraded) assignment. Always ILP-feasible.
    pub solution: PhaseSolution,
    /// The rung that produced [`PhaseOutcome::solution`].
    pub rung: SolveRung,
    /// Termination status of that rung.
    pub status: Status,
    /// Rungs that failed before the answering one, with their errors.
    pub fallbacks: Vec<(SolveRung, SolveError)>,
}

impl PhaseProblem {
    /// Problem over `n` FF nodes.
    pub fn new(n: usize) -> PhaseProblem {
        PhaseProblem {
            n,
            adj: vec![Vec::new(); n],
            fo: vec![Vec::new(); n],
            self_loop: vec![false; n],
            pi_fanout: Vec::new(),
            node_weight: Vec::new(),
            pi_weight: Vec::new(),
        }
    }

    /// Number of FF nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Record `v ∈ FO(u)`; `u == v` marks a combinational self-loop.
    pub fn add_fanout(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "node out of range");
        if !self.fo[u].contains(&v) {
            self.fo[u].push(v);
        }
        if u == v {
            self.self_loop[u] = true;
            return;
        }
        if !self.adj[u].contains(&v) {
            self.adj[u].push(v);
            self.adj[v].push(u);
        }
    }

    /// Record a primary input whose combinational fan-out reaches `nodes`.
    pub fn add_pi(&mut self, nodes: Vec<usize>) {
        assert!(nodes.iter().all(|&v| v < self.n), "node out of range");
        self.pi_fanout.push(nodes);
    }

    /// `true` if node `u` has a combinational self-loop.
    pub fn has_self_loop(&self, u: usize) -> bool {
        self.self_loop[u]
    }

    /// Attach per-node objective weights: inserting a `p2` latch behind
    /// FF `u` costs `weights[u]` instead of 1. Weights must be positive
    /// and finite (non-finite or tiny values are clamped). The
    /// activity-weighted flow uses `1 + density(Q_u) / 2 ∈ [1, 2]`, so
    /// the weighted optimum's latch *count* is within 2x of the
    /// unweighted optimum. An empty vector restores the unweighted
    /// objective.
    pub fn set_node_weights(&mut self, weights: Vec<f64>) {
        assert!(
            weights.is_empty() || weights.len() == self.n,
            "weight vector length mismatch"
        );
        self.node_weight = weights;
    }

    /// Attach per-PI objective weights, parallel to the
    /// [`PhaseProblem::add_pi`] call order. Call after all PIs are added.
    pub fn set_pi_weights(&mut self, weights: Vec<f64>) {
        assert!(
            weights.is_empty() || weights.len() == self.pi_fanout.len(),
            "PI weight vector length mismatch"
        );
        self.pi_weight = weights;
    }

    /// Number of primary-input groups recorded via
    /// [`PhaseProblem::add_pi`].
    pub fn num_pis(&self) -> usize {
        self.pi_fanout.len()
    }

    /// `true` when a non-uniform objective is attached.
    pub fn is_weighted(&self) -> bool {
        !self.node_weight.is_empty() || !self.pi_weight.is_empty()
    }

    fn w(&self, u: usize) -> f64 {
        let w = self.node_weight.get(u).copied().unwrap_or(1.0);
        if w.is_finite() {
            w.max(MIN_WEIGHT)
        } else {
            1.0
        }
    }

    fn pw(&self, p: usize) -> f64 {
        let w = self.pi_weight.get(p).copied().unwrap_or(1.0);
        if w.is_finite() {
            w.max(MIN_WEIGHT)
        } else {
            1.0
        }
    }

    fn weighted_cost_bits(&self, g: &[bool], pi_g: &[bool]) -> f64 {
        let nodes: f64 = g
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(u, _)| self.w(u))
            .sum();
        let pis: f64 = pi_g
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(p, _)| self.pw(p))
            .sum();
        nodes + pis
    }

    /// Reference objective evaluator: cost of an arbitrary `K` assignment
    /// with the implied optimal `G`, following the ILP literally (`u` is
    /// single iff `K(u)=1` and no `v ∈ FO(u)` has `K(v)=1`). Used by tests
    /// and brute-force cross-checks.
    ///
    /// Although the search in [`PhaseProblem::solve`] works on the
    /// *undirected* fan-out graph, the optima coincide: any directed
    /// singles-set is undirected-independent (if `u→w` with both single,
    /// `u`'s condition forbids `K(w)=1`), and any undirected independent
    /// set is realized exactly by setting `K` on it alone.
    pub fn cost_of(&self, k: &[bool]) -> usize {
        assert_eq!(k.len(), self.n);
        let mut cost = 0usize;
        for u in 0..self.n {
            let single = k[u] && self.fo[u].iter().all(|&v| !k[v]);
            if !single {
                cost += 1;
            }
        }
        for fo in &self.pi_fanout {
            if fo.iter().any(|&v| k[v]) {
                cost += 1;
            }
        }
        cost
    }

    /// Weighted counterpart of [`PhaseProblem::cost_of`] under the
    /// attached weights. Identical to `cost_of(k) as f64` on unweighted
    /// problems.
    pub fn weighted_cost_of(&self, k: &[bool]) -> f64 {
        assert_eq!(k.len(), self.n);
        let mut cost = 0.0;
        for u in 0..self.n {
            let single = k[u] && self.fo[u].iter().all(|&v| !k[v]);
            if !single {
                cost += self.w(u);
            }
        }
        for (p, fo) in self.pi_fanout.iter().enumerate() {
            if fo.iter().any(|&v| k[v]) {
                cost += self.pw(p);
            }
        }
        cost
    }

    /// Solve using component decomposition + branch-and-bound.
    pub fn solve(&self, cfg: &PhaseConfig) -> PhaseSolution {
        self.solve_with_status(cfg).0
    }

    /// [`PhaseProblem::solve`], also reporting how the search ended:
    /// [`Status::Optimal`] when every component closed, otherwise the
    /// budget that stopped it ([`Status::NodeLimit`] /
    /// [`Status::TimeLimit`]) with the greedy-or-better incumbent.
    pub fn solve_with_status(&self, cfg: &PhaseConfig) -> (PhaseSolution, Status) {
        let mut max_nodes = cfg.max_nodes;
        let mut deadline = cfg.time_limit.map(|d| Instant::now() + d);
        match fault_at(&cfg.hook, "phase.exact") {
            Some(Fault::ExhaustNodes) => max_nodes = 0,
            Some(Fault::ExpireDeadline) => deadline = Some(Instant::now()),
            Some(Fault::Panic) => injected_panic("phase.exact"),
            _ => {}
        }
        let cand: Vec<bool> = (0..self.n).map(|u| !self.self_loop[u]).collect();

        // Union components over edges and PI groups.
        let mut dsu = Dsu::new(self.n);
        for u in 0..self.n {
            for &v in &self.adj[u] {
                dsu.union(u, v);
            }
        }
        for fo in &self.pi_fanout {
            for w in fo.windows(2) {
                dsu.union(w[0], w[1]);
            }
        }
        let mut comps: std::collections::HashMap<usize, Vec<usize>> = Default::default();
        for (u, &is_cand) in cand.iter().enumerate() {
            if is_cand {
                comps.entry(dsu.find(u)).or_default().push(u);
            }
        }
        let mut comp_list: Vec<Vec<usize>> = comps.into_values().collect();
        comp_list.sort_by_key(|c| std::cmp::Reverse(c.len()));

        let mut in_t = vec![false; self.n];
        let mut optimal = true;
        let mut timed_out = false;
        let mut budget = max_nodes;
        for comp in &comp_list {
            // Each search node costs O(|comp|) work; cap per-component
            // nodes so wall-clock stays bounded on huge components (the
            // greedy incumbent is still returned, flagged non-optimal).
            let per_comp = budget.min(50_000_000 / (comp.len() + 1));
            let (t, opt, used, timeout) = self.solve_component(comp, per_comp, deadline);
            budget = budget.saturating_sub(used);
            optimal &= opt;
            timed_out |= timeout;
            for u in t {
                in_t[u] = true;
            }
        }
        let status = if optimal {
            Status::Optimal
        } else if timed_out {
            Status::TimeLimit
        } else {
            Status::NodeLimit
        };
        (self.decode(&in_t, optimal), status)
    }

    /// Greedy feasible assignment: the last rung of the fallback chain.
    /// Min-degree greedy maximum-independent-set on the augmented graph,
    /// no search — always succeeds, never claims optimality.
    pub fn solve_greedy(&self) -> PhaseSolution {
        let cfg = PhaseConfig {
            max_nodes: 0,
            ..PhaseConfig::default()
        };
        let mut sol = self.solve_with_status(&cfg).0;
        sol.optimal = false;
        sol
    }

    fn decode(&self, in_t: &[bool], optimal: bool) -> PhaseSolution {
        let k: Vec<bool> = in_t.to_vec();
        let g: Vec<bool> = (0..self.n).map(|u| !in_t[u]).collect();
        let pi_g: Vec<bool> = self
            .pi_fanout
            .iter()
            .map(|fo| fo.iter().any(|&v| in_t[v]))
            .collect();
        let cost = g.iter().filter(|&&b| b).count() + pi_g.iter().filter(|&&b| b).count();
        let weighted_cost = self.weighted_cost_bits(&g, &pi_g);
        PhaseSolution {
            k,
            g,
            pi_g,
            cost,
            weighted_cost,
            optimal,
        }
    }

    /// Per-component exact search. Returns `(chosen, proven_optimal,
    /// nodes_used, deadline_expired)`.
    ///
    /// The PI penalties are folded into the graph: each primary input
    /// becomes a *pseudo-vertex* adjacent to its fan-out nodes, carrying
    /// its PI weight (maximizing the weight of `T` plus unhit PIs is a
    /// pure maximum-weight-independent-set problem on the augmented
    /// graph), so the matching bound accounts for penalties. Degree-0/1
    /// reductions solve tree-like regions (e.g. pipelines) without
    /// branching; the leaf-dominance reduction is gated on the leaf
    /// carrying at least its neighbour's weight, which is vacuous on
    /// unweighted problems.
    fn solve_component(
        &self,
        comp: &[usize],
        budget: usize,
        deadline: Option<Instant>,
    ) -> (Vec<usize>, bool, usize, bool) {
        // Local index mapping for real nodes.
        let mut local_of = std::collections::HashMap::new();
        for (i, &u) in comp.iter().enumerate() {
            local_of.insert(u, i);
        }
        let n_real = comp.len();
        // Augmented adjacency: real nodes first, then one pseudo-vertex
        // per PI group intersecting this component.
        let mut adj: Vec<Vec<usize>> = comp
            .iter()
            .map(|&u| {
                self.adj[u]
                    .iter()
                    .filter_map(|v| local_of.get(v).copied())
                    .collect()
            })
            .collect();
        let mut wt: Vec<f64> = comp.iter().map(|&u| self.w(u)).collect();
        for (p, fo) in self.pi_fanout.iter().enumerate() {
            let members: Vec<usize> = fo
                .iter()
                .filter_map(|v| local_of.get(v).copied())
                .filter(|&v| !self.self_loop[comp[v]])
                .collect();
            // A PI whose entire component fan-out is self-loop nodes can
            // never be hit (canonical solutions leave them K=0): no
            // pseudo-vertex needed.
            if members.is_empty() {
                continue;
            }
            let pv = adj.len();
            adj.push(members.clone());
            wt.push(self.pw(p));
            for v in members {
                adj[v].push(pv);
            }
        }
        let n = adj.len();

        // Greedy MWIS incumbent + add-pass: min-degree order when
        // unweighted (the historical behaviour, bit-for-bit), otherwise
        // highest weight-per-blocked-vertex first. On uniform weights the
        // two orders coincide, ties included (stable sorts both ways).
        let mut order: Vec<usize> = (0..n).collect();
        if self.is_weighted() {
            order.sort_by(|&a, &b| {
                let ra = wt[a] / (adj[a].len() + 1) as f64;
                let rb = wt[b] / (adj[b].len() + 1) as f64;
                rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
            });
        } else {
            order.sort_by_key(|&u| adj[u].len());
        }
        let mut chosen = vec![false; n];
        let mut blocked = vec![false; n];
        for &u in &order {
            if !blocked[u] {
                chosen[u] = true;
                blocked[u] = true;
                for &v in &adj[u] {
                    blocked[v] = true;
                }
            }
        }
        let mut best: Vec<bool> = chosen;
        let mut best_score: f64 = best
            .iter()
            .zip(&wt)
            .filter(|(&b, _)| b)
            .map(|(_, &w)| w)
            .sum();

        // Branch and bound on the augmented graph. Scores are weight
        // sums (f64); on unweighted problems every weight is exactly 1.0
        // so the arithmetic — and hence the search — is identical to an
        // integer count.
        struct Ctx<'a> {
            adj: &'a [Vec<usize>],
            wt: &'a [f64],
            best_score: f64,
            best: Vec<bool>,
            nodes: usize,
            budget: usize,
            complete: bool,
            deadline: Option<Instant>,
            timed_out: bool,
        }
        // Any independent set excludes at least one endpoint of every
        // matched edge, losing at least the lighter endpoint's weight.
        fn matching_loss(adj: &[Vec<usize>], wt: &[f64], alive: &[bool]) -> f64 {
            let mut matched = vec![false; adj.len()];
            let mut loss = 0.0;
            for u in 0..adj.len() {
                if !alive[u] || matched[u] {
                    continue;
                }
                for &v in &adj[u] {
                    if alive[v] && !matched[v] && v != u {
                        matched[u] = true;
                        matched[v] = true;
                        loss += wt[u].min(wt[v]);
                        break;
                    }
                }
            }
            loss
        }
        fn bb(ctx: &mut Ctx, mut alive: Vec<bool>, mut chosen: Vec<bool>, mut score: f64) {
            ctx.nodes += 1;
            if ctx.timed_out || ctx.nodes > ctx.budget {
                ctx.complete = false;
                return;
            }
            // Wall-clock check every 16 nodes (and on the first node, so
            // an already-expired deadline is seen immediately). Each node
            // does O(V+E) reduction/bound work, so the syscall cost is
            // negligible next to node work.
            if let Some(d) = ctx.deadline {
                if ctx.nodes % 16 == 1 && Instant::now() >= d {
                    ctx.timed_out = true;
                    ctx.complete = false;
                    return;
                }
            }
            // Reductions: take isolated vertices; take leaves whose
            // weight covers their only neighbour's (dominance: swapping
            // the neighbour for the leaf never loses weight).
            loop {
                let mut changed = false;
                for v in 0..alive.len() {
                    if !alive[v] {
                        continue;
                    }
                    let mut deg = 0;
                    let mut nb = usize::MAX;
                    for &w in &ctx.adj[v] {
                        if alive[w] {
                            deg += 1;
                            nb = w;
                        }
                    }
                    if deg == 0 {
                        alive[v] = false;
                        chosen[v] = true;
                        score += ctx.wt[v];
                        changed = true;
                    } else if deg == 1 && ctx.wt[v] >= ctx.wt[nb] {
                        alive[v] = false;
                        alive[nb] = false;
                        chosen[v] = true;
                        score += ctx.wt[v];
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            let mut remaining = 0usize;
            let mut rem_w = 0.0;
            for (u, &a) in alive.iter().enumerate() {
                if a {
                    remaining += 1;
                    rem_w += ctx.wt[u];
                }
            }
            if remaining == 0 {
                if score > ctx.best_score {
                    ctx.best_score = score;
                    ctx.best = chosen;
                }
                return;
            }
            // Matching bound: w(α) ≤ w(P) − Σ min-endpoint over M.
            let ub = score + rem_w - matching_loss(ctx.adj, ctx.wt, &alive);
            if ub <= ctx.best_score {
                return;
            }
            // Branch on the max-degree vertex. `remaining > 0` guarantees
            // a live vertex; if that invariant ever broke, give up on the
            // optimality claim for this subtree instead of panicking.
            let Some(v) = (0..alive.len())
                .filter(|&u| alive[u])
                .max_by_key(|&u| ctx.adj[u].iter().filter(|&&w| alive[w]).count())
            else {
                ctx.complete = false;
                return;
            };
            // Include v.
            {
                let mut a2 = alive.clone();
                let mut c2 = chosen.clone();
                a2[v] = false;
                for &w in &ctx.adj[v] {
                    a2[w] = false;
                }
                c2[v] = true;
                let sv = score + ctx.wt[v];
                bb(ctx, a2, c2, sv);
            }
            // Exclude v.
            alive[v] = false;
            bb(ctx, alive, chosen, score);
        }

        let mut ctx = Ctx {
            adj: &adj,
            wt: &wt,
            best_score,
            best: best.clone(),
            nodes: 0,
            budget,
            complete: true,
            deadline,
            timed_out: false,
        };
        bb(&mut ctx, vec![true; n], vec![false; n], 0.0);
        best = ctx.best;
        best_score = ctx.best_score;
        let _ = best_score;

        let chosen_global: Vec<usize> = best
            .iter()
            .take(n_real)
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| comp[i])
            .collect();
        (chosen_global, ctx.complete, ctx.nodes, ctx.timed_out)
    }

    /// Build the literal §IV-A ILP.
    ///
    /// Returns the model plus the `K` variables (per FF), `G` variables
    /// (per FF), and `G` variables for the primary inputs, in order.
    pub fn to_ilp_model(&self) -> (Model, Vec<VarId>, Vec<VarId>, Vec<VarId>) {
        let mut m = Model::new();
        let k: Vec<VarId> = (0..self.n).map(|u| m.add_binary(format!("K{u}"))).collect();
        let g: Vec<VarId> = (0..self.n).map(|u| m.add_binary(format!("G{u}"))).collect();
        let pi_g: Vec<VarId> = (0..self.pi_fanout.len())
            .map(|p| m.add_binary(format!("Gpi{p}")))
            .collect();
        for u in 0..self.n {
            // G(u) + K(u) >= 1
            m.add_constraint(
                LinExpr::new().plus(g[u], 1.0).plus(k[u], 1.0),
                Sense::Ge,
                1.0,
            );
            // G(u) >= K(u) + K(v) - 1 for v in FO(u) (directed, as in the
            // paper; a self-loop contributes G(u) >= 2K(u) - 1).
            for &v in &self.fo[u] {
                let expr = if v == u {
                    LinExpr::new().plus(g[u], 1.0).plus(k[u], -2.0)
                } else {
                    LinExpr::new()
                        .plus(g[u], 1.0)
                        .plus(k[u], -1.0)
                        .plus(k[v], -1.0)
                };
                m.add_constraint(expr, Sense::Ge, -1.0);
            }
        }
        for (p, fo) in self.pi_fanout.iter().enumerate() {
            for &v in fo {
                m.add_constraint(
                    LinExpr::new().plus(pi_g[p], 1.0).plus(k[v], -1.0),
                    Sense::Ge,
                    0.0,
                );
            }
        }
        let mut obj = LinExpr::new();
        for (u, &gv) in g.iter().enumerate() {
            obj = obj.plus(gv, self.w(u));
        }
        for (p, &gv) in pi_g.iter().enumerate() {
            obj = obj.plus(gv, self.pw(p));
        }
        m.set_objective(obj);
        (m, k, g, pi_g)
    }

    /// Canonical solution implied by a `K` assignment: `G` is derived at
    /// its tightest feasible setting (`u` single iff `K(u)` and no
    /// fan-out of `u` has `K`), PI bits likewise, so the cost equals
    /// [`PhaseProblem::cost_of`] exactly.
    fn solution_from_k(&self, k: &[bool], optimal: bool) -> PhaseSolution {
        let g: Vec<bool> = (0..self.n)
            .map(|u| !(k[u] && self.fo[u].iter().all(|&v| !k[v])))
            .collect();
        let pi_g: Vec<bool> = self
            .pi_fanout
            .iter()
            .map(|fo| fo.iter().any(|&v| k[v]))
            .collect();
        let cost = g.iter().filter(|&&b| b).count() + pi_g.iter().filter(|&&b| b).count();
        let weighted_cost = self.weighted_cost_bits(&g, &pi_g);
        PhaseSolution {
            k: k.to_vec(),
            g,
            pi_g,
            cost,
            weighted_cost,
            optimal,
        }
    }

    fn ilp_rung(&self, cfg: &IlpConfig) -> Result<(PhaseSolution, Status), SolveError> {
        let (model, k, _g, _pi_g) = self.to_ilp_model();
        let sol = try_solve(&model, cfg)?;
        let kvec: Vec<bool> = k.iter().map(|&v| sol.bool_value(v)).collect();
        Ok((
            self.solution_from_k(&kvec, sol.status == Status::Optimal),
            sol.status,
        ))
    }

    /// Solve via the generic branch-and-bound ILP (the "Gurobi path").
    /// Practical only for small instances; used for cross-validation and
    /// as the first rung of [`PhaseProblem::solve_chain`].
    ///
    /// Non-optimal incumbents are re-canonicalized from their `K` bits,
    /// so the returned solution's `cost` always equals
    /// [`PhaseProblem::cost_of`] of its `k`.
    pub fn solve_via_ilp(&self, cfg: &IlpConfig) -> Result<PhaseSolution, SolveError> {
        self.ilp_rung(cfg).map(|(sol, _)| sol)
    }

    /// Degrading solve: literal ILP (on instances small enough per
    /// `cfg.ilp_max_vars`) → exact combinatorial solver → greedy feasible
    /// assignment. Never fails and never panics (absent an injected
    /// panic fault): the weakest rung always produces a feasible
    /// assignment. Provenance is recorded in the returned
    /// [`PhaseOutcome`].
    pub fn solve_chain(&self, cfg: &PhaseConfig) -> PhaseOutcome {
        let started = Instant::now();
        let remaining = |limit: Option<Duration>| {
            limit.map(|d| d.checked_sub(started.elapsed()).unwrap_or(Duration::ZERO))
        };
        let mut fallbacks = Vec::new();

        // Rung 1: the paper's Gurobi path, gated on instance size.
        let nvars = 2 * self.n + self.pi_fanout.len();
        if cfg.ilp_max_vars > 0 && nvars <= cfg.ilp_max_vars {
            match fault_at(&cfg.hook, "phase.ilp") {
                Some(Fault::Panic) => injected_panic("phase.ilp"),
                Some(Fault::Numeric) => fallbacks.push((
                    SolveRung::Ilp,
                    SolveError::Numeric("injected numeric fault at phase.ilp".into()),
                )),
                _ => {
                    let icfg = IlpConfig {
                        max_nodes: cfg.max_nodes.min(200_000),
                        time_limit: remaining(cfg.time_limit),
                        hook: cfg.hook.clone(),
                        ..IlpConfig::default()
                    };
                    match self.ilp_rung(&icfg) {
                        Ok((solution, status)) => {
                            return PhaseOutcome {
                                solution,
                                rung: SolveRung::Ilp,
                                status,
                                fallbacks,
                            }
                        }
                        Err(e) => fallbacks.push((SolveRung::Ilp, e)),
                    }
                }
            }
        }

        // Rung 2: exact combinatorial solver. Budget exhaustion degrades
        // internally (greedy incumbent, limit status), so only a numeric
        // fault can push past this rung.
        if let Some(Fault::Numeric) = fault_at(&cfg.hook, "phase.exact.numeric") {
            fallbacks.push((
                SolveRung::Exact,
                SolveError::Numeric("injected numeric fault at phase.exact".into()),
            ));
        } else {
            let ecfg = PhaseConfig {
                time_limit: remaining(cfg.time_limit),
                ..cfg.clone()
            };
            let (solution, status) = self.solve_with_status(&ecfg);
            return PhaseOutcome {
                solution,
                rung: SolveRung::Exact,
                status,
                fallbacks,
            };
        }

        // Rung 3: greedy feasible assignment — cannot fail.
        if let Some(Fault::Panic) = fault_at(&cfg.hook, "phase.greedy") {
            injected_panic("phase.greedy");
        }
        PhaseOutcome {
            solution: self.solve_greedy(),
            rung: SolveRung::Greedy,
            status: Status::Feasible,
            fallbacks,
        }
    }
}

struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let r = self.find(self.parent[x]);
            self.parent[x] = r;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive reference: minimum cost over all 2^n K assignments.
    fn brute_force(p: &PhaseProblem) -> usize {
        let n = p.num_nodes();
        assert!(n <= 16);
        (0..1u32 << n)
            .map(|mask| {
                let k: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
                p.cost_of(&k)
            })
            .fold(usize::MAX, Ord::min)
    }

    #[test]
    fn linear_pipeline_matches_paper_fig1() {
        // A 6-stage linear pipeline: FF_i -> FF_{i+1}. The minimum number
        // of back-to-back groups is floor(stages/2): alternating
        // single-p1 / back-to-back.
        for stages in 2..=9usize {
            let mut p = PhaseProblem::new(stages);
            for i in 0..stages - 1 {
                p.add_fanout(i, i + 1);
            }
            // PI feeds the first stage.
            p.add_pi(vec![0]);
            let sol = p.solve(&PhaseConfig::default());
            assert!(sol.optimal);
            assert_eq!(sol.cost, brute_force(&p), "stages={stages}");
            // Paper Fig. 1: one extra latch stage per two original stages.
            // Cost counts back-to-back groups incl. possible PI insertion.
            let t = sol.k.iter().filter(|&&b| b).count();
            assert!(t >= stages / 2, "selected singles {t} of {stages}");
        }
    }

    #[test]
    fn self_loops_forced_back_to_back() {
        let mut p = PhaseProblem::new(3);
        p.add_fanout(0, 0); // self loop
        p.add_fanout(0, 1);
        p.add_fanout(1, 2);
        let sol = p.solve(&PhaseConfig::default());
        assert!(sol.g[0], "self-loop FF must be back-to-back");
        assert!(sol.optimal);
        assert_eq!(sol.cost, brute_force(&p));
    }

    #[test]
    fn pi_penalty_respected() {
        // One FF fed by 3 PIs: making it single costs 3 PI insertions;
        // back-to-back costs 1. Optimum: back-to-back.
        let mut p = PhaseProblem::new(1);
        p.add_pi(vec![0]);
        p.add_pi(vec![0]);
        p.add_pi(vec![0]);
        let sol = p.solve(&PhaseConfig::default());
        assert_eq!(sol.cost, 1);
        assert!(sol.g[0]);
        assert_eq!(sol.cost, brute_force(&p));
    }

    #[test]
    fn pi_penalty_worth_paying() {
        // One PI feeding one FF with no other constraints: single latch
        // costs 1 PI insertion, back-to-back costs 1 group. Equal cost 1.
        let mut p = PhaseProblem::new(1);
        p.add_pi(vec![0]);
        let sol = p.solve(&PhaseConfig::default());
        assert_eq!(sol.cost, 1);
        assert_eq!(sol.cost, brute_force(&p));
    }

    #[test]
    fn matches_generic_ilp_on_small_graphs() {
        // Deterministic pseudo-random digraphs, cross-check all three
        // solvers (brute force, specialized, generic ILP).
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..12 {
            let n = 3 + (rnd() % 8) as usize;
            let mut p = PhaseProblem::new(n);
            for u in 0..n {
                for v in 0..n {
                    if rnd() % 100 < 22 {
                        p.add_fanout(u, v);
                    }
                }
            }
            let npis = (rnd() % 3) as usize;
            for _ in 0..npis {
                let fo: Vec<usize> = (0..n).filter(|_| rnd() % 100 < 30).collect();
                if !fo.is_empty() {
                    p.add_pi(fo);
                }
            }
            let want = brute_force(&p);
            let fast = p.solve(&PhaseConfig::default());
            assert!(fast.optimal, "trial {trial}");
            assert_eq!(fast.cost, want, "trial {trial} specialized");
            assert_eq!(fast.cost, p.cost_of(&fast.k), "decode consistent");
            let ilp = p.solve_via_ilp(&IlpConfig::default()).unwrap();
            assert_eq!(ilp.cost, want, "trial {trial} generic ILP");
        }
    }

    #[test]
    fn solution_is_ilp_feasible() {
        let mut p = PhaseProblem::new(5);
        p.add_fanout(0, 1);
        p.add_fanout(1, 2);
        p.add_fanout(2, 3);
        p.add_fanout(3, 4);
        p.add_fanout(4, 0);
        p.add_pi(vec![0, 2]);
        let sol = p.solve(&PhaseConfig::default());
        let (model, k, g, pig) = p.to_ilp_model();
        let mut values = vec![0.0; model.num_vars()];
        for (i, &b) in sol.k.iter().enumerate() {
            values[k[i].index()] = b as u8 as f64;
        }
        for (i, &b) in sol.g.iter().enumerate() {
            values[g[i].index()] = b as u8 as f64;
        }
        for (i, &b) in sol.pi_g.iter().enumerate() {
            values[pig[i].index()] = b as u8 as f64;
        }
        assert!(model.is_feasible(&values, 1e-9));
    }

    /// Exhaustive weighted reference: minimum weighted cost over all
    /// `2^n` K assignments.
    fn brute_force_weighted(p: &PhaseProblem) -> f64 {
        let n = p.num_nodes();
        assert!(n <= 16);
        (0..1u32 << n)
            .map(|mask| {
                let k: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
                p.weighted_cost_of(&k)
            })
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn weighted_objective_prefers_heavy_registers_single() {
        // Path 0-1-2: unweighted optimum inserts one latch (behind 1).
        // With node 1 carrying weight 5 the optimum flips: keep 1 single
        // and pay for latches behind 0 and 2 (2.0 < 5.0).
        let mut p = PhaseProblem::new(3);
        p.add_fanout(0, 1);
        p.add_fanout(1, 2);
        let unweighted = p.solve(&PhaseConfig::default());
        assert_eq!(unweighted.cost, 1);
        assert_eq!(unweighted.weighted_cost, 1.0);
        p.set_node_weights(vec![1.0, 5.0, 1.0]);
        let sol = p.solve(&PhaseConfig::default());
        assert!(sol.optimal);
        assert!(sol.k[1] && !sol.g[1], "heavy register must stay single");
        assert_eq!(sol.cost, 2, "count objective pays for the weighted win");
        assert_eq!(sol.weighted_cost, 2.0);
        assert_eq!(sol.weighted_cost, p.weighted_cost_of(&sol.k));
        assert_eq!(sol.weighted_cost, brute_force_weighted(&p));
    }

    #[test]
    fn weighted_pi_penalty_tips_the_balance() {
        // One FF fed by one PI: single costs the PI weight, back-to-back
        // costs the node weight.
        let mut p = PhaseProblem::new(1);
        p.add_pi(vec![0]);
        p.set_node_weights(vec![1.0]);
        p.set_pi_weights(vec![3.0]);
        let heavy_pi = p.solve(&PhaseConfig::default());
        assert!(heavy_pi.g[0] && !heavy_pi.pi_g[0]);
        assert_eq!(heavy_pi.weighted_cost, 1.0);
        assert_eq!(heavy_pi.weighted_cost, brute_force_weighted(&p));
        p.set_node_weights(vec![3.0]);
        p.set_pi_weights(vec![1.0]);
        let heavy_node = p.solve(&PhaseConfig::default());
        assert!(!heavy_node.g[0] && heavy_node.pi_g[0]);
        assert_eq!(heavy_node.weighted_cost, 1.0);
        assert_eq!(heavy_node.weighted_cost, brute_force_weighted(&p));
    }

    #[test]
    fn weighted_matches_brute_force_and_generic_ilp() {
        let mut seed = 0x0C0FFEE123456789u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..8 {
            let n = 3 + (rnd() % 7) as usize;
            let mut p = PhaseProblem::new(n);
            for u in 0..n {
                for v in 0..n {
                    if rnd() % 100 < 22 {
                        p.add_fanout(u, v);
                    }
                }
            }
            for _ in 0..(rnd() % 3) as usize {
                let fo: Vec<usize> = (0..n).filter(|_| rnd() % 100 < 30).collect();
                if !fo.is_empty() {
                    p.add_pi(fo);
                }
            }
            // Activity-style weights in [1, 2].
            let wn: Vec<f64> = (0..n).map(|_| 1.0 + (rnd() % 101) as f64 / 100.0).collect();
            let wp: Vec<f64> = (0..p.num_pis())
                .map(|_| 1.0 + (rnd() % 101) as f64 / 100.0)
                .collect();
            p.set_node_weights(wn);
            p.set_pi_weights(wp);
            assert!(p.is_weighted());
            let want = brute_force_weighted(&p);
            let fast = p.solve(&PhaseConfig::default());
            assert!(fast.optimal, "trial {trial}");
            assert!(
                (fast.weighted_cost - want).abs() < 1e-9,
                "trial {trial}: exact {} vs brute {want}",
                fast.weighted_cost
            );
            assert!((fast.weighted_cost - p.weighted_cost_of(&fast.k)).abs() < 1e-12);
            let ilp = p.solve_via_ilp(&IlpConfig::default()).unwrap();
            assert!(
                (ilp.weighted_cost - want).abs() < 1e-6,
                "trial {trial}: ilp {} vs brute {want}",
                ilp.weighted_cost
            );
        }
    }

    #[test]
    fn unweighted_solution_weighted_cost_equals_count() {
        let p = dense_instance(30, 4, 0xFEED);
        let sol = p.solve(&PhaseConfig::default());
        assert_eq!(sol.weighted_cost, sol.cost as f64);
        assert_eq!(sol.weighted_cost, p.weighted_cost_of(&sol.k));
    }

    /// Dense pseudo-random instance that a tiny budget cannot close.
    fn dense_instance(n: usize, avg_deg: usize, seed: u64) -> PhaseProblem {
        let mut p = PhaseProblem::new(n);
        let mut s = seed;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..n * avg_deg / 2 {
            let u = (rnd() % n as u64) as usize;
            let v = (rnd() % n as u64) as usize;
            if u != v {
                p.add_fanout(u, v);
            }
        }
        p
    }

    #[test]
    fn node_budget_degrades_with_status() {
        let p = dense_instance(120, 10, 0xDEADBEEF);
        let (sol, status) = p.solve_with_status(&PhaseConfig {
            max_nodes: 0,
            ..PhaseConfig::default()
        });
        assert_eq!(status, Status::NodeLimit);
        assert!(!sol.optimal);
        // Degraded but valid: internally consistent with the reference
        // evaluator.
        assert_eq!(sol.cost, p.cost_of(&sol.k));
    }

    #[test]
    fn time_budget_degrades_with_status() {
        let p = dense_instance(200, 12, 0xABCD);
        let (sol, status) = p.solve_with_status(&PhaseConfig {
            time_limit: Some(std::time::Duration::ZERO),
            ..PhaseConfig::default()
        });
        assert_eq!(status, Status::TimeLimit);
        assert!(!sol.optimal);
        assert_eq!(sol.cost, p.cost_of(&sol.k));
    }

    #[test]
    fn greedy_rung_is_feasible_and_close() {
        let p = dense_instance(60, 6, 0x5EED);
        let greedy = p.solve_greedy();
        assert!(!greedy.optimal);
        assert_eq!(greedy.cost, p.cost_of(&greedy.k));
        let exact = p.solve(&PhaseConfig::default());
        assert!(greedy.cost >= exact.cost);
    }

    #[test]
    fn chain_default_uses_exact_rung() {
        let mut p = PhaseProblem::new(4);
        p.add_fanout(0, 1);
        p.add_fanout(1, 2);
        p.add_fanout(2, 3);
        let out = p.solve_chain(&PhaseConfig::default());
        assert_eq!(out.rung, SolveRung::Exact);
        assert_eq!(out.status, Status::Optimal);
        assert!(out.fallbacks.is_empty());
        assert!(out.solution.optimal);
        assert_eq!(out.solution.cost, brute_force(&p));
    }

    #[test]
    fn chain_ilp_rung_on_small_instances() {
        let mut p = PhaseProblem::new(3);
        p.add_fanout(0, 1);
        p.add_fanout(1, 2);
        p.add_pi(vec![0]);
        let cfg = PhaseConfig {
            ilp_max_vars: 64,
            ..PhaseConfig::default()
        };
        let out = p.solve_chain(&cfg);
        assert_eq!(out.rung, SolveRung::Ilp);
        assert_eq!(out.status, Status::Optimal);
        assert!(out.fallbacks.is_empty());
        assert_eq!(out.solution.cost, brute_force(&p));
        assert_eq!(out.solution.cost, p.cost_of(&out.solution.k));
    }

    #[test]
    fn chain_falls_back_to_greedy_on_numeric_faults() {
        use triphase_fault::{Fault, FaultPlan};
        let p = dense_instance(40, 5, 7);
        let cfg = PhaseConfig {
            ilp_max_vars: 1_000_000,
            hook: Some(FaultPlan::new(3).inject("phase.", Fault::Numeric).shared()),
            ..PhaseConfig::default()
        };
        let out = p.solve_chain(&cfg);
        assert_eq!(out.rung, SolveRung::Greedy);
        assert_eq!(out.fallbacks.len(), 2);
        assert!(matches!(
            out.fallbacks[0],
            (SolveRung::Ilp, SolveError::Numeric(_))
        ));
        assert!(matches!(
            out.fallbacks[1],
            (SolveRung::Exact, SolveError::Numeric(_))
        ));
        assert_eq!(out.solution.cost, p.cost_of(&out.solution.k));
    }

    #[test]
    fn chain_injected_budget_faults_degrade_in_place() {
        use triphase_fault::{Fault, FaultPlan};
        let p = dense_instance(120, 10, 42);
        let with = |fault: Fault| PhaseConfig {
            hook: Some(FaultPlan::new(5).inject("phase.exact", fault).shared()),
            ..PhaseConfig::default()
        };
        let out = p.solve_chain(&with(Fault::ExhaustNodes));
        assert_eq!(out.rung, SolveRung::Exact);
        assert_eq!(out.status, Status::NodeLimit);
        assert_eq!(out.solution.cost, p.cost_of(&out.solution.k));
        let out = p.solve_chain(&with(Fault::ExpireDeadline));
        assert_eq!(out.rung, SolveRung::Exact);
        assert_eq!(out.status, Status::TimeLimit);
    }

    #[test]
    fn ilp_rung_incumbent_is_canonicalized() {
        // Force a non-optimal ILP incumbent via a zero node budget (the
        // rounding heuristic supplies it) and check the decoded solution
        // is internally consistent.
        let p = dense_instance(8, 3, 99);
        let cfg = IlpConfig {
            max_nodes: 0,
            ..IlpConfig::default()
        };
        match p.solve_via_ilp(&cfg) {
            Ok(sol) => {
                assert!(!sol.optimal);
                assert_eq!(sol.cost, p.cost_of(&sol.k));
            }
            Err(e) => assert!(
                matches!(e, SolveError::NoIncumbent(_)),
                "unexpected error {e}"
            ),
        }
    }

    #[test]
    fn large_sparse_instance_closes() {
        // A 400-node ring of 4-node clusters: must finish optimal quickly.
        let n = 400;
        let mut p = PhaseProblem::new(n);
        for u in 0..n {
            p.add_fanout(u, (u + 1) % n);
            if u % 4 == 0 {
                p.add_fanout(u, (u + 2) % n);
            }
        }
        let sol = p.solve(&PhaseConfig::default());
        assert!(sol.optimal);
        // A ring of n nodes has independence number floor(n/2).
        assert!(sol.cost <= n - n / 2 + 5);
    }
}
