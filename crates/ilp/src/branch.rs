//! Branch-and-bound on top of the LP relaxation.

use crate::error::SolveError;
use crate::model::{Model, Solution, Status};
use crate::simplex::{solve_lp, LpResult};
use std::time::{Duration, Instant};
use triphase_fault::{fault_at, injected_panic, Fault, SharedInjector};

/// Knobs of the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct IlpConfig {
    /// Maximum number of branch-and-bound nodes to explore before the
    /// search stops. This caps *search effort*, not solution quality:
    /// hitting the limit returns the best incumbent found so far under
    /// [`Status::NodeLimit`] (empty `values` if none was found), never a
    /// spurious [`Status::Optimal`]. The default (200 000) comfortably
    /// closes every phase-assignment instance in the benchmark suite; it
    /// exists to bound worst-case latency on adversarial models.
    pub max_nodes: usize,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Optional wall-clock budget. The deadline is checked once per
    /// branch-and-bound node (each node solves an LP, so the check is
    /// cheap relative to node work); expiry returns the incumbent under
    /// [`Status::TimeLimit`].
    pub time_limit: Option<Duration>,
    /// Fault-injection hook (site `"ilp.solve"`). `None` in production.
    pub hook: Option<SharedInjector>,
}

impl Default for IlpConfig {
    fn default() -> Self {
        IlpConfig {
            max_nodes: 200_000,
            int_tol: 1e-6,
            time_limit: None,
            hook: None,
        }
    }
}

/// Solve `model` to integer optimality within the node and wall-clock
/// budgets of `cfg`.
///
/// Returns [`Status::Optimal`] when the search space was exhausted,
/// [`Status::NodeLimit`]/[`Status::TimeLimit`] when a budget stopped the
/// search (with the incumbent, if any, in `values`),
/// [`Status::Infeasible`]/[`Status::Unbounded`] as reported by the root
/// relaxation, and [`Status::Aborted`] when the search hit a numeric
/// dead end (or an injected numeric fault) without an incumbent.
pub fn solve(model: &Model, cfg: &IlpConfig) -> Solution {
    let n = model.num_vars();
    let mut max_nodes = cfg.max_nodes;
    let mut deadline = cfg.time_limit.map(|d| Instant::now() + d);
    match fault_at(&cfg.hook, "ilp.solve") {
        Some(Fault::ExhaustNodes) => max_nodes = 0,
        Some(Fault::ExpireDeadline) => deadline = Some(Instant::now()),
        Some(Fault::Numeric) => {
            return Solution {
                status: Status::Aborted,
                values: Vec::new(),
                objective: f64::INFINITY,
                bound: f64::NEG_INFINITY,
                nodes: 0,
            }
        }
        Some(Fault::Panic) => injected_panic("ilp.solve"),
        Some(Fault::EmptyActivity) | None => {}
    }
    let root = solve_lp(model, &vec![None; n]);
    let (root_x, root_obj) = match root {
        LpResult::Infeasible => {
            return Solution {
                status: Status::Infeasible,
                values: Vec::new(),
                objective: f64::INFINITY,
                bound: f64::INFINITY,
                nodes: 1,
            }
        }
        LpResult::Unbounded => {
            return Solution {
                status: Status::Unbounded,
                values: Vec::new(),
                objective: f64::NEG_INFINITY,
                bound: f64::NEG_INFINITY,
                nodes: 1,
            }
        }
        LpResult::Optimal(x, obj) => (x, obj),
    };

    let mut best: Option<(Vec<f64>, f64)> = None;
    // Rounding heuristic for a quick incumbent.
    let rounded: Vec<f64> = root_x.iter().map(|v| v.round()).collect();
    if model.is_feasible(&rounded, cfg.int_tol) {
        let obj = model.objective.eval(&rounded);
        best = Some((rounded, obj));
    }

    let mut nodes = 0usize;
    let mut exhausted = true;
    // Which budget (if any) stopped the search.
    let mut stop: Option<Status> = None;
    // DFS stack of bound-override vectors.
    let mut stack: Vec<Vec<Option<(f64, f64)>>> = vec![vec![None; n]];
    while let Some(overrides) = stack.pop() {
        if nodes >= max_nodes {
            stop = Some(Status::NodeLimit);
            break;
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                stop = Some(Status::TimeLimit);
                break;
            }
        }
        nodes += 1;
        let (x, obj) = match solve_lp(model, &overrides) {
            LpResult::Infeasible => continue,
            LpResult::Unbounded => {
                // Bounded-variable MILPs can't be unbounded below a
                // feasible node unless continuous vars are unbounded —
                // treat as a dead end for integer search purposes.
                exhausted = false;
                continue;
            }
            LpResult::Optimal(x, obj) => (x, obj),
        };
        if let Some((_, incumbent)) = &best {
            if obj >= incumbent - 1e-9 {
                continue; // pruned by bound
            }
        }
        // Pick the most fractional integer variable.
        let mut branch_var = None;
        let mut best_frac = cfg.int_tol;
        for (i, var) in model.vars.iter().enumerate() {
            if !var.integer {
                continue;
            }
            let f = (x[i] - x[i].round()).abs();
            if f > best_frac {
                best_frac = f;
                branch_var = Some(i);
            }
        }
        match branch_var {
            None => {
                // Integral: new incumbent (bound check above ensures improvement).
                let xi: Vec<f64> = x
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| if model.vars[i].integer { v.round() } else { v })
                    .collect();
                if model.is_feasible(&xi, 1e-6) {
                    best = Some((xi, obj));
                }
            }
            Some(i) => {
                let floor = x[i].floor();
                let (lo0, hi0) = overrides[i].unwrap_or((model.vars[i].lb, model.vars[i].ub));
                let mut down = overrides.clone();
                down[i] = Some((lo0, floor.min(hi0)));
                let mut up = overrides.clone();
                up[i] = Some(((floor + 1.0).max(lo0), hi0));
                // Explore the side nearer the LP value first (pushed last).
                if x[i] - floor > 0.5 {
                    stack.push(down);
                    stack.push(up);
                } else {
                    stack.push(up);
                    stack.push(down);
                }
            }
        }
    }

    match best {
        Some((values, objective)) => {
            let status = match stop {
                Some(s) => s,
                // Exhausted cleanly: proven optimal. An unbounded dead
                // end (exhausted = false with no budget hit) leaves the
                // proof incomplete but the incumbent valid.
                None if exhausted => Status::Optimal,
                None => Status::Feasible,
            };
            Solution {
                bound: if status == Status::Optimal {
                    objective
                } else {
                    root_obj
                },
                status,
                values,
                objective,
                nodes,
            }
        }
        None => {
            let status = match stop {
                Some(s) => s,
                // No integer point and the search was exhausted: the
                // model is integer-infeasible. Otherwise the only way to
                // get here is the unbounded-dead-end path — a numeric
                // anomaly for the bounded models we build.
                None if exhausted => Status::Infeasible,
                None => Status::Aborted,
            };
            Solution {
                status,
                values: Vec::new(),
                objective: f64::INFINITY,
                bound: root_obj,
                nodes,
            }
        }
    }
}

/// Like [`solve`], but with a typed error channel: `Ok` is guaranteed to
/// carry a non-empty incumbent assignment (possibly non-optimal — check
/// `Solution::status`). No-incumbent budget exhaustion, infeasibility,
/// unboundedness, and numeric aborts become [`SolveError`]s.
pub fn try_solve(model: &Model, cfg: &IlpConfig) -> Result<Solution, SolveError> {
    let sol = solve(model, cfg);
    match sol.status {
        Status::Infeasible => Err(SolveError::Infeasible),
        Status::Unbounded => Err(SolveError::Unbounded),
        Status::Aborted => Err(SolveError::Numeric(
            "branch-and-bound aborted before finding an incumbent".into(),
        )),
        s if sol.values.is_empty() => Err(SolveError::NoIncumbent(s)),
        _ => Ok(sol),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};

    #[test]
    fn knapsack_exact() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6  => min of negative
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint(
            LinExpr::new().plus(a, 3.0).plus(b, 4.0).plus(c, 2.0),
            Sense::Le,
            6.0,
        );
        m.set_objective(LinExpr::new().plus(a, -10.0).plus(b, -13.0).plus(c, -7.0));
        let sol = solve(&m, &IlpConfig::default());
        assert_eq!(sol.status, Status::Optimal);
        // Best is b + c = 20 (weight 6).
        assert!((sol.objective + 20.0).abs() < 1e-6, "{sol}");
        assert!(sol.bool_value(b) && sol.bool_value(c) && !sol.bool_value(a));
    }

    #[test]
    fn integer_infeasible() {
        // 2x = 1 with x binary has LP solution x=0.5 but no integer one.
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_constraint(LinExpr::new().plus(x, 2.0), Sense::Eq, 1.0);
        m.set_objective(LinExpr::new().plus(x, 1.0));
        let sol = solve(&m, &IlpConfig::default());
        assert_eq!(sol.status, Status::Infeasible);
    }

    #[test]
    fn mixed_integer() {
        // min y s.t. y >= 1.3 x, x binary forced to 1 by x >= 0.5.
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_var("y", 0.0, 10.0);
        m.add_constraint(LinExpr::new().plus(x, 1.0), Sense::Ge, 0.5);
        m.add_constraint(LinExpr::new().plus(y, 1.0).plus(x, -1.3), Sense::Ge, 0.0);
        m.set_objective(LinExpr::new().plus(y, 1.0));
        let sol = solve(&m, &IlpConfig::default());
        assert_eq!(sol.status, Status::Optimal);
        assert_eq!(sol.int_value(x), 1);
        assert!((sol.values[y.index()] - 1.3).abs() < 1e-6);
    }

    #[test]
    fn node_limit_reports_node_limit() {
        // A small set-cover-ish instance with a tiny node budget.
        let mut m = Model::new();
        let vars: Vec<_> = (0..6).map(|i| m.add_binary(format!("x{i}"))).collect();
        for i in 0..5 {
            m.add_constraint(
                LinExpr::new().plus(vars[i], 1.0).plus(vars[i + 1], 1.0),
                Sense::Ge,
                1.0,
            );
        }
        m.set_objective(vars.iter().map(|&v| (v, 1.0)).collect());
        let sol = solve(
            &m,
            &IlpConfig {
                max_nodes: 1,
                ..IlpConfig::default()
            },
        );
        // With one node we either close the search (Optimal) or report
        // the limit — never a spurious optimality claim.
        assert!(
            sol.status == Status::NodeLimit || (sol.status == Status::Optimal && sol.nodes <= 1),
            "{sol}"
        );
        let full = solve(&m, &IlpConfig::default());
        assert_eq!(full.status, Status::Optimal);
        assert!((full.objective - 3.0).abs() < 1e-6, "{full}");
    }

    /// Fractional-LP instance needing real branching: min Σx with pairwise
    /// covers over a 7-cycle (LP optimum 3.5, integer optimum 4).
    fn odd_cycle_cover(n: usize) -> Model {
        let mut m = Model::new();
        let vars: Vec<_> = (0..n).map(|i| m.add_binary(format!("x{i}"))).collect();
        for i in 0..n {
            m.add_constraint(
                LinExpr::new()
                    .plus(vars[i], 1.0)
                    .plus(vars[(i + 1) % n], 1.0),
                Sense::Ge,
                1.0,
            );
        }
        m.set_objective(vars.iter().map(|&v| (v, 1.0)).collect());
        m
    }

    #[test]
    fn infeasible_root_is_typed() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_constraint(LinExpr::new().plus(x, 1.0), Sense::Ge, 2.0);
        m.set_objective(LinExpr::new().plus(x, 1.0));
        let sol = solve(&m, &IlpConfig::default());
        assert_eq!(sol.status, Status::Infeasible);
        assert!(sol.values.is_empty());
        assert_eq!(
            try_solve(&m, &IlpConfig::default()),
            Err(SolveError::Infeasible)
        );
    }

    #[test]
    fn unbounded_root_is_typed() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::new().plus(x, -1.0));
        let sol = solve(&m, &IlpConfig::default());
        assert_eq!(sol.status, Status::Unbounded);
        assert_eq!(
            try_solve(&m, &IlpConfig::default()),
            Err(SolveError::Unbounded)
        );
    }

    #[test]
    fn node_limit_without_incumbent_is_distinguishable() {
        // Zero nodes: the search can't even visit the root, so there is
        // no incumbent unless the rounding heuristic found one. The 7-
        // cycle root LP is all-0.5, whose rounding (all-1? no: 0.5
        // rounds to 1 per f64::round — feasible!) — shift the LP away
        // from the 0.5 plateau with asymmetric weights so rounding fails.
        let mut m = Model::new();
        let vars: Vec<_> = (0..3).map(|i| m.add_binary(format!("x{i}"))).collect();
        // x0 + x1 + x2 = 2 with fractional LP pull: min x0 + 9(x1+x2)
        // relaxation picks x0 = 1, x1 = x2 = 0.5 -> rounds to (1,1,1),
        // violating the equality.
        m.add_constraint(
            LinExpr::new()
                .plus(vars[0], 1.0)
                .plus(vars[1], 1.0)
                .plus(vars[2], 1.0),
            Sense::Eq,
            2.0,
        );
        m.add_constraint(
            LinExpr::new().plus(vars[1], 1.0).plus(vars[2], -1.0),
            Sense::Eq,
            0.0,
        );
        m.set_objective(
            LinExpr::new()
                .plus(vars[0], 1.0)
                .plus(vars[1], 9.0)
                .plus(vars[2], 9.0),
        );
        let cfg = IlpConfig {
            max_nodes: 0,
            ..IlpConfig::default()
        };
        let sol = solve(&m, &cfg);
        if sol.values.is_empty() {
            assert_eq!(sol.status, Status::NodeLimit);
            assert_eq!(
                try_solve(&m, &cfg),
                Err(SolveError::NoIncumbent(Status::NodeLimit))
            );
        } else {
            // Rounding heuristic rescued an incumbent; still a limit.
            assert_eq!(sol.status, Status::NodeLimit);
        }
        // The full solve closes it.
        let full = try_solve(&m, &IlpConfig::default()).expect("solvable");
        assert_eq!(full.status, Status::Optimal);
    }

    #[test]
    fn node_limit_with_incumbent_keeps_incumbent() {
        let m = odd_cycle_cover(9);
        // Enough nodes to find an integer point, too few to prove
        // optimality of a 9-cycle cover.
        let cfg = IlpConfig {
            max_nodes: 3,
            ..IlpConfig::default()
        };
        let sol = solve(&m, &cfg);
        if !sol.values.is_empty() {
            assert!(m.is_feasible(&sol.values, 1e-6));
            assert!(sol.status == Status::NodeLimit || sol.status == Status::Optimal);
            // The reported bound must not exceed the incumbent.
            assert!(sol.bound <= sol.objective + 1e-9);
        } else {
            assert_eq!(sol.status, Status::NodeLimit);
        }
    }

    #[test]
    fn rounding_heuristic_accepts_feasible_rounding() {
        // LP relaxation of the 7-cycle cover is all-0.5; rounding to
        // all-ones is feasible, so even a 0-node budget has an incumbent.
        let m = odd_cycle_cover(7);
        let sol = solve(
            &m,
            &IlpConfig {
                max_nodes: 0,
                ..IlpConfig::default()
            },
        );
        assert_eq!(sol.status, Status::NodeLimit);
        assert_eq!(sol.values.len(), m.num_vars());
        assert!(m.is_feasible(&sol.values, 1e-6));
        assert!(
            (sol.objective - 7.0).abs() < 1e-6,
            "all-ones rounding: {sol}"
        );
        // And the true optimum (4) is strictly better: the heuristic
        // incumbent is degraded-but-valid, not silently optimal.
        let full = solve(&m, &IlpConfig::default());
        assert_eq!(full.status, Status::Optimal);
        assert!((full.objective - 4.0).abs() < 1e-6, "{full}");
    }

    #[test]
    fn time_limit_reports_time_limit() {
        let m = odd_cycle_cover(15);
        let cfg = IlpConfig {
            time_limit: Some(std::time::Duration::ZERO),
            ..IlpConfig::default()
        };
        let sol = solve(&m, &cfg);
        assert_eq!(sol.status, Status::TimeLimit, "{sol}");
    }

    #[test]
    fn injected_faults_map_to_statuses() {
        use triphase_fault::{Fault, FaultPlan};
        let m = odd_cycle_cover(7);
        let with = |fault: Fault| IlpConfig {
            hook: Some(FaultPlan::new(1).inject("ilp.solve", fault).shared()),
            ..IlpConfig::default()
        };
        assert_eq!(
            solve(&m, &with(Fault::ExhaustNodes)).status,
            Status::NodeLimit
        );
        assert_eq!(
            solve(&m, &with(Fault::ExpireDeadline)).status,
            Status::TimeLimit
        );
        let aborted = solve(&m, &with(Fault::Numeric));
        assert_eq!(aborted.status, Status::Aborted);
        assert!(matches!(
            try_solve(&m, &with(Fault::Numeric)),
            Err(SolveError::Numeric(_))
        ));
        let panicked = std::panic::catch_unwind(|| solve(&m, &with(Fault::Panic)));
        assert!(panicked.is_err(), "panic fault must raise");
    }
}
