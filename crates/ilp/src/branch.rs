//! Branch-and-bound on top of the LP relaxation.

use crate::model::{Model, Solution, Status};
use crate::simplex::{solve_lp, LpResult};

/// Knobs of the branch-and-bound search.
#[derive(Debug, Clone, Copy)]
pub struct IlpConfig {
    /// Maximum number of explored nodes before giving up on proving
    /// optimality.
    pub max_nodes: usize,
    /// Integrality tolerance.
    pub int_tol: f64,
}

impl Default for IlpConfig {
    fn default() -> Self {
        IlpConfig {
            max_nodes: 200_000,
            int_tol: 1e-6,
        }
    }
}

/// Solve `model` to integer optimality (within `cfg.max_nodes`).
///
/// Returns [`Status::Optimal`] when the search space was exhausted,
/// [`Status::Feasible`] when an incumbent exists but the node limit was
/// hit, and [`Status::Infeasible`]/[`Status::Unbounded`] as reported by the
/// root relaxation.
pub fn solve(model: &Model, cfg: &IlpConfig) -> Solution {
    let n = model.num_vars();
    let root = solve_lp(model, &vec![None; n]);
    let (root_x, root_obj) = match root {
        LpResult::Infeasible => {
            return Solution {
                status: Status::Infeasible,
                values: Vec::new(),
                objective: f64::INFINITY,
                bound: f64::INFINITY,
                nodes: 1,
            }
        }
        LpResult::Unbounded => {
            return Solution {
                status: Status::Unbounded,
                values: Vec::new(),
                objective: f64::NEG_INFINITY,
                bound: f64::NEG_INFINITY,
                nodes: 1,
            }
        }
        LpResult::Optimal(x, obj) => (x, obj),
    };

    let mut best: Option<(Vec<f64>, f64)> = None;
    // Rounding heuristic for a quick incumbent.
    let rounded: Vec<f64> = root_x.iter().map(|v| v.round()).collect();
    if model.is_feasible(&rounded, cfg.int_tol) {
        let obj = model.objective.eval(&rounded);
        best = Some((rounded, obj));
    }

    let mut nodes = 0usize;
    let mut exhausted = true;
    // DFS stack of bound-override vectors.
    let mut stack: Vec<Vec<Option<(f64, f64)>>> = vec![vec![None; n]];
    while let Some(overrides) = stack.pop() {
        if nodes >= cfg.max_nodes {
            exhausted = false;
            break;
        }
        nodes += 1;
        let (x, obj) = match solve_lp(model, &overrides) {
            LpResult::Infeasible => continue,
            LpResult::Unbounded => {
                // Bounded-variable MILPs can't be unbounded below a
                // feasible node unless continuous vars are unbounded —
                // treat as a dead end for integer search purposes.
                exhausted = false;
                continue;
            }
            LpResult::Optimal(x, obj) => (x, obj),
        };
        if let Some((_, incumbent)) = &best {
            if obj >= incumbent - 1e-9 {
                continue; // pruned by bound
            }
        }
        // Pick the most fractional integer variable.
        let mut branch_var = None;
        let mut best_frac = cfg.int_tol;
        for (i, var) in model.vars.iter().enumerate() {
            if !var.integer {
                continue;
            }
            let f = (x[i] - x[i].round()).abs();
            if f > best_frac {
                best_frac = f;
                branch_var = Some(i);
            }
        }
        match branch_var {
            None => {
                // Integral: new incumbent (bound check above ensures improvement).
                let xi: Vec<f64> = x
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| if model.vars[i].integer { v.round() } else { v })
                    .collect();
                if model.is_feasible(&xi, 1e-6) {
                    best = Some((xi, obj));
                }
            }
            Some(i) => {
                let floor = x[i].floor();
                let (lo0, hi0) = overrides[i].unwrap_or((model.vars[i].lb, model.vars[i].ub));
                let mut down = overrides.clone();
                down[i] = Some((lo0, floor.min(hi0)));
                let mut up = overrides.clone();
                up[i] = Some(((floor + 1.0).max(lo0), hi0));
                // Explore the side nearer the LP value first (pushed last).
                if x[i] - floor > 0.5 {
                    stack.push(down);
                    stack.push(up);
                } else {
                    stack.push(up);
                    stack.push(down);
                }
            }
        }
    }

    match best {
        Some((values, objective)) => Solution {
            status: if exhausted {
                Status::Optimal
            } else {
                Status::Feasible
            },
            values,
            objective,
            bound: if exhausted { objective } else { root_obj },
            nodes,
        },
        None => Solution {
            // No integer point found. If the search was exhausted the
            // model is integer-infeasible.
            status: if exhausted {
                Status::Infeasible
            } else {
                Status::Feasible
            },
            values: Vec::new(),
            objective: f64::INFINITY,
            bound: root_obj,
            nodes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};

    #[test]
    fn knapsack_exact() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6  => min of negative
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint(
            LinExpr::new().plus(a, 3.0).plus(b, 4.0).plus(c, 2.0),
            Sense::Le,
            6.0,
        );
        m.set_objective(LinExpr::new().plus(a, -10.0).plus(b, -13.0).plus(c, -7.0));
        let sol = solve(&m, &IlpConfig::default());
        assert_eq!(sol.status, Status::Optimal);
        // Best is b + c = 20 (weight 6).
        assert!((sol.objective + 20.0).abs() < 1e-6, "{sol}");
        assert!(sol.bool_value(b) && sol.bool_value(c) && !sol.bool_value(a));
    }

    #[test]
    fn integer_infeasible() {
        // 2x = 1 with x binary has LP solution x=0.5 but no integer one.
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_constraint(LinExpr::new().plus(x, 2.0), Sense::Eq, 1.0);
        m.set_objective(LinExpr::new().plus(x, 1.0));
        let sol = solve(&m, &IlpConfig::default());
        assert_eq!(sol.status, Status::Infeasible);
    }

    #[test]
    fn mixed_integer() {
        // min y s.t. y >= 1.3 x, x binary forced to 1 by x >= 0.5.
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_var("y", 0.0, 10.0);
        m.add_constraint(LinExpr::new().plus(x, 1.0), Sense::Ge, 0.5);
        m.add_constraint(LinExpr::new().plus(y, 1.0).plus(x, -1.3), Sense::Ge, 0.0);
        m.set_objective(LinExpr::new().plus(y, 1.0));
        let sol = solve(&m, &IlpConfig::default());
        assert_eq!(sol.status, Status::Optimal);
        assert_eq!(sol.int_value(x), 1);
        assert!((sol.values[y.index()] - 1.3).abs() < 1e-6);
    }

    #[test]
    fn node_limit_reports_feasible() {
        // A small set-cover-ish instance with a tiny node budget.
        let mut m = Model::new();
        let vars: Vec<_> = (0..6).map(|i| m.add_binary(format!("x{i}"))).collect();
        for i in 0..5 {
            m.add_constraint(
                LinExpr::new().plus(vars[i], 1.0).plus(vars[i + 1], 1.0),
                Sense::Ge,
                1.0,
            );
        }
        m.set_objective(vars.iter().map(|&v| (v, 1.0)).collect());
        let sol = solve(
            &m,
            &IlpConfig {
                max_nodes: 1,
                int_tol: 1e-6,
            },
        );
        // With one node we may or may not have an incumbent, but never a
        // spurious optimality claim unless the root was integral.
        if sol.status == Status::Optimal {
            assert!(sol.nodes <= 1);
        }
        let full = solve(&m, &IlpConfig::default());
        assert_eq!(full.status, Status::Optimal);
        assert!((full.objective - 3.0).abs() < 1e-6, "{full}");
    }
}
