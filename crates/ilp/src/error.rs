//! Typed error taxonomy for the ILP solvers.

use crate::model::Status;
use std::fmt;

/// Why a solve produced no usable assignment.
///
/// [`crate::try_solve`] and [`crate::PhaseProblem::solve_via_ilp`] return
/// this instead of panicking or handing back an empty `values` vector;
/// the phase-assignment fallback chain
/// ([`crate::PhaseProblem::solve_chain`]) records one entry per failed
/// rung.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The model has no feasible point (proven at the root or by an
    /// exhausted integer search).
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The search budget ran out before any incumbent was found. Carries
    /// the limit that fired ([`Status::NodeLimit`] or
    /// [`Status::TimeLimit`]).
    NoIncumbent(Status),
    /// Numeric instability (e.g. simplex cycling signals) or an injected
    /// numeric fault aborted the search.
    Numeric(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "model is infeasible"),
            SolveError::Unbounded => write!(f, "objective is unbounded below"),
            SolveError::NoIncumbent(s) => {
                write!(f, "search budget exhausted ({s:?}) with no incumbent")
            }
            SolveError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let msgs = [
            SolveError::Infeasible.to_string(),
            SolveError::Unbounded.to_string(),
            SolveError::NoIncumbent(Status::NodeLimit).to_string(),
            SolveError::Numeric("pivot".into()).to_string(),
        ];
        assert!(msgs[0].contains("infeasible"));
        assert!(msgs[1].contains("unbounded"));
        assert!(msgs[2].contains("NodeLimit"));
        assert!(msgs[3].contains("pivot"));
    }
}
