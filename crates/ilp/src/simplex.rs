//! Two-phase dense primal simplex with Bland's anti-cycling rule.
//!
//! Solves `min c'x  s.t.  Ax {≤,≥,=} b,  lb ≤ x ≤ ub` with `lb ≥ 0`.
//! Upper bounds and positive lower bounds are lowered to explicit rows;
//! this keeps the implementation simple and is fine for the model sizes
//! the generic path is used on (the scalable path is `phase::solve`).

use crate::model::{Model, Sense};

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// Optimal basic solution: `(values, objective)`.
    Optimal(Vec<f64>, f64),
    /// No feasible point.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
}

const TOL: f64 = 1e-9;

/// Solve the LP relaxation of `model`, with per-variable bound overrides
/// (used by branch-and-bound to fix binaries). `overrides[i]` replaces the
/// model bounds of variable `i` when `Some((lb, ub))`.
///
/// # Panics
///
/// Panics if any effective lower bound is negative (the toolkit only
/// builds nonnegative models).
pub fn solve_lp(model: &Model, overrides: &[Option<(f64, f64)>]) -> LpResult {
    let n = model.num_vars();
    // Effective bounds.
    let mut lb = vec![0.0f64; n];
    let mut ub = vec![f64::INFINITY; n];
    for i in 0..n {
        let v = &model.vars[i];
        let (l, u) = overrides.get(i).copied().flatten().unwrap_or((v.lb, v.ub));
        assert!(l >= -TOL, "negative lower bound unsupported");
        lb[i] = l.max(0.0);
        ub[i] = u;
        if l > u + TOL {
            return LpResult::Infeasible;
        }
    }

    // Gather rows: model constraints plus bound rows.
    struct Row {
        coeffs: Vec<(usize, f64)>,
        sense: Sense,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(model.num_constraints() + n);
    for c in &model.constraints {
        let coeffs = c.expr.terms.iter().map(|&(v, k)| (v.index(), k)).collect();
        rows.push(Row {
            coeffs,
            sense: c.sense,
            rhs: c.rhs,
        });
    }
    for i in 0..n {
        if ub[i].is_finite() {
            rows.push(Row {
                coeffs: vec![(i, 1.0)],
                sense: Sense::Le,
                rhs: ub[i],
            });
        }
        if lb[i] > TOL {
            rows.push(Row {
                coeffs: vec![(i, 1.0)],
                sense: Sense::Ge,
                rhs: lb[i],
            });
        }
    }

    let m = rows.len();
    // Normalize rhs >= 0 by flipping rows; slack/artificial counts are
    // derived afterwards (Le rows get a slack, Ge/Eq rows also get an
    // artificial).
    let mut senses = Vec::with_capacity(m);
    let mut rhs = Vec::with_capacity(m);
    let mut coeffs: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
    for r in rows {
        if r.rhs < 0.0 {
            let flipped = r.coeffs.iter().map(|&(i, k)| (i, -k)).collect();
            coeffs.push(flipped);
            rhs.push(-r.rhs);
            senses.push(match r.sense {
                Sense::Le => Sense::Ge,
                Sense::Ge => Sense::Le,
                Sense::Eq => Sense::Eq,
            });
        } else {
            coeffs.push(r.coeffs);
            rhs.push(r.rhs);
            senses.push(r.sense);
        }
    }
    let n_slack = senses.iter().filter(|&&s| s != Sense::Eq).count();
    let n_art = senses.iter().filter(|&&s| s != Sense::Le).count();
    let total = n + n_slack + n_art;

    // Dense tableau: m rows × (total + 1) columns (last = rhs).
    let width = total + 1;
    let mut t = vec![0.0f64; m * width];
    let mut basis = vec![usize::MAX; m];
    let mut slack_idx = 0usize;
    let mut art_idx = 0usize;
    let mut artificial_cols = Vec::new();
    for (r, row_coeffs) in coeffs.iter().enumerate() {
        for &(i, k) in row_coeffs {
            t[r * width + i] += k;
        }
        t[r * width + total] = rhs[r];
        match senses[r] {
            Sense::Le => {
                let col = n + slack_idx;
                slack_idx += 1;
                t[r * width + col] = 1.0;
                basis[r] = col;
            }
            Sense::Ge => {
                let scol = n + slack_idx;
                slack_idx += 1;
                t[r * width + scol] = -1.0;
                let acol = n + n_slack + art_idx;
                art_idx += 1;
                t[r * width + acol] = 1.0;
                basis[r] = acol;
                artificial_cols.push(acol);
            }
            Sense::Eq => {
                let acol = n + n_slack + art_idx;
                art_idx += 1;
                t[r * width + acol] = 1.0;
                basis[r] = acol;
                artificial_cols.push(acol);
            }
        }
    }

    // Phase 1: minimize sum of artificials.
    if !artificial_cols.is_empty() {
        let mut cost = vec![0.0f64; total];
        for &a in &artificial_cols {
            cost[a] = 1.0;
        }
        match run_simplex(&mut t, &mut basis, m, width, &cost) {
            SimplexEnd::Optimal(obj) => {
                if obj > 1e-6 {
                    return LpResult::Infeasible;
                }
            }
            SimplexEnd::Unbounded => unreachable!("phase-1 objective bounded below by 0"),
        }
        // Drive remaining artificials out of the basis.
        for r in 0..m {
            if basis[r] >= n + n_slack {
                let mut pivoted = false;
                for j in 0..n + n_slack {
                    if t[r * width + j].abs() > 1e-7 {
                        pivot(&mut t, &mut basis, m, width, r, j);
                        pivoted = true;
                        break;
                    }
                }
                if !pivoted {
                    // Redundant row; zero it out (keeps the basis valid
                    // because its rhs is ~0 after phase 1).
                    for j in 0..width {
                        t[r * width + j] = 0.0;
                    }
                }
            }
        }
    }

    // Phase 2: original objective (artificial columns pinned at 0 by
    // giving them prohibitive cost).
    let mut cost = vec![0.0f64; total];
    for &(v, k) in &model.objective.terms {
        cost[v.index()] += k;
    }
    let big = 1e12;
    for &a in &artificial_cols {
        cost[a] = big;
    }
    match run_simplex(&mut t, &mut basis, m, width, &cost) {
        SimplexEnd::Unbounded => LpResult::Unbounded,
        SimplexEnd::Optimal(_) => {
            let mut x = vec![0.0f64; n];
            for r in 0..m {
                if basis[r] < n {
                    x[basis[r]] = t[r * width + total];
                }
            }
            let obj = model.objective.eval(&x);
            LpResult::Optimal(x, obj)
        }
    }
}

enum SimplexEnd {
    Optimal(f64),
    Unbounded,
}

/// Run primal simplex on the current basic feasible tableau.
fn run_simplex(
    t: &mut [f64],
    basis: &mut [usize],
    m: usize,
    width: usize,
    cost: &[f64],
) -> SimplexEnd {
    let total = width - 1;
    loop {
        // Reduced costs: c_j - c_B' * B^{-1} A_j (computed row-wise).
        let mut entering = None;
        for j in 0..total {
            let mut red = cost[j];
            for r in 0..m {
                let b = basis[r];
                if b != usize::MAX && cost[b] != 0.0 {
                    red -= cost[b] * t[r * width + j];
                }
            }
            if red < -1e-7 {
                entering = Some(j); // Bland: first (smallest) index
                break;
            }
        }
        let Some(j) = entering else {
            let mut obj = 0.0;
            for r in 0..m {
                let b = basis[r];
                if b != usize::MAX {
                    obj += cost[b] * t[r * width + total];
                }
            }
            return SimplexEnd::Optimal(obj);
        };
        // Ratio test (Bland tie-break on basis index).
        let mut leave: Option<(usize, f64)> = None;
        for r in 0..m {
            let a = t[r * width + j];
            if a > 1e-9 {
                let ratio = t[r * width + total] / a;
                match leave {
                    None => leave = Some((r, ratio)),
                    Some((lr, lratio)) => {
                        if ratio < lratio - 1e-12
                            || ((ratio - lratio).abs() <= 1e-12 && basis[r] < basis[lr])
                        {
                            leave = Some((r, ratio));
                        }
                    }
                }
            }
        }
        let Some((r, _)) = leave else {
            return SimplexEnd::Unbounded;
        };
        pivot(t, basis, m, width, r, j);
    }
}

fn pivot(t: &mut [f64], basis: &mut [usize], m: usize, width: usize, r: usize, j: usize) {
    let p = t[r * width + j];
    debug_assert!(p.abs() > 1e-12);
    for x in &mut t[r * width..(r + 1) * width] {
        *x /= p;
    }
    for rr in 0..m {
        if rr == r {
            continue;
        }
        let f = t[rr * width + j];
        if f.abs() > 1e-12 {
            for c in 0..width {
                t[rr * width + c] -= f * t[r * width + c];
            }
        }
    }
    basis[r] = j;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model};

    fn lp(model: &Model) -> LpResult {
        solve_lp(model, &vec![None; model.num_vars()])
    }

    #[test]
    fn simple_max_as_min() {
        // min -(x+y) s.t. x + 2y <= 4, 3x + y <= 6, x,y in [0, inf)
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::new().plus(x, 1.0).plus(y, 2.0), Sense::Le, 4.0);
        m.add_constraint(LinExpr::new().plus(x, 3.0).plus(y, 1.0), Sense::Le, 6.0);
        m.set_objective(LinExpr::new().plus(x, -1.0).plus(y, -1.0));
        match lp(&m) {
            LpResult::Optimal(v, obj) => {
                assert!((v[0] - 1.6).abs() < 1e-6, "x = {}", v[0]);
                assert!((v[1] - 1.2).abs() < 1e-6, "y = {}", v[1]);
                assert!((obj + 2.8).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_and_ge() {
        // min x + y s.t. x + y = 3, x >= 1, y >= 0.5
        let mut m = Model::new();
        let x = m.add_var("x", 1.0, f64::INFINITY);
        let y = m.add_var("y", 0.5, f64::INFINITY);
        m.add_constraint(LinExpr::new().plus(x, 1.0).plus(y, 1.0), Sense::Eq, 3.0);
        m.set_objective(LinExpr::new().plus(x, 1.0).plus(y, 1.0));
        match lp(&m) {
            LpResult::Optimal(v, obj) => {
                assert!((obj - 3.0).abs() < 1e-6);
                assert!(v[0] >= 1.0 - 1e-6 && v[1] >= 0.5 - 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0);
        m.add_constraint(LinExpr::new().plus(x, 1.0), Sense::Ge, 2.0);
        m.set_objective(LinExpr::new().plus(x, 1.0));
        assert_eq!(lp(&m), LpResult::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::new().plus(x, -1.0));
        assert_eq!(lp(&m), LpResult::Unbounded);
    }

    #[test]
    fn bound_overrides_respected() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 10.0);
        m.set_objective(LinExpr::new().plus(x, -1.0)); // maximize x
        match solve_lp(&m, &[Some((0.0, 3.5))]) {
            LpResult::Optimal(v, _) => assert!((v[0] - 3.5).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
        // Contradictory override -> infeasible.
        assert_eq!(solve_lp(&m, &[Some((2.0, 1.0))]), LpResult::Infeasible);
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // Classic degenerate LP; Bland's rule must terminate.
        let mut m = Model::new();
        let x1 = m.add_var("x1", 0.0, f64::INFINITY);
        let x2 = m.add_var("x2", 0.0, f64::INFINITY);
        let x3 = m.add_var("x3", 0.0, f64::INFINITY);
        m.add_constraint(
            LinExpr::new().plus(x1, 0.5).plus(x2, -5.5).plus(x3, -2.5),
            Sense::Le,
            0.0,
        );
        m.add_constraint(
            LinExpr::new().plus(x1, 0.5).plus(x2, -1.5).plus(x3, -0.5),
            Sense::Le,
            0.0,
        );
        m.add_constraint(LinExpr::new().plus(x1, 1.0), Sense::Le, 1.0);
        m.set_objective(LinExpr::new().plus(x1, -10.0).plus(x2, 57.0).plus(x3, 9.0));
        match lp(&m) {
            LpResult::Optimal(_, obj) => assert!(obj <= -1.0 + 1e-6),
            other => panic!("{other:?}"),
        }
    }
}
