//! # triphase — FF-to-3-phase latch conversion toolkit
//!
//! A from-scratch Rust reproduction of *"Saving Power by Converting
//! Flip-Flop to 3-Phase Latch-Based Designs"* (DATE 2020): an automatic
//! flow that converts single-clock-domain flip-flop designs into 3-phase
//! latch-based designs using an ILP that minimizes latch count, followed
//! by modified retiming and clock gating — plus every substrate the paper
//! relies on (netlist IR, cell library, ILP solver, multi-phase STA,
//! gate-level simulation, retiming, place-and-route, power estimation,
//! and benchmark generators).
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`cells`] | `triphase-cells` | cell kinds + synthetic 28nm library |
//! | [`netlist`] | `triphase-netlist` | gate-level IR, builder, Verilog/.bench IO |
//! | [`ilp`] | `triphase-ilp` | simplex + branch&bound, phase-assignment solver |
//! | [`timing`] | `triphase-timing` | FF STA + SMO multi-phase latch timing |
//! | [`sim`] | `triphase-sim` | multi-phase simulation, activity, equivalence |
//! | [`retime`] | `triphase-retime` | constrained min-period retiming |
//! | [`pnr`] | `triphase-pnr` | placement, CTS, wire estimation |
//! | [`power`] | `triphase-power` | grouped Clock/Seq/Comb power model |
//! | [`circuits`] | `triphase-circuits` | ISCAS/CEP/CPU benchmark generators |
//! | [`lint`] | `triphase-lint` | structural & phase-legality static analyzer |
//! | [`activity`] | `triphase-activity` | static switching-activity analysis (probability/density) |
//! | [`dfa`] | `triphase-dfa` | semantic dataflow analyses: const prop, reset X-prop, races |
//! | [`core`] | `triphase-core` | **the paper's flow**: ILP → convert → retime → CG |
//! | [`serve`] | `triphase-serve` | conversion-as-a-service daemon with memoized incremental flow |
//!
//! # Quickstart
//!
//! ```
//! use triphase::prelude::*;
//!
//! // A small FF pipeline at 1.11 GHz.
//! let design = linear_pipeline(4, 8, 2, 900.0);
//! let lib = Library::synthetic_28nm();
//! let cfg = FlowConfig {
//!     sim_cycles: 32,
//!     equiv_cycles: 64,
//!     ..FlowConfig::default()
//! };
//! let report = run_flow(&design, &lib, &cfg)?;
//! assert_eq!(report.equiv_3p, Some(true)); // cycle-exact equivalence
//! assert!(report.three_phase.registers() < report.ms.registers());
//! println!(
//!     "regs: FF {} | M-S {} | 3-phase {} ({:+.1}% vs 2xFF)",
//!     report.ff.stats.ffs,
//!     report.ms.registers(),
//!     report.three_phase.registers(),
//!     report.reg_saving_vs_2ff(),
//! );
//! # Ok::<(), triphase::core::Error>(())
//! ```

pub use triphase_activity as activity;
pub use triphase_cells as cells;
pub use triphase_circuits as circuits;
pub use triphase_core as core;
pub use triphase_dfa as dfa;
pub use triphase_ilp as ilp;
pub use triphase_lint as lint;
pub use triphase_netlist as netlist;
pub use triphase_pnr as pnr;
pub use triphase_power as power;
pub use triphase_retime as retime;
pub use triphase_serve as serve;
pub use triphase_sim as sim;
pub use triphase_timing as timing;

/// Commonly used items in one import.
pub mod prelude {
    pub use triphase_activity::{analyze, ActivityModel, AnalysisOptions};
    pub use triphase_cells::{CellKind, Library};
    pub use triphase_circuits::cpu::{
        build_cpu, m0_like, plasma_like, rocket_lite, CpuConfig, Workload,
    };
    pub use triphase_circuits::crypto::aes::aes128_pipelined;
    pub use triphase_circuits::crypto::des3::{des3_core, Des3Spec};
    pub use triphase_circuits::crypto::md5::md5_core;
    pub use triphase_circuits::crypto::sha256::sha256_core;
    pub use triphase_circuits::iscas::{generate_iscas, iscas_profiles, s27, IscasProfile};
    pub use triphase_circuits::pipeline::linear_pipeline;
    pub use triphase_core::{
        apply_ddcg, apply_m2, assign_phases, extract_ff_graph, gate_p2_common_enable,
        gated_clock_style, retime_three_phase, run_flow, run_flow_with, to_master_slave,
        to_three_phase, DfaPolicy, FlowConfig, FlowReport, LintPolicy,
    };
    pub use triphase_dfa::{const_report, race_report, reset_report, DfaReport};
    pub use triphase_ilp::{PhaseConfig, PhaseProblem};
    pub use triphase_lint::{LintStage, Linter};
    pub use triphase_netlist::{Builder, ClockSpec, Netlist, Word};
    pub use triphase_pnr::{place_and_route, PnrOptions};
    pub use triphase_power::{estimate_power, percent_saving, PowerReport};
    pub use triphase_sim::{equiv_stream, run_random, Logic, Simulator};
    pub use triphase_timing::{analyze_ff, analyze_smo, check_c2, min_period_smo};
}
