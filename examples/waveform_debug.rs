//! Debugging workflow: dump a VCD waveform of a converted design and
//! trace its critical path.
//!
//! ```sh
//! cargo run --release --example waveform_debug
//! ```

use triphase::cells::liberty::to_liberty;
use triphase::prelude::*;
use triphase::sim::VcdWriter;
use triphase::timing::worst_path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Convert a small pipeline.
    let nl = linear_pipeline(3, 4, 2, 900.0);
    let idx = nl.index();
    let graph = triphase::core::extract_ff_graph(&nl, &idx)?;
    let assignment = assign_phases(&graph, &PhaseConfig::default());
    let (tp, _) = to_three_phase(&nl, &assignment)?;

    // 1. Waveform dump of 8 cycles (viewable in GTKWave).
    let mut sim = Simulator::new(&tp)?;
    sim.reset_zero();
    let inputs = triphase::sim::data_inputs(&tp);
    let mut vcd = VcdWriter::new(Vec::new(), &tp)?;
    let mut stream = triphase::sim::Stream::new(3);
    for cycle in 0..8u64 {
        for &p in &inputs {
            sim.set_input(p, Logic::from_bool(stream.next_bit()));
        }
        sim.step_cycle();
        vcd.sample(&sim, cycle * 900)?;
    }
    let vcd_text = String::from_utf8(vcd.into_inner())?;
    let vcd_path = std::env::temp_dir().join("pipe_3phase.vcd");
    std::fs::write(&vcd_path, &vcd_text)?;
    println!(
        "wrote {} ({} value changes over 8 cycles)",
        vcd_path.display(),
        vcd_text.lines().filter(|l| !l.starts_with('$')).count()
    );

    // 2. Critical path of the converted design.
    let lib = Library::synthetic_28nm();
    let tp_idx = tp.index();
    if let Some(path) = worst_path(&tp, &lib, &tp_idx, None)? {
        println!(
            "critical path: {:.0} ps over {} cells",
            path.delay_ps,
            path.steps.len()
        );
        for step in path.steps.iter().take(6) {
            println!("  {:>8.1} ps  {}", step.arrival_ps, step.name);
        }
    }

    // 3. Export the synthetic library in Liberty format.
    let lib_text = to_liberty(&lib);
    let lib_path = std::env::temp_dir().join("synth28.lib");
    std::fs::write(&lib_path, &lib_text)?;
    println!(
        "wrote {} ({} lines of Liberty)",
        lib_path.display(),
        lib_text.lines().count()
    );
    Ok(())
}
