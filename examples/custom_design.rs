//! Drive the conversion pipeline stage by stage on a hand-built design,
//! inspecting each intermediate result, and export the converted netlist
//! as structural Verilog.
//!
//! ```sh
//! cargo run --release --example custom_design
//! ```

use triphase::netlist::verilog;
use triphase::prelude::*;
use triphase::timing::analyze_smo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Hand-build a small design with the Builder DSL: an accumulator
    // (combinational feedback!) fed by a 2-stage input pipeline, with an
    // enable on the output register.
    let mut nl = Netlist::new("accumulator");
    let mut b = Builder::new(&mut nl, "u");
    let (ckp, ck) = b.netlist().add_input("ck");
    let (_, en) = b.netlist().add_input("en");
    let din = b.word_input("din", 8);
    let s0 = b.dff_word(&din, ck);
    let rot = s0.rotl(1);
    let mixed = b.xor_word(&s0, &rot);
    let s1 = b.dff_word(&mixed, ck);
    // Accumulator: acc <= acc + s1 (self-loop FFs).
    let acc_q: Word = (0..8)
        .map(|i| b.netlist().add_net(format!("acc{i}")))
        .collect();
    let (sum, _) = b.add(&acc_q, &s1, None);
    for (i, (&q, &d)) in acc_q.bits().iter().zip(sum.bits()).enumerate() {
        let name = format!("acc_ff{i}");
        b.netlist().add_cell(name, CellKind::Dff, vec![d, ck, q]);
    }
    // Enabled output register.
    let out = b.dffen_word(&acc_q, en, ck);
    b.word_output("dout", &out);
    nl.clock = Some(ClockSpec::single(ckp, 1000.0));
    nl.validate()?;

    let lib = Library::synthetic_28nm();

    // Stage 1: gated-clock preprocessing (Fig. 2 of the paper).
    let mut pre = nl.clone();
    let pp = gated_clock_style(&mut pre, 32)?;
    println!(
        "preprocess: {} enabled FFs -> gated clocks via {} ICGs",
        pp.converted_ffs, pp.icgs_inserted
    );

    // Stage 2: FF fan-out graph + the paper's ILP.
    let idx = pre.index();
    let graph = extract_ff_graph(&pre, &idx)?;
    println!(
        "FF graph: {} nodes, {} with combinational feedback",
        graph.ffs.len(),
        graph.self_loop_count()
    );
    let assignment = assign_phases(&graph, &PhaseConfig::default());
    println!(
        "ILP: cost {} (optimal: {}), {} single-latch FFs",
        assignment.cost,
        assignment.optimal,
        assignment.singles()
    );

    // Stage 3: conversion to 3-phase latches.
    let (mut tp, report) = to_three_phase(&pre, &assignment)?;
    println!(
        "converted: {} singles + {} back-to-back pairs + {} PI latches = {} latches",
        report.singles,
        report.back_to_back,
        report.pi_latches,
        tp.stats().latches
    );

    // Stage 4: modified retiming (only p2 latches move).
    let (tp_rt, rt) = retime_three_phase(&tp, &lib, 0.5)?;
    tp = tp_rt;
    println!(
        "retiming: ran={} moved {} candidates, half-stage {:.0} -> {:.0} ps",
        rt.ran, rt.movable, rt.original_ps, rt.achieved_ps
    );

    // Stage 5: clock gating of the p2 latches (M1 cells + DDCG).
    let cg = gate_p2_common_enable(&mut tp, 32)?;
    let m2 = apply_m2(&mut tp)?;
    let activity = run_random(&tp, 5, 64)?.activity().clone();
    let ddcg = apply_ddcg(&mut tp, &activity, 0.02, 32)?;
    println!(
        "clock gating: {} common-enable gated, {} M2 rewrites, {} DDCG-gated in {} groups",
        cg.common_enable_gated, m2, ddcg.ddcg_gated, ddcg.ddcg_groups
    );

    // Stage 6: validation — constraint C2, SMO timing, and equivalence.
    let tp = tp.compact();
    let tp_idx = tp.index();
    let c2 = check_c2(&tp, &lib, &tp_idx)?;
    println!("C2 co-transparency violations: {}", c2.len());
    let timing = analyze_smo(&tp, &lib, &tp_idx, None)?;
    println!(
        "SMO timing: worst setup slack {:.0} ps, worst hold slack {:.0} ps, borrowed {:.0} ps",
        timing.worst_setup_slack_ps, timing.worst_hold_slack_ps, timing.total_borrowed_ps
    );
    let equiv = equiv_stream(&nl, &tp, 77, 500)?;
    println!("equivalence over 500 cycles: {}", equiv.equivalent());
    assert!(equiv.equivalent() && c2.is_empty());

    // Export.
    let text = verilog::to_verilog(&tp);
    let path = std::env::temp_dir().join("accumulator_3phase.v");
    std::fs::write(&path, &text)?;
    println!(
        "wrote {} ({} lines of structural Verilog)",
        path.display(),
        text.lines().count()
    );
    Ok(())
}
