//! Quickstart: convert an FF pipeline to 3-phase latches and compare the
//! three design styles.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use triphase::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-bit, 5-stage FF pipeline with two levels of mixing logic per
    // stage, clocked at 1.11 GHz.
    let design = linear_pipeline(5, 8, 2, 900.0);
    println!(
        "input design `{}`: {} FFs, {} gates",
        design.name,
        design.stats().ffs,
        design.stats().comb
    );

    let lib = Library::synthetic_28nm();
    let report = run_flow(&design, &lib, &FlowConfig::default())?;

    println!("\n=== conversion ===");
    println!(
        "ILP: {} p2 insertions ({} singles, {} back-to-back), optimal: {}, {:.3}s",
        report.ilp_cost,
        report.convert.singles,
        report.convert.back_to_back,
        report.ilp_optimal,
        report.ilp_seconds
    );
    if let Some(rt) = &report.retime {
        println!(
            "retiming: worst half-stage {:.0} ps -> {:.0} ps (target met: {})",
            rt.original_ps, rt.achieved_ps, rt.met_target
        );
    }
    println!(
        "validation: M-S equivalent = {:?}, 3-phase equivalent = {:?}",
        report.equiv_ms, report.equiv_3p
    );

    println!("\n=== results (paper Tables I & II shape) ===");
    for (style, v) in [
        ("FF  ", &report.ff),
        ("M-S ", &report.ms),
        ("3-P ", &report.three_phase),
    ] {
        println!(
            "{style}: {:>4} regs, {:>7.0} um^2, {}",
            v.registers(),
            v.area_um2,
            v.power
        );
    }
    println!(
        "\n3-phase saves {:.1}% registers vs 2xFF, {:.1}% vs M-S",
        report.reg_saving_vs_2ff(),
        report.reg_saving_vs_ms()
    );
    println!(
        "3-phase power: {:+.1}% vs FF, {:+.1}% vs M-S",
        report.power_saving_vs_ff(),
        report.power_saving_vs_ms()
    );
    Ok(())
}
