//! Convert a functionally real SHA-256 core (one of the paper's CEP
//! submodules) to 3-phase latches and compare post-P&R power — after
//! first proving at gate level that the generated core computes the
//! correct digest of `"abc"`.
//!
//! ```sh
//! cargo run --release --example crypto_power
//! ```

use triphase::circuits::crypto::sha256::{compress_sw, iv, sha256_core};
use triphase::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nl = sha256_core(2000.0); // 500 MHz
    println!(
        "sha256 core: {} FFs, {} gates",
        nl.stats().ffs,
        nl.stats().comb
    );

    // Sanity: the gate-level core really computes SHA-256 (padded "abc").
    let mut padded = b"abc".to_vec();
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&24u64.to_be_bytes());
    let mut block = [0u32; 16];
    for (w, bytes) in block.iter_mut().zip(padded.chunks(4)) {
        *w = u32::from_be_bytes(bytes.try_into().unwrap());
    }
    let expect = compress_sw(&iv(), &block);

    let mut sim = Simulator::new(&nl)?;
    sim.reset_zero();
    for (w, &word) in block.iter().enumerate() {
        for j in 0..32 {
            let p = nl.find_port(&format!("block_{}", 32 * w + j)).unwrap();
            sim.set_input(p, Logic::from_bool((word >> j) & 1 == 1));
        }
    }
    let load = nl.find_port("load").unwrap();
    sim.set_input(load, Logic::One);
    sim.step_cycle();
    sim.set_input(load, Logic::Zero);
    for _ in 0..66 {
        sim.step_cycle();
    }
    let mut digest0 = 0u32;
    for j in 0..32 {
        let p = nl.find_port(&format!("digest_{j}")).unwrap();
        if sim.output(p) == Logic::One {
            digest0 |= 1 << j;
        }
    }
    assert_eq!(digest0, expect[0], "gate-level SHA-256 is real");
    println!("gate-level digest word 0 = {digest0:08x} (matches software model)");

    // The paper's flow: FF vs M-S vs 3-phase, post-P&R power.
    let lib = Library::synthetic_28nm();
    let cfg = FlowConfig {
        sim_cycles: 128,
        equiv_cycles: 128,
        ..FlowConfig::default()
    };
    let report = run_flow(&nl, &lib, &cfg)?;
    println!("\nequivalence: 3-phase = {:?}", report.equiv_3p);
    println!(
        "clock gating: {} p2 latches behind shared enables, {} via DDCG, {} ICGs latch-free (M2)",
        report.cg.common_enable_gated, report.cg.ddcg_gated, report.cg.m2_replaced
    );
    for (style, v) in [
        ("FF  ", &report.ff),
        ("M-S ", &report.ms),
        ("3-P ", &report.three_phase),
    ] {
        println!("{style}: {:>5} regs | {}", v.registers(), v.power);
    }
    println!(
        "3-phase power saving: {:+.1}% vs FF, {:+.1}% vs M-S (paper SHA256 row: +0.8% / +27.2%)",
        report.power_saving_vs_ff(),
        report.power_saving_vs_ms()
    );
    Ok(())
}
