//! Convert a pipelined CPU to 3-phase latches and measure power under two
//! instruction-mix workloads (the paper's Fig. 4 axis) — the same netlist
//! runs both workloads via its `mode` input.
//!
//! ```sh
//! cargo run --release --example cpu_pipeline
//! ```

use triphase::circuits::cpu::{build_cpu, m0_like, CpuModel, Workload};
use triphase::core::run_flow_with;
use triphase::prelude::*;
use triphase::sim::{data_inputs, Stream};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = m0_like();
    let (nl, rom) = build_cpu(&cfg, 11);
    println!(
        "{}: {}-stage pipeline, {} regs x {} bits, {} FFs, {} gates",
        cfg.name,
        cfg.stages,
        cfg.nregs,
        cfg.width,
        nl.stats().ffs,
        nl.stats().comb
    );

    // Sanity: the gate level matches the cycle-accurate golden model.
    let mut model = CpuModel::new(&cfg, rom);
    let mut sim = Simulator::new(&nl)?;
    sim.reset_zero();
    let mode_p = nl.find_port("mode").unwrap();
    let mut pending = (0u32, false);
    for _ in 0..50 {
        sim.set_input(mode_p, Logic::Zero);
        for i in 0..cfg.width {
            let p = nl.find_port(&format!("io_in_{i}")).unwrap();
            sim.set_input(p, Logic::Zero);
        }
        sim.step_cycle();
        model.step(pending.0, pending.1);
        pending = (0, false);
    }
    let pc_gate: u32 = (0..7)
        .map(|i| {
            let p = nl.find_port(&format!("pc_out_{i}")).unwrap();
            u32::from(sim.output(p) == Logic::One) << i
        })
        .sum();
    assert_eq!(pc_gate, model.pc(), "gate level tracks the golden model");
    println!("after 50 cycles both gate level and model sit at pc = {pc_gate}");

    // Fig. 4-style comparison: both workloads on the converted designs.
    let lib = Library::synthetic_28nm();
    for workload in [Workload::DhrystoneLike, Workload::CoremarkLike] {
        let flow_cfg = FlowConfig {
            sim_cycles: 128,
            equiv_cycles: 128,
            ..FlowConfig::default()
        };
        let report = run_flow_with(&nl, &lib, &flow_cfg, &move |n, cycles| {
            // Pseudo-random io_in; `mode` pinned to the workload segment.
            let inputs = data_inputs(n);
            let mode = n.find_port("mode");
            let mut sim = Simulator::new(n)?;
            sim.reset_zero();
            let mut stream = Stream::new(99);
            for _ in 0..cycles {
                for &p in &inputs {
                    let v = if Some(p) == mode {
                        Logic::from_bool(workload.mode_bit())
                    } else {
                        Logic::from_bool(stream.next_bit())
                    };
                    sim.set_input(p, v);
                }
                sim.step_cycle();
            }
            Ok(sim.activity().clone())
        })?;
        println!("\nworkload {workload:?} (equiv: {:?})", report.equiv_3p);
        for (style, v) in [
            ("FF  ", &report.ff),
            ("M-S ", &report.ms),
            ("3-P ", &report.three_phase),
        ] {
            println!("  {style}: {}", v.power);
        }
        println!(
            "  3-phase: {:+.1}% vs FF, {:+.1}% vs M-S (paper Arm-M0: +8.3% / +20.1%)",
            report.power_saving_vs_ff(),
            report.power_saving_vs_ms()
        );
    }
    Ok(())
}
