//! Property-based tests over the conversion invariants (proptest).

use proptest::prelude::*;
use triphase::prelude::*;
use triphase::sim::equiv_stream_warmup;
use triphase::timing::storage_phases;

/// Build a random FF design from a compact recipe: a few layers of FFs
/// with random mixing logic, optional feedback and enables.
fn random_design(
    widths: &[usize],
    feedback: &[bool],
    enables: bool,
    seed: u64,
) -> triphase::netlist::Netlist {
    use triphase::netlist::{CellKind, Netlist, Word};
    let mut nl = Netlist::new("rand");
    let mut b = Builder::new(&mut nl, "u");
    let (ckp, ck) = b.netlist().add_input("ck");
    let en = if enables {
        Some(b.netlist().add_input("en").1)
    } else {
        None
    };
    let mut prev: Word = b.word_input("din", widths[0].max(1));
    let mut salt = seed;
    for (l, (&w, &fb)) in widths.iter().zip(feedback).enumerate() {
        let w = w.max(1);
        // Mix previous data to the layer's width.
        let mut bits = Vec::with_capacity(w);
        for i in 0..w {
            salt = salt.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = prev.bit((salt as usize) % prev.width());
            let bnet = prev.bit((salt as usize >> 8) % prev.width());
            bits.push(b.gate(CellKind::Xor(2), &[a, bnet]));
        }
        let d = Word(bits);
        let q: Word = if fb {
            // Feedback layer: q <= d ^ q.
            let qnets: Word = (0..w)
                .map(|i| b.netlist().add_net(format!("fbq{l}_{i}")))
                .collect();
            let mixed = b.xor_word(&d, &qnets);
            for (i, (&qn, &dn)) in qnets.0.iter().zip(mixed.0.iter()).enumerate() {
                let name = format!("fb{l}_{i}");
                match en {
                    Some(en) => {
                        b.netlist()
                            .add_cell(name, CellKind::DffEn, vec![dn, en, ck, qn]);
                    }
                    None => {
                        b.netlist().add_cell(name, CellKind::Dff, vec![dn, ck, qn]);
                    }
                }
            }
            qnets
        } else {
            match en {
                Some(en) if l % 2 == 0 => b.dffen_word(&d, en, ck),
                _ => b.dff_word(&d, ck),
            }
        };
        prev = q;
    }
    b.word_output("dout", &prev);
    nl.clock = Some(ClockSpec::single(ckp, 1000.0));
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any generated FF design converts to an equivalent 3-phase design
    /// with a legal phase assignment (constraint C2 holds, all original
    /// FF positions are latched — C1 — and throughput is unchanged, which
    /// equivalence streaming checks implicitly — C3).
    #[test]
    fn conversion_is_equivalence_preserving(
        widths in prop::collection::vec(1usize..6, 1..4),
        feedback in prop::collection::vec(any::<bool>(), 4),
        enables in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let lib = Library::synthetic_28nm();
        let nl = random_design(&widths, &feedback[..widths.len()], enables, seed);
        nl.validate().unwrap();
        let mut pre = nl.clone();
        gated_clock_style(&mut pre, 32).unwrap();
        let idx = pre.index();
        let graph = extract_ff_graph(&pre, &idx).unwrap();
        let assignment = assign_phases(&graph, &PhaseConfig::default());
        let (tp, report) = to_three_phase(&pre, &assignment).unwrap();

        // C1: every original FF position still holds a latch.
        prop_assert_eq!(report.singles + report.back_to_back, graph.ffs.len());
        prop_assert_eq!(tp.stats().ffs, 0);

        // C2: no co-transparent adjacency.
        let tp_idx = tp.index();
        prop_assert!(check_c2(&tp, &lib, &tp_idx).unwrap().is_empty());

        // Equivalence (cycle-exact, no warmup needed before retiming).
        let r = equiv_stream(&nl, &tp, seed, 150).unwrap();
        prop_assert!(r.equivalent(), "mismatch: {:?}", r.mismatch);

        // Never worse than master-slave on latch count.
        prop_assert!(tp.stats().latches <= 2 * pre.stats().ffs + 1);
    }

    /// Retiming preserves behaviour (after a warm-up for relocated
    /// registers) and never moves p1/p3 latches.
    #[test]
    fn retiming_preserves_behaviour(
        widths in prop::collection::vec(1usize..5, 2..4),
        seed in 0u64..500,
    ) {
        let lib = Library::synthetic_28nm();
        let feedback = vec![false; widths.len()];
        let nl = random_design(&widths, &feedback, false, seed);
        let mut pre = nl.clone();
        gated_clock_style(&mut pre, 32).unwrap();
        let idx = pre.index();
        let graph = extract_ff_graph(&pre, &idx).unwrap();
        let assignment = assign_phases(&graph, &PhaseConfig::default());
        let (tp, _) = to_three_phase(&pre, &assignment).unwrap();
        let p13_before = count_phase(&tp, 0) + count_phase(&tp, 2);
        let (rt, _) = retime_three_phase(&tp, &lib, 0.5).unwrap();
        let p13_after = count_phase(&rt, 0) + count_phase(&rt, 2);
        prop_assert_eq!(p13_before, p13_after, "p1/p3 latches are immovable");
        let r = equiv_stream_warmup(&nl, &rt, seed, 200, 16).unwrap();
        prop_assert!(r.equivalent(), "mismatch: {:?}", r.mismatch);
    }
}

fn count_phase(nl: &triphase::netlist::Netlist, phase: usize) -> usize {
    let idx = nl.index();
    let phases = storage_phases(nl, &idx).unwrap();
    nl.cells()
        .filter(|(id, c)| c.kind.is_latch() && phases.get(id) == Some(&phase))
        .count()
}
