//! Property-style tests over the conversion invariants.
//!
//! Cases are drawn from a deterministic splitmix64 stream instead of an
//! external property-testing framework so the suite runs hermetically;
//! every failure reproduces from the printed recipe.

use triphase::lint::{LintStage, Linter};
use triphase::prelude::*;
use triphase::sim::equiv_stream_warmup;
use triphase::timing::storage_phases;

/// Deterministic splitmix64 stream for generating test recipes.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    fn below(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Build a random FF design from a compact recipe: a few layers of FFs
/// with random mixing logic, optional feedback and enables.
fn random_design(
    widths: &[usize],
    feedback: &[bool],
    enables: bool,
    seed: u64,
) -> triphase::netlist::Netlist {
    use triphase::netlist::{CellKind, Netlist, Word};
    let mut nl = Netlist::new("rand");
    let mut b = Builder::new(&mut nl, "u");
    let (ckp, ck) = b.netlist().add_input("ck");
    let en = if enables {
        Some(b.netlist().add_input("en").1)
    } else {
        None
    };
    let mut prev: Word = b.word_input("din", widths[0].max(1));
    let mut salt = seed;
    for (l, (&w, &fb)) in widths.iter().zip(feedback).enumerate() {
        let w = w.max(1);
        // Mix previous data to the layer's width.
        let mut bits = Vec::with_capacity(w);
        for _ in 0..w {
            salt = salt.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = prev.bit((salt as usize) % prev.width());
            let bnet = prev.bit((salt as usize >> 8) % prev.width());
            bits.push(b.gate(CellKind::Xor(2), &[a, bnet]));
        }
        let d = Word(bits);
        let q: Word = if fb {
            // Feedback layer: q <= d ^ q.
            let qnets: Word = (0..w)
                .map(|i| b.netlist().add_net(format!("fbq{l}_{i}")))
                .collect();
            let mixed = b.xor_word(&d, &qnets);
            for (i, (&qn, &dn)) in qnets.0.iter().zip(mixed.0.iter()).enumerate() {
                let name = format!("fb{l}_{i}");
                match en {
                    Some(en) => {
                        b.netlist()
                            .add_cell(name, CellKind::DffEn, vec![dn, en, ck, qn]);
                    }
                    None => {
                        b.netlist().add_cell(name, CellKind::Dff, vec![dn, ck, qn]);
                    }
                }
            }
            qnets
        } else {
            match en {
                Some(en) if l % 2 == 0 => b.dffen_word(&d, en, ck),
                _ => b.dff_word(&d, ck),
            }
        };
        prev = q;
    }
    b.word_output("dout", &prev);
    nl.clock = Some(ClockSpec::single(ckp, 1000.0));
    nl
}

/// One conversion-invariant check (C1, C2, equivalence, latch budget).
fn check_conversion(widths: &[usize], feedback: &[bool], enables: bool, seed: u64) {
    let recipe = format!("widths {widths:?} feedback {feedback:?} enables {enables} seed {seed}");
    let lib = Library::synthetic_28nm();
    let nl = random_design(widths, feedback, enables, seed);
    nl.validate().unwrap();
    let mut pre = nl.clone();
    gated_clock_style(&mut pre, 32).unwrap();
    let idx = pre.index();
    let graph = extract_ff_graph(&pre, &idx).unwrap();
    let assignment = assign_phases(&graph, &PhaseConfig::default());
    let (tp, report) = to_three_phase(&pre, &assignment).unwrap();

    // C1: every original FF position still holds a latch.
    assert_eq!(
        report.singles + report.back_to_back,
        graph.ffs.len(),
        "{recipe}"
    );
    assert_eq!(tp.stats().ffs, 0, "{recipe}");

    // C2: no co-transparent adjacency.
    let tp_idx = tp.index();
    assert!(check_c2(&tp, &lib, &tp_idx).unwrap().is_empty(), "{recipe}");

    // Equivalence (cycle-exact, no warmup needed before retiming).
    let r = equiv_stream(&nl, &tp, seed, 150).unwrap();
    assert!(r.equivalent(), "{recipe}: mismatch {:?}", r.mismatch);

    // Never worse than master-slave on latch count.
    assert!(tp.stats().latches <= 2 * pre.stats().ffs + 1, "{recipe}");

    // The converted design is certified clean by the static analyzer.
    let lint = Linter::new().run(&tp, LintStage::Convert);
    assert!(lint.errors().is_empty(), "{recipe}: lint {lint:?}");
}

/// Any generated FF design converts to an equivalent 3-phase design
/// with a legal phase assignment (constraint C2 holds, all original
/// FF positions are latched — C1 — and throughput is unchanged, which
/// equivalence streaming checks implicitly — C3).
#[test]
fn conversion_is_equivalence_preserving() {
    let mut rng = Rng(0xC0FFEE);
    for _ in 0..12 {
        let widths: Vec<usize> = (0..rng.below(1, 4)).map(|_| rng.below(1, 6)).collect();
        let feedback: Vec<bool> = (0..widths.len()).map(|_| rng.bool()).collect();
        let enables = rng.bool();
        let seed = rng.next_u64() % 1000;
        check_conversion(&widths, &feedback, enables, seed);
    }
}

/// Retiming preserves behaviour (after a warm-up for relocated
/// registers) and never moves p1/p3 latches.
#[test]
fn retiming_preserves_behaviour() {
    let lib = Library::synthetic_28nm();
    let mut rng = Rng(0xFEED);
    for _ in 0..6 {
        let widths: Vec<usize> = (0..rng.below(2, 4)).map(|_| rng.below(1, 5)).collect();
        let seed = rng.next_u64() % 500;
        let recipe = format!("widths {widths:?} seed {seed}");
        let feedback = vec![false; widths.len()];
        let nl = random_design(&widths, &feedback, false, seed);
        let mut pre = nl.clone();
        gated_clock_style(&mut pre, 32).unwrap();
        let idx = pre.index();
        let graph = extract_ff_graph(&pre, &idx).unwrap();
        let assignment = assign_phases(&graph, &PhaseConfig::default());
        let (tp, _) = to_three_phase(&pre, &assignment).unwrap();
        let p13_before = count_phase(&tp, 0) + count_phase(&tp, 2);
        let (rt, _) = retime_three_phase(&tp, &lib, 0.5).unwrap();
        let p13_after = count_phase(&rt, 0) + count_phase(&rt, 2);
        assert_eq!(p13_before, p13_after, "{recipe}: p1/p3 latches moved");
        let r = equiv_stream_warmup(&nl, &rt, seed, 200, 16).unwrap();
        assert!(r.equivalent(), "{recipe}: mismatch {:?}", r.mismatch);

        // Retimed designs stay lint-clean (phase legality is preserved by
        // the p2-only movement rule).
        let lint = Linter::new().run(&rt, LintStage::Retime);
        assert!(lint.errors().is_empty(), "{recipe}: lint {lint:?}");
    }
}

/// Random DAG netlists from the builder DSL are structurally clean: the
/// structural rule family reports zero diagnostics at Error severity.
#[test]
fn random_dag_netlists_are_structurally_clean() {
    use triphase::netlist::{Netlist, Word};
    let mut rng = Rng(0xDA6);
    for case in 0..24 {
        let width = rng.below(1, 8);
        let n_ops = rng.below(1, 12);
        let mut nl = Netlist::new(format!("dag{case}"));
        let mut b = Builder::new(&mut nl, "u");
        let (ckp, ck) = b.netlist().add_input("ck");
        let mut w: Word = b.word_input("in", width.max(1));
        for i in 0..n_ops {
            w = match rng.below(0, 7) {
                0 => {
                    let r = w.rotl(1 + i % 3);
                    b.xor_word(&w, &r)
                }
                1 => {
                    let r = w.rotr(1);
                    b.and_word(&w, &r)
                }
                2 => {
                    let r = w.rotl(2);
                    b.or_word(&w, &r)
                }
                3 => b.not_word(&w),
                4 => b.add_const(&w, rng.next_u64() & 0xff),
                5 => b.dff_word(&w, ck),
                _ => {
                    let s = w.bit(0);
                    let r = w.rotl(1);
                    b.mux_word(&w, &r, s)
                }
            };
        }
        b.word_output("out", &w);
        nl.clock = Some(ClockSpec::single(ckp, 1000.0));
        nl.validate().unwrap();
        let report = Linter::structural().run(&nl, LintStage::Input);
        assert!(report.errors().is_empty(), "case {case}: {report:?}");
    }
}

fn count_phase(nl: &triphase::netlist::Netlist, phase: usize) -> usize {
    let idx = nl.index();
    let phases = storage_phases(nl, &idx).unwrap();
    nl.cells()
        .filter(|(id, c)| c.kind.is_latch() && phases.get(id) == Some(&phase))
        .count()
}
