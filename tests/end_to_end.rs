//! Cross-crate integration tests: full flows over the facade crate.

use triphase::pnr::PnrOptions;
use triphase::prelude::*;

fn quick_cfg() -> FlowConfig {
    FlowConfig {
        sim_cycles: 48,
        equiv_cycles: 96,
        pnr: PnrOptions {
            moves_per_cell: 2,
            ..PnrOptions::default()
        },
        ..FlowConfig::default()
    }
}

#[test]
fn pipeline_flow_produces_paper_shape() {
    let lib = Library::synthetic_28nm();
    let nl = linear_pipeline(6, 8, 2, 900.0);
    let report = run_flow(&nl, &lib, &quick_cfg()).unwrap();
    // Validation gates.
    assert_eq!(report.equiv_ms, Some(true));
    assert_eq!(report.equiv_3p, Some(true));
    // Table I shape: 3-phase beats master-slave on registers and area.
    assert!(report.three_phase.registers() < report.ms.registers());
    assert!(report.reg_saving_vs_2ff() > 15.0);
    assert!(report.three_phase.area_um2 < report.ms.area_um2 * 1.05);
    // Table II shape: master-slave clock power is the worst of the three.
    assert!(report.ms.power.clock.total() > report.three_phase.power.clock.total());
}

#[test]
fn real_s27_full_flow() {
    let lib = Library::synthetic_28nm();
    let nl = s27(1000.0);
    let report = run_flow(&nl, &lib, &quick_cfg()).unwrap();
    assert_eq!(report.equiv_3p, Some(true), "real ISCAS circuit converts");
    assert!(report.ilp_optimal);
}

#[test]
fn iscas_row_lands_on_calibrated_saving() {
    // s1423's profile is calibrated to the paper's 9.9% register saving.
    let lib = Library::synthetic_28nm();
    let profile = iscas_profiles()
        .into_iter()
        .find(|p| p.name == "s1423")
        .unwrap();
    let nl = generate_iscas(&profile, 42);
    let report = run_flow(&nl, &lib, &quick_cfg()).unwrap();
    assert_eq!(report.equiv_3p, Some(true));
    assert!(
        (report.reg_saving_vs_2ff() - 9.9).abs() < 3.0,
        "saving {:.1}% vs paper 9.9%",
        report.reg_saving_vs_2ff()
    );
}

#[test]
fn control_dominated_circuit_shows_no_benefit() {
    // The paper's s1488 observation.
    let lib = Library::synthetic_28nm();
    let profile = iscas_profiles()
        .into_iter()
        .find(|p| p.name == "s1488")
        .unwrap();
    let nl = generate_iscas(&profile, 42);
    let report = run_flow(&nl, &lib, &quick_cfg()).unwrap();
    assert_eq!(report.convert.singles, 0);
    assert!(report.reg_saving_vs_2ff() <= 0.5);
    assert_eq!(report.equiv_3p, Some(true));
}

#[test]
fn des3_core_full_flow_equivalent() {
    let lib = Library::synthetic_28nm();
    let spec = Des3Spec::new(7);
    let nl = des3_core(&spec, 2000.0);
    let report = run_flow(&nl, &lib, &quick_cfg()).unwrap();
    assert_eq!(report.equiv_3p, Some(true), "real Feistel core converts");
    assert!(
        report.reg_saving_vs_2ff() > 5.0,
        "bus-attached core saves latches"
    );
}

#[test]
fn cpu_flow_under_both_workloads() {
    use triphase::sim::{data_inputs, Stream};
    let lib = Library::synthetic_28nm();
    let mut cfg = m0_like();
    cfg.chain_regs = 4; // keep the test light
    let (nl, _) = build_cpu(&cfg, 11);
    for workload in [Workload::DhrystoneLike, Workload::CoremarkLike] {
        let report = run_flow_with(&nl, &lib, &quick_cfg(), &move |n, cycles| {
            let inputs = data_inputs(n);
            let mode = n.find_port("mode");
            let mut sim = Simulator::new(n)?;
            sim.reset_zero();
            let mut stream = Stream::new(5);
            for _ in 0..cycles {
                for &p in &inputs {
                    let v = if Some(p) == mode {
                        Logic::from_bool(workload.mode_bit())
                    } else {
                        Logic::from_bool(stream.next_bit())
                    };
                    sim.set_input(p, v);
                }
                sim.step_cycle();
            }
            Ok(sim.activity().clone())
        })
        .unwrap();
        assert_eq!(report.equiv_3p, Some(true), "{workload:?}");
        assert!(
            report.reg_saving_vs_2ff() > 20.0,
            "pipelined CPUs convert well"
        );
    }
}

#[test]
fn converted_design_roundtrips_through_verilog() {
    use triphase::netlist::verilog;
    let lib = Library::synthetic_28nm();
    let nl = linear_pipeline(4, 4, 1, 900.0);
    let report = run_flow(&nl, &lib, &quick_cfg()).unwrap();
    let text = verilog::to_verilog(&report.three_phase.netlist);
    let back = verilog::from_verilog(&text).unwrap();
    assert_eq!(
        back.stats(),
        report.three_phase.netlist.stats(),
        "3-phase netlist (latches + ICG variants) survives Verilog IO"
    );
    let _ = lib;
}

#[test]
fn smo_timing_clean_on_converted_designs() {
    let lib = Library::synthetic_28nm();
    let nl = linear_pipeline(5, 6, 1, 900.0);
    let report = run_flow(&nl, &lib, &quick_cfg()).unwrap();
    assert!(
        report.three_phase.worst_setup_slack_ps > f64::NEG_INFINITY,
        "SMO analysis ran"
    );
    assert!(
        report.three_phase.worst_hold_slack_ps >= 0.0,
        "3-phase conversion is hold-safe by construction (no direct p3->p1 paths)"
    );
}
