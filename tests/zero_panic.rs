//! Zero-panic policy gate for the analysis crates.
//!
//! The lint, timing, ILP, dataflow, activity, and power crates are run
//! by the flow as checkpoints/estimators over arbitrary (possibly
//! seeded-defective) netlists — an analysis must report findings or
//! return `Err`, never abort the process. This test scans their
//! non-test sources for panicking constructs so a regression fails CI
//! instead of a fuzz campaign.

use std::fs;
use std::path::Path;

const CRATES: &[&str] = &[
    "crates/lint",
    "crates/timing",
    "crates/ilp",
    "crates/dfa",
    "crates/activity",
    "crates/power",
    "crates/serve",
];
const FORBIDDEN: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unimplemented!(",
    "todo!(",
];

/// Strip `#[cfg(test)] mod … { … }` blocks (panics in tests are fine).
fn strip_test_modules(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let mut rest = src;
    while let Some(at) = rest.find("#[cfg(test)]") {
        out.push_str(&rest[..at]);
        let tail = &rest[at..];
        // Skip to the block's opening brace, then to its matching close.
        let Some(open) = tail.find('{') else {
            rest = "";
            break;
        };
        let mut depth = 0usize;
        let mut end = tail.len();
        for (i, ch) in tail[open..].char_indices() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// Strip `//` line comments (doc examples may legitimately mention them).
fn strip_line_comments(src: &str) -> String {
    src.lines()
        .map(|l| l.split("//").next().unwrap_or(l))
        .collect::<Vec<_>>()
        .join("\n")
}

fn scan_dir(dir: &Path, violations: &mut Vec<String>) {
    let entries = fs::read_dir(dir).unwrap_or_else(|e| panic!("read {}: {e}", dir.display()));
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            scan_dir(&path, violations);
            continue;
        }
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let src = fs::read_to_string(&path).unwrap_or_default();
        let code = strip_line_comments(&strip_test_modules(&src));
        for (lineno, line) in code.lines().enumerate() {
            for pat in FORBIDDEN {
                if line.contains(pat) {
                    violations.push(format!(
                        "{}:{}: `{}` in non-test code: {}",
                        path.display(),
                        lineno + 1,
                        pat,
                        line.trim()
                    ));
                }
            }
        }
    }
}

/// The compiled-simulation subtree (`triphase-sim`'s lowering passes and
/// bytecode VM) is held to the same standard: it executes machine-built
/// programs over arbitrary netlists inside the flow's hot path, so any
/// invariant violation must surface as a typed error or an `assert`
/// with a message — never an `unwrap`/`expect`/`panic!`. (The rest of
/// the sim crate predates the policy and keeps its documented asserts.)
#[test]
fn compiled_sim_module_has_no_panicking_constructs() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let src = root.join("crates/sim/src/compile");
    assert!(src.is_dir(), "missing {}", src.display());
    let mut violations = Vec::new();
    scan_dir(&src, &mut violations);
    assert!(
        violations.is_empty(),
        "panicking constructs in the compiled-sim module:\n{}",
        violations.join("\n")
    );
}

#[test]
fn analysis_crates_have_no_panicking_constructs() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    for krate in CRATES {
        let src = root.join(krate).join("src");
        assert!(src.is_dir(), "missing {}", src.display());
        scan_dir(&src, &mut violations);
    }
    assert!(
        violations.is_empty(),
        "panicking constructs in analysis crates (report a Diagnostic or \
         return Err instead):\n{}",
        violations.join("\n")
    );
}
